"""Trace serialization: JSONL records and Chrome ``trace_event`` JSON.

Two interchange formats:

* **JSONL** — one :meth:`Span.as_dict` object per line.  The stable,
  greppable, schema-checked format (``tools/check_trace.py``); also what
  :func:`read_jsonl` loads back for ``repro trace`` post-processing.
* **Chrome trace JSON** — the ``trace_event`` format consumed by
  ``chrome://tracing`` and https://ui.perfetto.dev: complete (``"ph": "X"``)
  events with microsecond timestamps rebased to the trace start.  Spans
  are laid out on one track (``tid``) per root span — a pipeline's jobs
  stack under the pipeline row, task attempts under their wave — with
  ``args`` carrying the span attrs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.observability.tracer import Span

#: Required keys (and their types) of one JSONL trace record.
JSONL_SCHEMA = {
    "name": str,
    "phase": str,
    "start": (int, float),
    "duration": (int, float),
    "span_id": int,
    "parent_id": (int, type(None)),
    "attrs": dict,
}


def write_jsonl(spans: Sequence[Span], path: Union[str, Path]) -> int:
    """Write spans as JSONL (start order preserved); returns the span count."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span.as_dict(), sort_keys=True))
            handle.write("\n")
    return len(spans)


def read_jsonl(path: Union[str, Path]) -> List[Span]:
    """Load spans written by :func:`write_jsonl`."""
    spans: List[Span] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


def to_chrome_trace(spans: Sequence[Span]) -> Dict[str, Any]:
    """Convert spans to a ``chrome://tracing`` / Perfetto document."""
    origin = min((span.start for span in spans), default=0.0)
    tracks = _assign_tracks(spans)
    events = []
    for span in spans:
        events.append(
            {
                "name": span.name,
                "cat": span.phase or "span",
                "ph": "X",
                "ts": round((span.start - origin) * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": 0,
                "tid": tracks[span.span_id],
                "args": _jsonable(span.attrs),
            }
        )
    return {"displayTimeUnit": "ms", "traceEvents": events}


def write_chrome_trace(spans: Sequence[Span], path: Union[str, Path]) -> int:
    """Write the Chrome-trace JSON document; returns the event count."""
    document = to_chrome_trace(spans)
    Path(path).write_text(json.dumps(document), encoding="utf-8")
    return len(document["traceEvents"])


def chrome_path_for(trace_path: Union[str, Path]) -> Path:
    """The Chrome-trace twin of a JSONL trace path (``x.jsonl`` → ``x.chrome.json``)."""
    path = Path(trace_path)
    stem = path.name[: -len(".jsonl")] if path.name.endswith(".jsonl") else path.name
    return path.with_name(stem + ".chrome.json")


def _assign_tracks(spans: Sequence[Span]) -> Dict[int, int]:
    """One ``tid`` per root span so concurrent roots render as parallel rows.

    Children inherit their root's track; task-attempt spans additionally
    offset by their ``task_id`` attr so one wave's tasks fan out visually.
    """
    root_track: Dict[int, int] = {}
    tracks: Dict[int, int] = {}
    next_root = 0
    for span in spans:  # start order: parents first
        if span.parent_id is None or span.parent_id not in tracks:
            root_track[span.span_id] = next_root * 1000
            tracks[span.span_id] = next_root * 1000
            next_root += 1
        else:
            base = tracks[span.parent_id] - tracks[span.parent_id] % 1000
            task_id = span.attrs.get("task_id")
            offset = (int(task_id) + 1) % 999 if task_id is not None else 0
            tracks[span.span_id] = base + offset
    return tracks


def _jsonable(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Best-effort JSON-safe copy of span attrs (repr fallback)."""
    safe: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool, type(None))):
            safe[key] = value
        elif isinstance(value, dict):
            safe[key] = _jsonable(value)
        elif isinstance(value, (list, tuple)):
            safe[key] = [
                v if isinstance(v, (str, int, float, bool, type(None))) else repr(v)
                for v in value
            ]
        else:
            safe[key] = repr(value)
    return safe


def validate_jsonl_record(record: Any) -> Optional[str]:
    """Schema-check one parsed JSONL line; returns an error string or ``None``.

    Shared by ``tools/check_trace.py`` and the tests so CI and the library
    agree on what a valid trace record is.
    """
    if not isinstance(record, dict):
        return f"record is {type(record).__name__}, not an object"
    for key, types in JSONL_SCHEMA.items():
        if key not in record:
            return f"missing key {key!r}"
        if not isinstance(record[key], types):
            return f"key {key!r} has type {type(record[key]).__name__}"
    if isinstance(record["span_id"], bool) or record["span_id"] < 1:
        return f"span_id {record['span_id']!r} must be a positive int"
    if record["duration"] < 0:
        return f"negative duration {record['duration']!r}"
    return None
