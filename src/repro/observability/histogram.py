"""A log-bucketed latency histogram with percentile snapshots.

The service records one observation per probe; percentile queries walk the
cumulative bucket counts.  Buckets double from 1 µs, so the p50/p95/p99
estimates carry at most a 2× quantization error while ``record`` stays O(1)
with a fixed ~70-slot footprint — always-on accounting, like a counter.
Exact ``min``/``max``/``sum`` are tracked alongside.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Union

#: 2^69 µs ≈ 18 years — any slower observation lands in the last bucket.
_N_BUCKETS = 70


class LatencyHistogram:
    """Thread-safe latency accumulator (seconds in, seconds out)."""

    def __init__(self) -> None:
        self._buckets: List[int] = [0] * _N_BUCKETS
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def record(self, seconds: float) -> None:
        """Record one observation (clamped below at 0)."""
        seconds = max(0.0, seconds)
        micros = int(seconds * 1e6)
        index = min(micros.bit_length(), _N_BUCKETS - 1)
        with self._lock:
            self._buckets[index] += 1
            self.count += 1
            self.total += seconds
            self.min = min(self.min, seconds)
            self.max = max(self.max, seconds)

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile (0 < q ≤ 1)."""
        with self._lock:
            if not self.count:
                return 0.0
            rank = q * self.count
            seen = 0
            for index, bucket in enumerate(self._buckets):
                seen += bucket
                if seen >= rank:
                    # Bucket i holds observations in [2^(i-1), 2^i) µs.
                    return min((1 << index) / 1e6, self.max)
            return self.max  # pragma: no cover - rank <= count always hits

    def snapshot(self) -> Dict[str, Union[int, float]]:
        """`cache_info`-style summary (milliseconds, rounded for printing)."""
        p50, p95, p99 = (self.percentile(q) for q in (0.50, 0.95, 0.99))
        with self._lock:
            count, total = self.count, self.total
            minimum = self.min if count else 0.0
            maximum = self.max
        return {
            "count": count,
            "mean_ms": round(total / count * 1e3, 3) if count else 0.0,
            "min_ms": round(minimum * 1e3, 3),
            "p50_ms": round(p50 * 1e3, 3),
            "p95_ms": round(p95 * 1e3, 3),
            "p99_ms": round(p99 * 1e3, 3),
            "max_ms": round(maximum * 1e3, 3),
        }

    def __len__(self) -> int:
        return self.count
