"""End-to-end structured tracing and metrics export.

Public surface:

* :class:`~repro.observability.tracer.Tracer` / :class:`Span` — span-tree
  collection, with :data:`NOOP_TRACER` as the free disabled default;
* :mod:`~repro.observability.export` — JSONL and Chrome ``trace_event``
  serialization (``chrome://tracing`` / Perfetto);
* :class:`~repro.observability.histogram.LatencyHistogram` — p50/p95/p99
  probe-latency snapshots for the serving layer.

Instrumentation lives with the instrumented code: the MapReduce runtime
spans jobs/waves/task attempts, ``FSJoin`` spans its driver phases, and
``SimilarityService``/``SegmentIndex`` span the probe path.  See
``docs/architecture.md`` § Observability.
"""

from repro.observability.export import (
    chrome_path_for,
    read_jsonl,
    to_chrome_trace,
    validate_jsonl_record,
    write_chrome_trace,
    write_jsonl,
)
from repro.observability.histogram import LatencyHistogram
from repro.observability.tracer import NOOP_TRACER, NoopTracer, Span, Tracer

__all__ = [
    "NOOP_TRACER",
    "NoopTracer",
    "Span",
    "Tracer",
    "LatencyHistogram",
    "chrome_path_for",
    "read_jsonl",
    "to_chrome_trace",
    "validate_jsonl_record",
    "write_chrome_trace",
    "write_jsonl",
]
