"""Span-based tracing for pipelines, jobs, tasks and probes.

A :class:`Span` is one named, timed interval of work — a whole pipeline, a
MapReduce job, one map-wave, a single task *attempt* (retries included), or
one service probe stage.  Spans form a tree through ``parent_id``, carry a
``phase`` category (``pipeline``/``job``/``map``/``reduce``/``shuffle``/
``service``/…) and a free-form ``attrs`` dict for counter deltas and volumes.

A :class:`Tracer` collects spans for one run.  The crucial properties:

* **Zero-cost-ish when disabled.**  The default everywhere is the module
  singleton :data:`NOOP_TRACER`, whose ``span()`` hands back one shared
  reusable context manager and whose ``add``/``adopt`` are no-ops — a
  disabled trace costs one attribute check per instrumentation site and
  never changes results (the bit-identical invariant is CI-enforced).

* **Mergeable across workers.**  A process-pool task cannot write into the
  driver's tracer, so tasks build their own local :class:`Tracer`, ship the
  spans back (plain picklable dataclasses) and the driver re-homes them
  with :meth:`Tracer.adopt` *in task-index order* — the same order in which
  outputs and counters are merged, so traces are deterministic up to
  timing.  ``time.perf_counter()`` timestamps share a clock across
  processes on the supported platforms (CLOCK_MONOTONIC / QPC /
  mach_absolute_time are system-wide), so merged spans stay comparable.

Spans are recorded in *start order* (a parent is appended when it opens,
before any of its children), which is what lets ``adopt`` remap parent ids
in one forward pass.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple


@dataclass
class Span:
    """One timed interval of work.

    Attributes:
        name: Human-readable label (``"job:fsjoin-filter"``, ``"map:3"``).
        phase: Category for grouping/reporting (``"map"``, ``"service"``, …).
        start: ``time.perf_counter()`` at open, seconds.
        duration: Wall seconds from open to close (0 while still open).
        span_id: Tracer-unique id (> 0).
        parent_id: Enclosing span's id, or ``None`` for a root span.
        attrs: Free-form annotations: counter deltas, volumes, statuses.
    """

    name: str
    phase: str
    start: float
    duration: float = 0.0
    span_id: int = 0
    parent_id: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form, the JSONL record schema."""
        return {
            "name": self.name,
            "phase": self.phase,
            "start": self.start,
            "duration": self.duration,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Span":
        return cls(
            name=record["name"],
            phase=record["phase"],
            start=record["start"],
            duration=record["duration"],
            span_id=record["span_id"],
            parent_id=record["parent_id"],
            attrs=dict(record.get("attrs", {})),
        )


class Tracer:
    """Collects a tree of spans; thread-compatible via one internal stack.

    The open-span stack is driver-side state: parallel task attempts do not
    share a tracer (each worker task builds its own and the driver adopts
    the results), so no locking is needed on the hot path.
    """

    enabled: bool = True

    def __init__(self) -> None:
        self._spans: List[Span] = []
        self._stack: List[int] = []
        self._next_id = 1

    # -- recording -----------------------------------------------------
    @contextmanager
    def span(self, name: str, phase: str = "", **attrs: Any) -> Iterator[Span]:
        """Open a child span of the innermost open span; closes on exit.

        The yielded span is live — handlers may add ``attrs`` entries while
        it is open (e.g. counter deltas computed at the end of the block).
        """
        record = Span(
            name=name,
            phase=phase,
            start=time.perf_counter(),
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else None,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._spans.append(record)  # append on open: parents precede children
        self._stack.append(record.span_id)
        try:
            yield record
        finally:
            record.duration = time.perf_counter() - record.start
            self._stack.pop()

    def add(
        self,
        name: str,
        phase: str,
        start: float,
        duration: float,
        **attrs: Any,
    ) -> Span:
        """Record an already-measured interval under the current open span.

        Used for accumulated stage timings (e.g. the per-candidate
        verification time of one probe, summed across candidates).
        """
        record = Span(
            name=name,
            phase=phase,
            start=start,
            duration=duration,
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else None,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._spans.append(record)
        return record

    def adopt(
        self, spans: Sequence[Span], parent_id: Optional[int] = None
    ) -> None:
        """Re-home worker-collected spans under this tracer.

        Span ids are reassigned from this tracer's sequence; parent links
        *within* the adopted batch are preserved, and batch roots are
        attached to ``parent_id`` (default: the innermost open span).
        Callers must adopt batches in task-index order to keep traces
        deterministic.
        """
        if parent_id is None:
            parent_id = self._stack[-1] if self._stack else None
        mapping: Dict[int, int] = {}
        for span in spans:
            new_id = self._next_id
            self._next_id += 1
            mapping[span.span_id] = new_id
            self._spans.append(
                replace(
                    span,
                    span_id=new_id,
                    parent_id=mapping.get(span.parent_id, parent_id),
                    attrs=dict(span.attrs),
                )
            )

    # -- reading -------------------------------------------------------
    def spans(self) -> Tuple[Span, ...]:
        """All recorded spans, in start order."""
        return tuple(self._spans)

    def mark(self) -> int:
        """Position token for :meth:`spans_since` (spans recorded so far)."""
        return len(self._spans)

    def spans_since(self, mark: int) -> Tuple[Span, ...]:
        """Spans recorded after ``mark`` (one run's slice of the tracer)."""
        return tuple(self._spans[mark:])

    def clear(self) -> None:
        self._spans.clear()
        self._stack.clear()
        self._next_id = 1

    def __len__(self) -> int:
        return len(self._spans)


class _AttrSink(dict):
    """A dict that silently drops writes (the no-op span's ``attrs``)."""

    def __setitem__(self, key: Any, value: Any) -> None:  # pragma: no cover
        pass

    def update(self, *args: Any, **kwargs: Any) -> None:
        pass

    def setdefault(self, key: Any, default: Any = None) -> Any:
        return default


class _NoopContext:
    """Reusable, reentrant context manager yielding the shared no-op span."""

    __slots__ = ("_span",)

    def __init__(self, span: Span) -> None:
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc: Any) -> None:
        return None


class NoopTracer(Tracer):
    """The disabled tracer: every operation is (nearly) free.

    ``span()`` returns one shared context manager whose span swallows
    attribute writes; ``add``/``adopt`` discard their input.  Instrumented
    code therefore never needs an ``if tracer is not None`` guard — it asks
    ``tracer.enabled`` only where skipping *measurement work* (extra
    ``perf_counter`` calls, counter snapshots) matters.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._noop = _NoopContext(
            Span(name="noop", phase="", start=0.0, attrs=_AttrSink())
        )

    def span(self, name: str, phase: str = "", **attrs: Any):  # type: ignore[override]
        return self._noop

    def add(self, name, phase, start, duration, **attrs):  # type: ignore[override]
        return self._noop._span

    def adopt(self, spans, parent_id=None) -> None:
        return None


#: Shared disabled tracer — the default for every instrumented component.
NOOP_TRACER = NoopTracer()
