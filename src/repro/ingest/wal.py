"""Write-ahead log on the DFS: segmented, digest-checked, batch-atomic.

Every accepted write batch is made durable *before* it touches the
memtable: the batch's records are appended to the active WAL segment as
individual entries, then a **commit marker** — the fsync point — is
appended in a second DFS call.  Each entry carries a sha256 digest over
its canonical ``repr`` (the same envelope discipline as the snapshot
format and :func:`repro.mapreduce.hdfs.content_digest`), so replay can
tell a well-formed entry from a torn or bit-rotted one without trusting
pickling.

Replay is **batch-atomic** and **truncating**:

* a batch is visible only when its commit marker is present and intact —
  records whose commit append died (a torn write) are discarded;
* the log is scanned in segment order and entry order; the first entry
  that fails its digest check, parses wrong, or breaks the sequence
  monotonicity truncates the log at that point — everything after it is
  discarded, mirroring how a real LSM store handles a torn tail.

Segments are named with zero-padded sequence numbers under one root, so
:meth:`repro.mapreduce.hdfs.InMemoryDFS.list_prefix` returns them in
chronological order.  Fully-applied segments (their highest sequence
number is covered by the manifest's ``wal_applied_seq``) are garbage-
collected by :meth:`WriteAheadLog.truncate_through` after a flush commits.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.records import Record
from repro.errors import WALError
from repro.mapreduce.hdfs import InMemoryDFS

#: Entry kinds: a record belonging to a batch, and the batch's fsync point.
KIND_RECORD = "record"
KIND_COMMIT = "commit"


def entry_digest(seq: int, kind: str, batch_id: int, payload) -> str:
    """sha256 over the canonical ``repr`` of one WAL entry."""
    hasher = hashlib.sha256()
    hasher.update(repr((seq, kind, batch_id, payload)).encode("utf-8"))
    return hasher.hexdigest()


@dataclass(frozen=True)
class ReplayBatch:
    """One committed batch recovered from the log."""

    batch_id: int
    commit_seq: int
    records: Tuple[Record, ...]


@dataclass
class ReplayResult:
    """What a log scan found: committed batches plus damage accounting."""

    batches: List[ReplayBatch] = field(default_factory=list)
    #: highest sequence number of any intact entry (−1 for an empty log).
    last_seq: int = -1
    #: next batch id a writer should use.
    next_batch_id: int = 0
    #: intact record entries whose commit marker never landed (torn tail).
    torn_entries: int = 0
    #: sequence number of the first corrupt/torn entry, or ``None``.
    truncated_at: Optional[int] = None
    #: entries discarded at and after ``truncated_at``.
    truncated_entries: int = 0
    #: total intact entries scanned (records + commit markers).
    entries_seen: int = 0

    def committed_records(self) -> int:
        return sum(len(batch.records) for batch in self.batches)


class WriteAheadLog:
    """Append-only segmented log of write batches on an :class:`InMemoryDFS`.

    The writer state (next sequence number, next batch id, active segment)
    is positioned either by :meth:`bootstrap` (fresh log) or by
    :meth:`replay` (recovery), so a recovered writer continues appending
    after the last intact entry — including after torn entries, whose
    sequence numbers are burned but never reused.
    """

    def __init__(
        self,
        dfs: InMemoryDFS,
        root: str,
        segment_entries: int = 256,
    ) -> None:
        if segment_entries < 2:
            raise WALError("segment_entries must be >= 2")
        self.dfs = dfs
        self.root = root.rstrip("/")
        self.segment_entries = segment_entries
        self._next_seq = 0
        self._next_batch = 0
        self._segment = 0
        self._entries_in_segment = 0
        self._appended_batches = 0
        #: pin id → lowest sequence number the pin still needs (entries
        #: *beyond* that seq are protected from truncation).
        self._pins: Dict[int, int] = {}
        self._next_pin = 0

    @property
    def last_seq(self) -> int:
        """Highest sequence number handed out (−1 before any append)."""
        return self._next_seq - 1

    @property
    def next_batch(self) -> int:
        return self._next_batch

    # -- paths ---------------------------------------------------------
    def segment_path(self, segment: int) -> str:
        return f"{self.root}/{segment:08d}"

    @property
    def current_path(self) -> str:
        """The segment the next append lands in (the drill's tear target)."""
        return self.segment_path(self._segment)

    def segment_paths(self) -> List[str]:
        return self.dfs.list_prefix(self.root + "/")

    # -- writing -------------------------------------------------------
    def append_batch(self, records: Sequence[Record]) -> Tuple[int, int]:
        """Make a batch durable; returns ``(batch_id, commit_seq)``.

        Two DFS appends: the record entries land first, then the commit
        marker.  A crash between the two leaves a torn batch that replay
        discards — the caller's contract is that a batch is applied iff
        its commit marker survived.
        """
        if not records:
            raise WALError("cannot log an empty batch")
        if self._entries_in_segment >= self.segment_entries:
            self._segment += 1
            self._entries_in_segment = 0
        batch_id = self._next_batch
        path = self.current_path
        entries = []
        for record in records:
            seq = self._next_seq
            self._next_seq += 1
            payload = (record.rid, tuple(record.tokens))
            entries.append(
                (seq, (KIND_RECORD, batch_id,
                       entry_digest(seq, KIND_RECORD, batch_id, payload),
                       payload))
            )
        self.dfs.append(path, entries)
        self._entries_in_segment += len(entries)
        commit_seq = self._next_seq
        self._next_seq += 1
        marker = (commit_seq, (KIND_COMMIT, batch_id,
                               entry_digest(commit_seq, KIND_COMMIT,
                                            batch_id, len(records)),
                               len(records)))
        self.dfs.append(path, [marker])
        self._entries_in_segment += 1
        self._next_batch = batch_id + 1
        self._appended_batches += 1
        return batch_id, commit_seq

    # -- reading / recovery --------------------------------------------
    def replay(self, after_seq: int = -1) -> ReplayResult:
        """Scan the log and return committed batches beyond ``after_seq``.

        Also repositions this instance's writer state to continue after
        the last intact entry, so ``replay`` doubles as ``open`` for
        recovery.  Batch atomicity: a batch whose commit marker has
        ``seq > after_seq`` is returned whole; one whose commit marker is
        missing (torn) or damaged is discarded whole.
        """
        result = ReplayResult()
        pending: dict = {}
        last_segment = 0
        entries_in_last = 0
        stop = False
        for path in self.segment_paths():
            if stop:
                break
            entries = self.dfs.read(path)
            try:
                segment = int(path.rsplit("/", 1)[-1])
            except ValueError:
                raise WALError(f"foreign file in WAL directory: {path!r}")
            for position, pair in enumerate(entries):
                parsed = self._parse(pair, result.last_seq)
                if parsed is None:
                    # Torn/corrupt entry: truncate here, count the rest.
                    seq_guess = result.last_seq + 1
                    result.truncated_at = seq_guess
                    result.truncated_entries = len(entries) - position
                    stop = True
                    break
                seq, kind, batch_id, payload = parsed
                result.last_seq = seq
                result.entries_seen += 1
                last_segment = segment
                entries_in_last = position + 1
                # Burn the batch id even when the commit marker never
                # lands: a recovered writer reusing a torn batch's id
                # would merge the torn records into its own batch.
                result.next_batch_id = max(result.next_batch_id, batch_id + 1)
                if kind == KIND_RECORD:
                    rid, tokens = payload
                    pending.setdefault(batch_id, []).append(
                        Record(rid, tuple(tokens))
                    )
                else:
                    records = tuple(pending.pop(batch_id, ()))
                    if seq > after_seq:
                        result.batches.append(
                            ReplayBatch(batch_id, seq, records)
                        )
            if stop:
                # Later segments are beyond the truncation point too.
                remaining = self.segment_paths()
                idx = remaining.index(path)
                for later in remaining[idx + 1:]:
                    result.truncated_entries += len(self.dfs.read(later))
                break
        result.torn_entries = sum(len(v) for v in pending.values())
        # Reposition the writer after the last intact entry.
        self._next_seq = result.last_seq + 1
        self._next_batch = result.next_batch_id
        self._segment = last_segment
        self._entries_in_segment = entries_in_last
        if self._entries_in_segment >= self.segment_entries:
            self._segment += 1
            self._entries_in_segment = 0
        return result

    def _parse(self, pair, prev_seq: int):
        """Validate one stored pair; ``None`` marks it torn/corrupt."""
        try:
            seq, body = pair
            kind, batch_id, digest, payload = body
        except (TypeError, ValueError):
            return None
        if not isinstance(seq, int) or seq <= prev_seq:
            return None
        if kind not in (KIND_RECORD, KIND_COMMIT):
            return None
        if entry_digest(seq, kind, batch_id, payload) != digest:
            return None
        return seq, kind, batch_id, payload

    # -- segment pinning -----------------------------------------------
    def pin(self, after_seq: int) -> int:
        """Hold every entry beyond ``after_seq`` against garbage collection.

        A rebuild catching a replica up from a snapshot needs to replay
        WAL entries past the snapshot's applied sequence; without a pin, a
        flush committing *during* the catch-up would
        :meth:`truncate_through` those very segments out from under it.
        Returns a pin id for :meth:`release` — released on readmission or
        abort, never leaked by a crashed rebuild (pins are in-memory; a
        restarted writer starts unpinned).
        """
        pin_id = self._next_pin
        self._next_pin += 1
        self._pins[pin_id] = after_seq
        return pin_id

    def release(self, pin_id: int) -> None:
        """Drop one pin; unknown/already-released ids are a no-op."""
        self._pins.pop(pin_id, None)

    def pinned_through(self) -> Optional[int]:
        """The lowest sequence number any live pin still protects beyond
        (``None`` when nothing is pinned)."""
        return min(self._pins.values()) if self._pins else None

    # -- maintenance ---------------------------------------------------
    def truncate_through(self, applied_seq: int) -> int:
        """Drop segments fully covered by ``applied_seq``; returns the count.

        Pure garbage collection: replay already skips entries at or below
        the manifest's ``wal_applied_seq``, so deleting them only reclaims
        space.  A segment is kept if any entry in it is newer than
        ``applied_seq`` or fails to parse (damage stays visible) — or
        newer than the lowest live :meth:`pin` (an in-flight rebuild still
        needs it for catch-up).
        """
        floor = self.pinned_through()
        if floor is not None and floor < applied_seq:
            applied_seq = floor
        dropped = 0
        for path in self.segment_paths():
            entries = self.dfs.read(path)
            keep = False
            prev = -1
            for pair in entries:
                parsed = self._parse(pair, prev)
                if parsed is None or parsed[0] > applied_seq:
                    keep = True
                    break
                prev = parsed[0]
            if keep:
                break
            self.dfs.delete(path)
            dropped += 1
        return dropped

    def stats(self) -> dict:
        """Shape of the live log, for ``status()`` and the CLI."""
        paths = self.segment_paths()
        return {
            "segments": len(paths),
            "entries": sum(len(self.dfs.read(p)) for p in paths),
            "bytes": sum(self.dfs.size_bytes(p) for p in paths),
            "next_seq": self._next_seq,
            "next_batch": self._next_batch,
            "appended_batches": self._appended_batches,
            "pins": len(self._pins),
        }
