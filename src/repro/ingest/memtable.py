"""The mutable tier of the streaming index.

A memtable is a deliberately thin wrapper around a small
:class:`~repro.service.index.SegmentIndex` that *shares* the streaming
index's :class:`~repro.core.ordering.GlobalOrder`: batches intern fresh
tokens through ``TokenVocab.extend`` (append-only ids, existing columns
and pivot cuts stay valid), so the memtable and every immutable
generation encode queries identically by construction.

That sharing is what makes the merge exact: a probe evaluates each
candidate record independently (candidate generation depends only on the
query's prefix tokens, filters and verification only on the query plus
that record's own columns), so probing the memtable and each generation
separately with the same :class:`~repro.service.index.EncodedQuery` and
concatenating — record ids are disjoint across tiers — is bit-identical
to probing a single index built from the union.  The property tests in
``tests/test_ingest_memtable.py`` pin this down on both probe paths.

Sealing is cheap by design: the memtable's inner index *becomes* the
flushed generation (its posting columns are sealed in place), and a new
empty memtable takes over — no rebuild on the write path.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.core.ordering import GlobalOrder
from repro.core.partitioning import VerticalPartitioner
from repro.core.pivots import PivotMethod
from repro.data.records import Record
from repro.service.index import SegmentIndex


class Memtable:
    """Mutable write-absorbing index over a shared global order."""

    def __init__(
        self,
        order: GlobalOrder,
        partitioner: VerticalPartitioner,
        pivot_method: PivotMethod = PivotMethod.EVEN_TF,
        probe_path: str = "columnar",
    ) -> None:
        self.index = SegmentIndex(order, partitioner, pivot_method)
        self.index.probe_path = probe_path

    def __len__(self) -> int:
        return len(self.index)

    def __contains__(self, rid: int) -> bool:
        return rid in self.index

    def rids(self) -> List[int]:
        return self.index.rids()

    def apply_batch(self, records: Iterable[Record]) -> int:
        """Absorb a batch (interning fresh tokens); all-or-nothing."""
        return self.index.apply_batch(records)

    def records(self) -> List[Record]:
        """Materialize the absorbed records (ascending rid) for merges."""
        return [
            Record(rid, self.index.tokens_of(rid)) for rid in self.index.rids()
        ]

    def approx_bytes(self) -> int:
        stats = self.index.posting_stats()
        return stats["posting_bytes"] + stats["record_bytes"]

    def seal(self) -> SegmentIndex:
        """Freeze the inner index for hand-off as an immutable generation."""
        self.index._seal()
        return self.index
