"""Leveled compaction over segment generations, with pivot re-derivation.

Flushes produce many small level-0 generations; every probe pays one
candidate scan per live generation, so the read amplification grows with
the flush count.  :class:`LeveledPolicy` bounds it the LSM way: when a
level accumulates ``fanout`` generations they are merged into a single
generation one level up, keeping the live set logarithmic in the number
of flushes.

Merging is deliberately boring — and that is the correctness argument:
the merged index is built by inserting every constituent record in
ascending rid order through the standard ``SegmentIndex`` insert path,
under the same shared order and partitioner.  That makes the merged
generation *structurally* identical (equal pickle bytes) to a fresh
index built from the same records, which the chaos drill asserts
directly.  Record gathering fans out per generation through the
pluggable executors, so a thread/process pool can prepare a large merge
while the serial path stays the deterministic default.

Pivot re-derivation answers the skew question the ROADMAP imports from
the adaptive-join and MapReduce-limits papers: batch-appended tokens are
interned *after* every existing id, so they all land in the last
fragment and the Even-TF balance the original cuts were chosen for
drifts.  :func:`pivot_drift` measures the coefficient of variation of
per-fragment term-frequency mass under the current cuts and compares it
with a freshly selected pivot set; when the current skew passes the
threshold and re-cutting would actually help, the streaming index runs a
*major* compaction that rebuilds one top-level generation under the new
cuts and bumps the pivot epoch in the manifest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.ordering import GlobalOrder
from repro.core.partitioning import VerticalPartitioner
from repro.core.pivots import PivotMethod, select_pivots
from repro.data.records import Record
from repro.ingest.generations import Generation
from repro.mapreduce.executors import TaskExecutor
from repro.service.index import SegmentIndex


@dataclass(frozen=True)
class CompactionPlan:
    """One merge the policy wants: ``gen_ids`` (level ``level``) → level+1."""

    level: int
    gen_ids: Tuple[int, ...]

    @property
    def output_level(self) -> int:
        return self.level + 1


@dataclass(frozen=True)
class LeveledPolicy:
    """Merge a level when it holds ``fanout`` or more generations."""

    fanout: int = 4

    def plan(self, generations: Sequence[Generation]) -> Optional[CompactionPlan]:
        """The lowest over-full level's merge, or ``None`` when in shape.

        Lowest level first: level-0 runs are the smallest and the most
        numerous, so draining them first buys the biggest read-
        amplification win per merged byte.
        """
        by_level: dict = {}
        for gen in generations:
            by_level.setdefault(gen.level, []).append(gen.gen_id)
        for level in sorted(by_level):
            ids = by_level[level]
            if len(ids) >= self.fanout:
                return CompactionPlan(level, tuple(sorted(ids)))
        return None


def gather_records(
    generations: Sequence[Generation], executor: TaskExecutor
) -> List[Record]:
    """All records of ``generations``, ascending rid, gathered in parallel.

    ``run_tasks`` returns per-generation lists in task-index order, so the
    gather is deterministic for any executor backend; rids are disjoint
    across generations, so one final sort yields the global order.
    """
    def one(gen: Generation) -> List[Record]:
        return [
            Record(rid, gen.index.tokens_of(rid)) for rid in gen.index.rids()
        ]

    per_gen = executor.run_tasks(one, list(generations))
    merged = [record for chunk in per_gen for record in chunk]
    merged.sort(key=lambda record: record.rid)
    return merged


def merge_generations(
    generations: Sequence[Generation],
    order: GlobalOrder,
    partitioner: VerticalPartitioner,
    pivot_method: PivotMethod,
    executor: TaskExecutor,
    probe_path: str = "columnar",
) -> SegmentIndex:
    """Build the merged index for a plan's input generations."""
    merged = SegmentIndex(order, partitioner, pivot_method)
    merged.probe_path = probe_path
    for record in gather_records(generations, executor):
        merged._insert(record)
    merged._seal()
    return merged


def fragment_mass_cv(
    rank_frequencies: Sequence[int], cuts: Sequence[int]
) -> float:
    """Coefficient of variation of per-fragment term-frequency mass.

    The balance objective Even-TF pivots optimize, measured on the
    *current* (possibly extended) vocabulary: 0 means perfectly even,
    larger means the cuts no longer fit the frequency distribution.
    """
    bounds = [0] + [int(c) for c in cuts] + [len(rank_frequencies)]
    masses = [
        float(sum(rank_frequencies[bounds[i]:bounds[i + 1]]))
        for i in range(len(bounds) - 1)
    ]
    if len(masses) < 2:
        return 0.0
    mean = sum(masses) / len(masses)
    if mean == 0:
        return 0.0
    variance = sum((m - mean) ** 2 for m in masses) / len(masses)
    return (variance ** 0.5) / mean


def pivot_drift(
    order: GlobalOrder,
    cuts: Sequence[int],
    pivot_method: PivotMethod,
    pivot_seed: int = 0,
    threshold: float = 0.35,
) -> Optional[Tuple[int, ...]]:
    """Fresh cuts when skew drifted past ``threshold``, else ``None``.

    Re-derivation must pay for itself: the current imbalance has to
    exceed the threshold *and* the freshly selected pivot set has to be
    measurably better (under the same balance metric) before a major
    compaction is worth forcing.
    """
    frequencies = order.rank_frequencies
    current_cv = fragment_mass_cv(frequencies, cuts)
    if current_cv <= threshold:
        return None
    fresh = select_pivots(
        frequencies, len(cuts) + 1, method=pivot_method, seed=pivot_seed
    )
    if tuple(fresh) == tuple(cuts):
        return None
    if fragment_mass_cv(frequencies, fresh) >= current_cv:
        return None
    return tuple(fresh)
