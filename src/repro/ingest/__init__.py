"""Streaming ingest: DFS write-ahead log, memtable, LSM-style generations.

The serving stack (PRs 2–6) is read-optimized; this package makes writes
first-class.  Records enter through a digest-checked write-ahead log on
the DFS (:mod:`repro.ingest.wal`), are absorbed by a small mutable
memtable index (:mod:`repro.ingest.memtable`), and are periodically
flushed to immutable columnar segment generations that a leveled
compaction policy merges in the background
(:mod:`repro.ingest.generations`, :mod:`repro.ingest.compaction`).
:class:`~repro.ingest.streaming.StreamingIndex` is the façade that ties
the tiers together and duck-types :class:`~repro.service.index.SegmentIndex`
so the service and cluster layers serve probes — bit-identical to a
single index built from the union — while writes keep flowing.
"""

from repro.ingest.compaction import CompactionPlan, LeveledPolicy, merge_generations
from repro.ingest.generations import (
    COMMITTED_NAME,
    CURRENT_NAME,
    Generation,
    GenerationStore,
    ManifestStore,
)
from repro.ingest.memtable import Memtable
from repro.ingest.streaming import IngestConfig, StreamingIndex
from repro.ingest.wal import ReplayBatch, ReplayResult, WriteAheadLog

__all__ = [
    "CompactionPlan",
    "LeveledPolicy",
    "merge_generations",
    "COMMITTED_NAME",
    "CURRENT_NAME",
    "Generation",
    "GenerationStore",
    "ManifestStore",
    "Memtable",
    "IngestConfig",
    "StreamingIndex",
    "ReplayBatch",
    "ReplayResult",
    "WriteAheadLog",
]
