"""Immutable segment generations and the digest-checked MANIFEST.

A **generation** is a sealed :class:`~repro.service.index.SegmentIndex`
persisted to the DFS as a snapshot-v3-style payload: the pickled columnar
index plus a sha256 digest over those bytes, verified before unpickling —
the same envelope discipline as :mod:`repro.service.snapshot`.

The **manifest** is the commit protocol.  Each committed state of the
streaming index is a versioned, digest-checked document listing the live
generations (id, level, path, payload digest), the WAL high-water mark
(``wal_applied_seq``), the current pivot cuts, and the pivot epoch.
Committing version *v* is a three-step protocol with a single atomic
commit record:

1. write the immutable manifest file ``{root}/v-{v:08d}`` (no-clobber);
2. overwrite ``{root}/CURRENT`` with ``v`` — **the commit record**; a
   crash before this leaves the previous state, a crash after it leaves
   the new state, never a mix;
3. overwrite ``{root}/COMMITTED`` (the post-commit audit mark) and
   garbage-collect superseded manifest versions.

The chaos drill's kill-points bracket step 2: killing the ``CURRENT``
write is the *pre-commit* point (the fault hook fires before any
mutation, so the old pointer survives), killing the ``COMMITTED`` write
is the *post-commit* point (the new state is already live; only cleanup
is outstanding).  Recovery loads ``CURRENT``, digest-checks the manifest
and every referenced generation payload, and deletes orphans — segments
or manifests written by a crashed flush/compaction that never committed.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import IngestError
from repro.mapreduce.hdfs import InMemoryDFS
from repro.service.index import SegmentIndex

CURRENT_NAME = "CURRENT"
COMMITTED_NAME = "COMMITTED"
#: Format tag inside each persisted generation payload.
SEGMENT_FORMAT = "repro-ingest-segment"
#: Payload layout version — tracks the snapshot v3 columnar pickle.
SEGMENT_VERSION = 3
MANIFEST_FORMAT = "repro-ingest-manifest"
MANIFEST_VERSION = 1

_PICKLE_ERRORS = (
    pickle.UnpicklingError, EOFError, AttributeError, ImportError,
    IndexError, KeyError, TypeError, ValueError,
)


def manifest_digest(doc: Dict) -> str:
    """sha256 over the manifest's canonical ``repr`` serialization."""
    return hashlib.sha256(
        repr(sorted(doc.items())).encode("utf-8")
    ).hexdigest()


@dataclass
class Generation:
    """One immutable segment generation, live in memory and on the DFS."""

    gen_id: int
    level: int
    index: SegmentIndex
    path: str
    digest: str
    order_size: int

    @property
    def records(self) -> int:
        return len(self.index)

    def meta(self) -> Dict:
        """The manifest entry for this generation (plain repr-safe data)."""
        return {
            "gen": self.gen_id,
            "level": self.level,
            "path": self.path,
            "digest": self.digest,
            "records": self.records,
            "order_size": self.order_size,
        }


class GenerationStore:
    """Persist/load sealed indexes as digest-checked DFS payloads."""

    def __init__(self, dfs: InMemoryDFS, root: str) -> None:
        self.dfs = dfs
        self.root = root.rstrip("/")

    def path_of(self, gen_id: int) -> str:
        return f"{self.root}/gen-{gen_id:06d}"

    def list_segments(self) -> List[str]:
        return self.dfs.list_prefix(self.root + "/")

    def persist(self, gen_id: int, level: int, index: SegmentIndex) -> Generation:
        """Write one generation payload; returns its live handle."""
        index._seal()
        body = pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(body).hexdigest()
        path = self.path_of(gen_id)
        meta = {
            "format": SEGMENT_FORMAT,
            "version": SEGMENT_VERSION,
            "gen": gen_id,
            "level": level,
            "records": len(index),
            "order_size": index.order.vocab_size,
        }
        self.dfs.write(
            path, [("meta", meta), ("digest", digest), ("index", body)]
        )
        return Generation(
            gen_id=gen_id, level=level, index=index, path=path,
            digest=digest, order_size=index.order.vocab_size,
        )

    def load(self, path: str, expected_digest: Optional[str] = None) -> Generation:
        """Read one payload back, digest-checking before unpickling."""
        pairs = dict(self.dfs.read(path))
        meta = pairs.get("meta")
        body = pairs.get("index")
        digest = pairs.get("digest")
        if (
            not isinstance(meta, dict)
            or meta.get("format") != SEGMENT_FORMAT
            or not isinstance(body, bytes)
        ):
            raise IngestError(f"{path!r} is not an ingest segment payload")
        if meta.get("version") != SEGMENT_VERSION:
            raise IngestError(
                f"segment version mismatch at {path!r}: "
                f"{meta.get('version')!r} != {SEGMENT_VERSION}"
            )
        actual = hashlib.sha256(body).hexdigest()
        if actual != digest or (
            expected_digest is not None and actual != expected_digest
        ):
            raise IngestError(
                f"segment at {path!r} failed its integrity check "
                f"(sha256 {actual[:12]}…) — refusing to load"
            )
        try:
            index = pickle.loads(body)
        except _PICKLE_ERRORS as exc:
            raise IngestError(
                f"segment payload at {path!r} is unreadable: {exc}"
            ) from None
        if not isinstance(index, SegmentIndex):
            raise IngestError(f"segment at {path!r} carries no index")
        return Generation(
            gen_id=meta["gen"], level=meta["level"], index=index,
            path=path, digest=digest, order_size=meta["order_size"],
        )

    def delete(self, path: str) -> None:
        self.dfs.delete(path)


class ManifestStore:
    """Versioned manifests plus the CURRENT commit pointer."""

    def __init__(self, dfs: InMemoryDFS, root: str, keep: int = 3) -> None:
        self.dfs = dfs
        self.root = root.rstrip("/")
        self.keep = max(1, keep)

    # -- paths (also the chaos drill's kill-point targets) -------------
    @property
    def current_path(self) -> str:
        return f"{self.root}/{CURRENT_NAME}"

    @property
    def committed_path(self) -> str:
        return f"{self.root}/{COMMITTED_NAME}"

    def version_path(self, version: int) -> str:
        return f"{self.root}/v-{version:08d}"

    def version_paths(self) -> List[str]:
        return self.dfs.list_prefix(self.root + "/v-")

    # -- commit protocol -----------------------------------------------
    def commit(self, doc: Dict) -> int:
        """Run the three-step commit; returns the committed version.

        ``doc`` must already carry its ``"version"``.  The ``CURRENT``
        overwrite is the single atomic commit record; everything after it
        is cleanup that recovery can redo.
        """
        version = doc["version"]
        self.dfs.write(
            self.version_path(version),
            [("manifest", doc), ("digest", manifest_digest(doc))],
        )
        # Commit record: before this write the previous state is live,
        # after it the new one is — the drill kills on both sides.
        self.dfs.write(
            self.current_path, [("version", version)], overwrite=True
        )
        self.dfs.write(
            self.committed_path, [("version", version)], overwrite=True
        )
        for path in self.version_paths():
            if path < self.version_path(version - self.keep + 1):
                self.dfs.delete(path)
        return version

    def load_current(self) -> Dict:
        """Follow CURRENT to the live manifest, digest-checking it."""
        if not self.dfs.exists(self.current_path):
            raise IngestError(
                f"no ingest state at {self.root!r} (missing CURRENT)"
            )
        pointer = dict(self.dfs.read(self.current_path))
        version = pointer.get("version")
        if not isinstance(version, int):
            raise IngestError(f"unreadable CURRENT pointer at {self.root!r}")
        return self.load_version(version)

    def load_version(self, version: int) -> Dict:
        pairs = dict(self.dfs.read(self.version_path(version)))
        doc = pairs.get("manifest")
        if not isinstance(doc, dict) or doc.get("format") != MANIFEST_FORMAT:
            raise IngestError(f"manifest v{version} is not readable")
        if manifest_digest(doc) != pairs.get("digest"):
            raise IngestError(
                f"manifest v{version} failed its integrity check"
            )
        return doc

    def new_doc(
        self,
        version: int,
        generations: List[Generation],
        wal_applied_seq: int,
        next_gen: int,
        next_batch: int,
        cuts: Tuple[int, ...],
        pivot_epoch: int,
        pivot_method: str,
        pivot_seed: int = 0,
    ) -> Dict:
        return {
            "format": MANIFEST_FORMAT,
            "manifest_version": MANIFEST_VERSION,
            "version": version,
            "generations": [gen.meta() for gen in generations],
            "wal_applied_seq": wal_applied_seq,
            "next_gen": next_gen,
            "next_batch": next_batch,
            "cuts": list(cuts),
            "pivot_epoch": pivot_epoch,
            "pivot_method": pivot_method,
            "pivot_seed": pivot_seed,
        }
