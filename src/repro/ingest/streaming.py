""":class:`StreamingIndex` — the façade tying WAL, memtable and generations.

The write path per accepted batch:

1. validate (duplicate or oversized rids are rejected *before* anything
   is logged — the batch is all-or-nothing across every tier);
2. append the batch to the WAL and its commit marker — the durability
   point: from here a crash replays the batch on recovery;
3. absorb it into the memtable (interning fresh tokens append-only);
4. when the memtable passes its size limit, **flush**: seal it into an
   immutable level-0 generation, persist the payload, and commit a new
   manifest whose ``wal_applied_seq`` covers the flushed batches;
5. when a level over-fills (or pivot skew drifts), **compact**.

The read path merges tiers: a probe runs against the memtable and every
generation with one shared :class:`~repro.service.index.EncodedQuery`
and concatenates the hits — record ids are disjoint across tiers and
every record is evaluated independently, so results are bit-identical
to a single ``SegmentIndex`` over the union (property-tested in
``tests/test_ingest_memtable.py``).  The façade duck-types the index API
(``probe``/``probe_batch``/``encode_query``/``apply_batch``/...), so
:class:`~repro.service.service.SimilarityService` and the cluster layer
serve it unchanged.

Recovery (:meth:`StreamingIndex.recover`) follows CURRENT to the live
manifest, digest-checks and loads every referenced generation, deletes
orphans from crashed commits, and replays the WAL tail beyond
``wal_applied_seq`` into a fresh memtable — each step traced as a
``phase="recovery"`` span so the chaos drill can count it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import FilterConfig
from repro.core.ordering import GlobalOrder
from repro.core.partitioning import VerticalPartitioner
from repro.core.pivots import PivotMethod, select_pivots
from repro.data.records import Record, RecordCollection
from repro.errors import ConfigError, DataError, IngestError
from repro.ingest.compaction import (
    LeveledPolicy,
    merge_generations,
    pivot_drift,
)
from repro.ingest.generations import Generation, GenerationStore, ManifestStore
from repro.ingest.memtable import Memtable
from repro.ingest.wal import ReplayResult, WriteAheadLog
from repro.mapreduce.counters import Counters
from repro.mapreduce.executors import create_executor
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.runtime import SimulatedCluster
from repro.observability.tracer import NOOP_TRACER, Tracer
from repro.service.index import (
    PROBE_PATHS,
    EncodedQuery,
    SearchHit,
    SegmentIndex,
)
from repro.service.vocab import TokenVocab
from repro.similarity.functions import SimilarityFunction


@dataclass(frozen=True)
class IngestConfig:
    """Streaming-index knobs (all deterministic; no wall-clock triggers).

    Attributes:
        memtable_limit: Records the memtable absorbs before an automatic
            flush (when ``auto_flush``).
        wal_segment_entries: WAL entries per segment file before rolling.
        fanout: Leveled-compaction fanout: a level with this many
            generations is merged one level up.
        auto_flush: Flush automatically when the memtable fills.
        auto_compact: Run ``maybe_compact`` after each automatic flush.
        skew_threshold: Fragment term-frequency-mass CV beyond which a
            major compaction re-derives the pivots.
        executor: Backend for compaction's record gathering
            (``serial`` | ``thread`` | ``process``).
        keep_manifests: Superseded manifest versions retained for
            post-mortems before GC.
    """

    memtable_limit: int = 64
    wal_segment_entries: int = 256
    fanout: int = 4
    auto_flush: bool = True
    auto_compact: bool = True
    skew_threshold: float = 0.35
    executor: str = "serial"
    keep_manifests: int = 3

    def __post_init__(self) -> None:
        if self.memtable_limit < 1:
            raise ConfigError("memtable_limit must be >= 1")
        if self.fanout < 2:
            raise ConfigError("fanout must be >= 2")
        if self.skew_threshold < 0:
            raise ConfigError("skew_threshold must be >= 0")


class StreamingIndex:
    """Durable, probe-consistent streaming writes under the serving stack."""

    def __init__(
        self,
        dfs: InMemoryDFS,
        root: str,
        order: GlobalOrder,
        partitioner: VerticalPartitioner,
        pivot_method: PivotMethod,
        pivot_seed: int,
        config: IngestConfig,
        tracer: Tracer,
        counters: Counters,
    ) -> None:
        self.dfs = dfs
        self.root = root.rstrip("/")
        self.order = order
        self.partitioner = partitioner
        self.pivot_method = PivotMethod(pivot_method)
        self.pivot_seed = pivot_seed
        self.config = config
        self.tracer = tracer
        self.counters = counters
        self.wal = WriteAheadLog(
            dfs, f"{self.root}/wal", config.wal_segment_entries
        )
        self.segments = GenerationStore(dfs, f"{self.root}/segments")
        self.manifests = ManifestStore(
            dfs, f"{self.root}/manifest", keep=config.keep_manifests
        )
        self.policy = LeveledPolicy(config.fanout)
        self.generations: List[Generation] = []
        self.pivot_epoch = 0
        self.manifest_version = 0
        self._next_gen = 0
        self._wal_applied_seq = -1
        self._probe_path = "columnar"
        self._flushes = 0
        self._compactions = 0
        self.memtable = Memtable(
            order, partitioner, self.pivot_method, self._probe_path
        )

    # -- construction ---------------------------------------------------
    @classmethod
    def create(
        cls,
        dfs: InMemoryDFS,
        root: str = "ingest",
        records: Optional[RecordCollection] = None,
        n_vertical: int = 30,
        pivot_method: PivotMethod = PivotMethod.EVEN_TF,
        pivot_seed: int = 0,
        config: Optional[IngestConfig] = None,
        tracer: Optional[Tracer] = None,
        counters: Optional[Counters] = None,
        cluster: Optional[SimulatedCluster] = None,
    ) -> "StreamingIndex":
        """Bootstrap a fresh streaming index at ``root``.

        With ``records``, generation 0 is a regular ``SegmentIndex.build``
        over them (the offline ordering job picks the order and pivots);
        without, generation 0 is empty and the order grows entirely from
        ingested batches.  Either way the bootstrap generation is
        persisted immediately and manifest v1 committed, so recovery
        always has an order snapshot to start from.
        """
        if records is not None and len(records):
            base = SegmentIndex.build(
                records, n_vertical=n_vertical, pivot_method=pivot_method,
                pivot_seed=pivot_seed, cluster=cluster or SimulatedCluster(),
            )
            order, partitioner = base.order, base.partitioner
        else:
            order = GlobalOrder([])
            partitioner = VerticalPartitioner(
                select_pivots(
                    order.rank_frequencies, n_vertical,
                    method=pivot_method, seed=pivot_seed,
                )
            )
            base = SegmentIndex(order, partitioner, pivot_method)
            base._seal()
        return cls._bootstrap(
            dfs, root, base, pivot_method, pivot_seed, config, tracer,
            counters,
        )

    @classmethod
    def attach(
        cls,
        dfs: InMemoryDFS,
        root: str,
        order: GlobalOrder,
        partitioner: VerticalPartitioner,
        pivot_method: PivotMethod = PivotMethod.EVEN_TF,
        pivot_seed: int = 0,
        config: Optional[IngestConfig] = None,
        tracer: Optional[Tracer] = None,
        counters: Optional[Counters] = None,
    ) -> "StreamingIndex":
        """Bootstrap an *empty* streaming tier sharing an existing order.

        This is how a cluster router grows a write tier: the router's
        order and partitioner are shared (not copied), so queries encode
        identically across the base shards and the ingest tier.
        """
        base = SegmentIndex(order, partitioner, pivot_method)
        base._seal()
        return cls._bootstrap(
            dfs, root, base, pivot_method, pivot_seed, config, tracer,
            counters,
        )

    @classmethod
    def _bootstrap(
        cls, dfs, root, base, pivot_method, pivot_seed, config, tracer,
        counters,
    ) -> "StreamingIndex":
        self = cls(
            dfs, root, base.order, base.partitioner, pivot_method,
            pivot_seed, config or IngestConfig(),
            tracer if tracer is not None else NOOP_TRACER,
            counters if counters is not None else Counters(),
        )
        base.probe_path = self._probe_path
        gen = self.segments.persist(self._next_gen, 0, base)
        self._next_gen += 1
        self.generations.append(gen)
        self._commit_manifest()
        return self

    @classmethod
    def recover(
        cls,
        dfs: InMemoryDFS,
        root: str = "ingest",
        config: Optional[IngestConfig] = None,
        tracer: Optional[Tracer] = None,
        counters: Optional[Counters] = None,
    ) -> "StreamingIndex":
        """Restart from the DFS: manifest → generations → WAL replay.

        Every step that undoes crash damage is recorded as a
        ``phase="recovery"`` span with an ``action`` attribute
        (``manifest-rollback``, ``segment-gc``, ``wal-replay``), the
        schema ``tools/check_trace.py`` validates.
        """
        tracer = tracer if tracer is not None else NOOP_TRACER
        counters = counters if counters is not None else Counters()
        config = config or IngestConfig()
        root = root.rstrip("/")
        manifests = ManifestStore(
            dfs, f"{root}/manifest", keep=config.keep_manifests
        )
        doc = manifests.load_current()
        store = GenerationStore(dfs, f"{root}/segments")
        generations = []
        for meta in doc["generations"]:
            generations.append(store.load(meta["path"], meta["digest"]))
        if not generations:
            raise IngestError(f"manifest at {root!r} lists no generations")
        # The order snapshot: the newest generation's order is a superset
        # of every other's (extend is append-only), so re-pointing all
        # tiers at it keeps every id mapping valid.
        master = max(generations, key=lambda g: g.order_size)
        order = master.index.order
        for gen in generations:
            gen.index.order = order
            gen.index.vocab = TokenVocab(order)
        partitioner = VerticalPartitioner(tuple(doc["cuts"]))
        self = cls(
            dfs, root, order, partitioner, PivotMethod(doc["pivot_method"]),
            doc.get("pivot_seed", 0), config, tracer, counters,
        )
        self.generations = generations
        self.manifest_version = doc["version"]
        self._next_gen = doc["next_gen"]
        self._wal_applied_seq = doc["wal_applied_seq"]
        self.pivot_epoch = doc["pivot_epoch"]
        self.memtable = Memtable(
            order, partitioner, self.pivot_method, self._probe_path
        )
        self._gc_orphans(doc)
        self._replay_wal()
        # Batch ids never go backwards, even when the replayed WAL tail
        # was truncated below what the manifest had already handed out.
        self.wal._next_batch = max(self.wal._next_batch, doc["next_batch"])
        return self

    def _gc_orphans(self, doc: Dict) -> None:
        """Delete segments/manifests a crashed commit left behind."""
        live = {meta["path"] for meta in doc["generations"]}
        orphans = [
            path for path in self.segments.list_segments()
            if path not in live
        ]
        stale = [
            path for path in self.manifests.version_paths()
            if path > self.manifests.version_path(doc["version"])
        ]
        if not orphans and not stale:
            return
        with self.tracer.span(
            "ingest-gc", phase="recovery", action="segment-gc",
            orphan_segments=len(orphans), orphan_manifests=len(stale),
        ):
            for path in orphans:
                self.segments.delete(path)
            for path in stale:
                # An uncommitted higher manifest version: roll it back so
                # a redone flush/compaction can claim the version number.
                self.dfs.delete(path)
        self.counters.increment("ingest", "gc_orphans",
                                len(orphans) + len(stale))

    def _replay_wal(self) -> ReplayResult:
        result = self.wal.replay(after_seq=self._wal_applied_seq)
        with self.tracer.span(
            "wal-replay", phase="recovery", action="wal-replay",
            batches=len(result.batches),
            records=result.committed_records(),
            torn_entries=result.torn_entries,
            truncated_entries=result.truncated_entries,
        ):
            for batch in result.batches:
                self.memtable.apply_batch(batch.records)
        self.counters.increment(
            "ingest", "replayed_batches", len(result.batches)
        )
        self.counters.increment(
            "ingest", "replayed_records", result.committed_records()
        )
        if result.torn_entries or result.truncated_entries:
            self.counters.increment(
                "ingest", "torn_entries",
                result.torn_entries + result.truncated_entries,
            )
        return result

    # -- the write path -------------------------------------------------
    def apply_batch(self, new_records: Iterable[Record]) -> int:
        """Log, absorb, and maybe flush/compact one batch; returns its size.

        All-or-nothing: duplicate rids (against *any* tier or within the
        batch) and oversized rids raise :class:`DataError` before the WAL
        is touched, so a rejected batch leaves no trace.
        """
        batch = list(new_records)
        if not batch:
            return 0
        seen: set = set()
        for record in batch:
            if record.rid in self or record.rid in seen:
                raise DataError(f"record id {record.rid} already indexed")
            if record.rid.bit_length() >= 63:
                raise DataError(
                    f"record id {record.rid} does not fit the index's "
                    "64-bit posting columns"
                )
            seen.add(record.rid)
        with self.tracer.span(
            "wal-append", phase="ingest", records=len(batch)
        ) as span:
            batch_id, _ = self.wal.append_batch(batch)
            span.attrs["batch_id"] = batch_id
        with self.tracer.span(
            "memtable-apply", phase="ingest", records=len(batch)
        ):
            self.memtable.apply_batch(batch)
        self.counters.increment("ingest", "batches")
        self.counters.increment("ingest", "records", len(batch))
        if self.config.auto_flush and len(self.memtable) >= self.config.memtable_limit:
            self.flush()
            if self.config.auto_compact:
                self.maybe_compact()
        return len(batch)

    def flush(self) -> Optional[Generation]:
        """Seal the memtable into a level-0 generation and commit it.

        No-op on an empty memtable.  The commit's ``wal_applied_seq``
        advances to the last logged entry, after which the covered WAL
        segments are garbage-collected — a crash anywhere in between
        replays from the last commit and converges to the same state.
        """
        if not len(self.memtable):
            return None
        applied_seq = self.wal.last_seq
        with self.tracer.span(
            "flush", phase="ingest", records=len(self.memtable)
        ) as span:
            sealed = self.memtable.seal()
            gen = self.segments.persist(self._next_gen, 0, sealed)
            self._next_gen += 1
            self.generations.append(gen)
            self.memtable = Memtable(
                self.order, self.partitioner, self.pivot_method,
                self._probe_path,
            )
            self._wal_applied_seq = applied_seq
            self._commit_manifest()
            self.wal.truncate_through(applied_seq)
            span.attrs["gen"] = gen.gen_id
        self._flushes += 1
        self.counters.increment("ingest", "flushes")
        return gen

    def maybe_compact(self) -> Optional[Generation]:
        """Run the policy's next merge — or a pivot-re-deriving major one."""
        fresh_cuts = pivot_drift(
            self.order, self.partitioner.cuts, self.pivot_method,
            self.pivot_seed, self.config.skew_threshold,
        )
        if fresh_cuts is not None:
            return self.compact(major=True, cuts=fresh_cuts)
        if self.policy.plan(self.generations) is None:
            return None
        return self.compact()

    def compact(
        self,
        major: bool = False,
        cuts: Optional[Tuple[int, ...]] = None,
    ) -> Optional[Generation]:
        """Merge generations per the leveled policy (or all, when major).

        A major compaction first flushes the memtable, then rebuilds one
        top-level generation — under freshly derived pivots when ``cuts``
        is given, bumping the pivot epoch.  The merged payload is
        persisted *before* the manifest commit record flips to it, and
        obsolete segments are deleted only after — the two chaos
        kill-points (:meth:`kill_points`) bracket exactly that commit.
        """
        if major:
            self.flush()
            inputs = list(self.generations)
            if len(inputs) < 2 and cuts is None:
                return None
            level = max((gen.level for gen in inputs), default=0) + 1
        else:
            plan = self.policy.plan(self.generations)
            if plan is None:
                return None
            chosen = set(plan.gen_ids)
            inputs = [g for g in self.generations if g.gen_id in chosen]
            level = plan.output_level
        if not inputs:
            return None
        partitioner = self.partitioner
        epoch = self.pivot_epoch
        if cuts is not None:
            partitioner = VerticalPartitioner(tuple(cuts))
            epoch += 1
        executor = create_executor(self.config.executor)
        with self.tracer.span(
            "compaction", phase="ingest", inputs=len(inputs), level=level,
            major=major, pivot_epoch=epoch,
        ) as span:
            merged = merge_generations(
                inputs, self.order, partitioner, self.pivot_method,
                executor, self._probe_path,
            )
            gen = self.segments.persist(self._next_gen, level, merged)
            self._next_gen += 1
            survivors = [
                g for g in self.generations
                if g.gen_id not in {i.gen_id for i in inputs}
            ]
            self.generations = survivors + [gen]
            if cuts is not None:
                self.partitioner = partitioner
                self.pivot_epoch = epoch
                self.memtable = Memtable(
                    self.order, partitioner, self.pivot_method,
                    self._probe_path,
                )
            self._commit_manifest()
            # Post-commit cleanup: the old payloads are now unreferenced.
            for old in inputs:
                self.segments.delete(old.path)
            span.attrs["gen"] = gen.gen_id
            span.attrs["records"] = gen.records
        self._compactions += 1
        self.counters.increment("ingest", "compactions")
        if cuts is not None:
            self.counters.increment("ingest", "pivot_rederivations")
        return gen

    def _commit_manifest(self) -> None:
        self.manifest_version += 1
        doc = self.manifests.new_doc(
            self.manifest_version, self.generations, self._wal_applied_seq,
            self._next_gen, self.wal.next_batch, self.partitioner.cuts,
            self.pivot_epoch, self.pivot_method.value, self.pivot_seed,
        )
        self.manifests.commit(doc)

    def kill_points(self) -> Dict[str, Tuple[str, str]]:
        """The chaos drill's ``(op, path)`` targets around the commit record."""
        return {
            "pre-commit": ("write", self.manifests.current_path),
            "post-commit": ("write", self.manifests.committed_path),
            "wal-tear": ("append", self.wal.current_path),
        }

    # -- the read path (SegmentIndex duck type) ---------------------------
    @property
    def vocab(self) -> TokenVocab:
        return TokenVocab(self.order)

    @property
    def probe_path(self) -> str:
        return self._probe_path

    @probe_path.setter
    def probe_path(self, value: str) -> None:
        if value not in PROBE_PATHS:
            raise ConfigError(
                f"probe_path must be one of {PROBE_PATHS}, got {value!r}"
            )
        self._probe_path = value
        self.memtable.index.probe_path = value
        for gen in self.generations:
            gen.index.probe_path = value

    def _tiers(self) -> List[SegmentIndex]:
        tiers = [gen.index for gen in self.generations]
        if len(self.memtable):
            tiers.append(self.memtable.index)
        return tiers

    def __len__(self) -> int:
        return len(self.memtable) + sum(g.records for g in self.generations)

    def __contains__(self, rid: int) -> bool:
        if rid in self.memtable:
            return True
        return any(rid in gen.index for gen in self.generations)

    def rids(self) -> List[int]:
        merged: List[int] = []
        for tier in self._tiers():
            merged.extend(tier.rids())
        merged.sort()
        return merged

    def tokens_of(self, rid: int) -> Tuple[str, ...]:
        for tier in self._tiers():
            if rid in tier:
                return tier.tokens_of(rid)
        raise DataError(f"no record with id {rid} in the index")

    @property
    def n_fragments(self) -> int:
        return self.partitioner.n_partitions

    def fragment_loads(self) -> List[int]:
        """Posting load per fragment, summed over current-epoch tiers.

        Generations from older pivot epochs partition differently and are
        excluded; the number tracks how well the *current* cuts fit.
        """
        loads = [0] * self.n_fragments
        cuts = tuple(self.partitioner.cuts)
        for tier in self._tiers():
            if tuple(tier.partitioner.cuts) != cuts:
                continue
            for v, load in enumerate(tier.fragment_loads()):
                loads[v] += load
        return loads

    def posting_stats(self) -> Dict[str, int]:
        totals = {
            "records": 0, "postings": 0,
            "posting_bytes": 0, "record_bytes": 0,
        }
        for tier in self._tiers():
            stats = tier.posting_stats()
            for key in totals:
                totals[key] += stats[key]
        totals["fragments"] = self.n_fragments
        totals["vocab"] = self.order.vocab_size
        return totals

    def encode_query(self, tokens: Iterable[str]) -> EncodedQuery:
        ids, unknown = self.vocab.encode_known(tokens)
        return EncodedQuery(tuple(ids), unknown)

    def probe(
        self,
        tokens: Iterable[str],
        theta: float,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        filters: Optional[FilterConfig] = None,
        counters: Optional[Counters] = None,
        tracer: Optional[Tracer] = None,
    ) -> List[SearchHit]:
        query = self.encode_query(tokens)
        return self.probe_encoded(query, theta, func, filters, counters,
                                  tracer)

    def probe_encoded(
        self,
        query: EncodedQuery,
        theta: float,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        filters: Optional[FilterConfig] = None,
        counters: Optional[Counters] = None,
        tracer: Optional[Tracer] = None,
    ) -> List[SearchHit]:
        """Merged exact probe across all tiers (one encode, N scans)."""
        hits: List[SearchHit] = []
        for tier in self._tiers():
            hits.extend(
                tier.probe_encoded(query, theta, func, filters, counters,
                                   tracer)
            )
        hits.sort(key=lambda hit: (-hit.score, hit.rid))
        return hits

    def probe_batch(
        self,
        queries: Sequence[EncodedQuery],
        theta: float,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        filters: Optional[FilterConfig] = None,
        counters: Optional[Counters] = None,
        tracer: Optional[Tracer] = None,
    ) -> List[List[SearchHit]]:
        """Batched merged probe: each tier's batched scan, merged per query."""
        merged: List[List[SearchHit]] = [[] for _ in queries]
        for tier in self._tiers():
            per_query = tier.probe_batch(queries, theta, func, filters,
                                         counters, tracer)
            for qi, hits in enumerate(per_query):
                merged[qi].extend(hits)
        for hits in merged:
            hits.sort(key=lambda hit: (-hit.score, hit.rid))
        return merged

    # -- materialization & status ----------------------------------------
    def to_segment_index(self) -> SegmentIndex:
        """A fresh single ``SegmentIndex`` over the union of all tiers.

        Built by inserting every record ascending-rid through the standard
        insert path under the current order and partitioner — the same
        construction compaction uses, so after a full compaction the lone
        generation is structurally identical (equal pickle bytes) to this.
        Used for snapshot export and the chaos drill's identity check.
        """
        union = SegmentIndex(self.order, self.partitioner, self.pivot_method)
        union.probe_path = self._probe_path
        for rid in self.rids():
            union._insert(Record(rid, self.tokens_of(rid)))
        union._seal()
        return union

    def status(self) -> Dict:
        """Machine-readable ingest state for ``repro cluster status`` & CLI."""
        return {
            "records": len(self),
            "memtable": {
                "records": len(self.memtable),
                "limit": self.config.memtable_limit,
            },
            "generations": [
                {"gen": g.gen_id, "level": g.level, "records": g.records}
                for g in self.generations
            ],
            "wal": self.wal.stats(),
            "manifest_version": self.manifest_version,
            "pivot_epoch": self.pivot_epoch,
            "flushes": self._flushes,
            "compactions": self._compactions,
            "vocab": self.order.vocab_size,
            "fragments": self.n_fragments,
        }
