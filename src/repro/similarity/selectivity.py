"""Sampling-based join-selectivity estimation.

Before committing to a full distributed join, planners want a cheap
estimate of how many result pairs a threshold will produce.  The classic
estimator joins a uniform sample of ``n`` of the ``N`` records exactly and
scales the pair count by ``(N/n)²`` — each unordered record pair survives
sampling with probability ``≈ (n/N)²``, so the scaled count is (nearly)
unbiased.  Variance shrinks with sample size and with averaging over
independent trials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.ppjoin import ppjoin_self_join
from repro.data.datasets import sample
from repro.data.records import RecordCollection
from repro.errors import ConfigError
from repro.similarity.functions import SimilarityFunction


@dataclass(frozen=True)
class SelectivityEstimate:
    """Result of a sampling run."""

    estimated_pairs: float
    sample_size: int
    trials: int
    per_trial: tuple


def estimate_result_count(
    records: RecordCollection,
    theta: float,
    func: SimilarityFunction = SimilarityFunction.JACCARD,
    sample_size: Optional[int] = None,
    trials: int = 3,
    seed: int = 0,
) -> SelectivityEstimate:
    """Estimate the self-join result count at threshold ``theta``.

    Args:
        records: The full collection.
        theta: Similarity threshold.
        func: Similarity function.
        sample_size: Records per trial (default: ``max(50, N // 10)``,
            capped at ``N``).
        trials: Independent samples to average over.
        seed: Base seed; trial ``i`` uses ``seed + i``.
    """
    total = len(records)
    if total < 2:
        return SelectivityEstimate(0.0, total, 0, ())
    if trials < 1:
        raise ConfigError("trials must be >= 1")
    n = sample_size or max(50, total // 10)
    n = min(n, total)
    if n < 2:
        raise ConfigError("sample_size must be >= 2")

    scale = (total / n) ** 2
    estimates = []
    for trial in range(trials):
        sampled = sample(records, n / total, seed=seed + trial)
        found = len(ppjoin_self_join(sampled, theta, func))
        estimates.append(found * scale)
    return SelectivityEstimate(
        estimated_pairs=sum(estimates) / len(estimates),
        sample_size=n,
        trials=trials,
        per_trial=tuple(estimates),
    )
