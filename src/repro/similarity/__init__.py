"""Set-similarity functions and the threshold algebra built on them.

This subpackage is the mathematical substrate shared by FS-Join and every
baseline: the similarity functions themselves (:mod:`repro.similarity.functions`),
the equivalent-overlap / length-bound / prefix-length derivations used by all
filter-and-verification algorithms (:mod:`repro.similarity.thresholds`), and
exact pair verification (:mod:`repro.similarity.verify`).
"""

from repro.similarity.functions import (
    SimilarityFunction,
    cosine,
    dice,
    get_similarity_function,
    jaccard,
    overlap,
)
from repro.similarity.thresholds import (
    length_lower_bound,
    length_upper_bound,
    prefix_length,
    required_overlap,
    similarity_from_overlap,
    passes_threshold,
)
from repro.similarity.selectivity import SelectivityEstimate, estimate_result_count
from repro.similarity.verify import intersection_size, verify_overlap, verify_pair

__all__ = [
    "SimilarityFunction",
    "jaccard",
    "dice",
    "cosine",
    "overlap",
    "get_similarity_function",
    "required_overlap",
    "length_lower_bound",
    "length_upper_bound",
    "prefix_length",
    "similarity_from_overlap",
    "passes_threshold",
    "intersection_size",
    "verify_overlap",
    "verify_pair",
    "SelectivityEstimate",
    "estimate_result_count",
]
