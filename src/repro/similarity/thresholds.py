"""Threshold algebra for filter-and-verification similarity joins.

Every signature-based join (FS-Join and all baselines) relies on translating
a similarity threshold ``θ`` into three derived quantities:

* **required overlap** — the minimum ``|s ∩ t|`` two records of known sizes
  must share to possibly reach ``θ``;
* **length bounds** — the admissible partner sizes for a record of size ``a``
  (the basis of the StrL-Filter, Lemma 1, and of horizontal partitioning);
* **prefix length** — how many of a record's (globally ordered) tokens must
  be indexed so that any similar pair is guaranteed to collide on at least
  one indexed token.

The paper states these for Jaccard; this module derives the same algebra for
Dice and Cosine so all three verification rules of Section V-B are supported
end to end.

Floating-point comparisons use a small symmetric epsilon (``EPS``) so that
pairs lying exactly on the threshold are accepted, matching the paper's
``sim ≥ θ`` semantics.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError
from repro.similarity.functions import SimilarityFunction

#: Tolerance for float comparisons at the threshold boundary.
EPS = 1e-9


def _check_threshold(theta: float) -> None:
    if not 0.0 < theta <= 1.0:
        raise ConfigError(f"similarity threshold must be in (0, 1], got {theta!r}")


def _ceil(x: float) -> int:
    """Ceiling that forgives float noise just below an integer."""
    return int(math.ceil(x - EPS))


def _floor(x: float) -> int:
    """Floor that forgives float noise just above an integer."""
    return int(math.floor(x + EPS))


def required_overlap(
    func: SimilarityFunction, theta: float, size_s: int, size_t: int
) -> int:
    """Minimum ``|s ∩ t|`` for ``sim(s, t) ≥ θ`` given the two set sizes.

    Jaccard: ``c ≥ θ/(1+θ)·(|s|+|t|)`` — the bound used by the paper's
    SegI-Filter (Lemma 3).  Dice: ``c ≥ θ/2·(|s|+|t|)``.  Cosine:
    ``c ≥ θ·sqrt(|s|·|t|)``.
    """
    _check_threshold(theta)
    func = SimilarityFunction(func)
    if func is SimilarityFunction.JACCARD:
        return _ceil(theta / (1.0 + theta) * (size_s + size_t))
    if func is SimilarityFunction.DICE:
        return _ceil(theta / 2.0 * (size_s + size_t))
    return _ceil(theta * math.sqrt(size_s * size_t))


def length_lower_bound(func: SimilarityFunction, theta: float, size: int) -> int:
    """Smallest partner size that can be similar to a record of ``size`` tokens."""
    _check_threshold(theta)
    func = SimilarityFunction(func)
    if func is SimilarityFunction.JACCARD:
        return _ceil(theta * size)
    if func is SimilarityFunction.DICE:
        return _ceil(theta * size / (2.0 - theta))
    return _ceil(theta * theta * size)


def length_upper_bound(func: SimilarityFunction, theta: float, size: int) -> int:
    """Largest partner size that can be similar to a record of ``size`` tokens."""
    _check_threshold(theta)
    func = SimilarityFunction(func)
    if func is SimilarityFunction.JACCARD:
        return _floor(size / theta)
    if func is SimilarityFunction.DICE:
        return _floor(size * (2.0 - theta) / theta)
    return _floor(size / (theta * theta))


def min_overlap_any_partner(
    func: SimilarityFunction, theta: float, size: int
) -> int:
    """Required overlap against the *most favourable* admissible partner.

    This is the lower bound used to size prefixes: the shortest admissible
    partner minimises the required overlap.  For Jaccard the value is
    ``ceil(θ·|s|)``.
    """
    smallest = max(1, length_lower_bound(func, theta, size))
    return max(1, required_overlap(func, theta, size, smallest))


def prefix_length(func: SimilarityFunction, theta: float, size: int) -> int:
    """Prefix-filter length for a record of ``size`` globally ordered tokens.

    If ``sim(s, t) ≥ θ`` then the first ``prefix_length`` tokens of each
    record (under the same global ordering) share at least one token.  For
    Jaccard this is the familiar ``|s| − ceil(θ·|s|) + 1``.
    """
    if size == 0:
        return 0
    return size - min_overlap_any_partner(func, theta, size) + 1


def similarity_from_overlap(
    func: SimilarityFunction, common: int, size_s: int, size_t: int
) -> float:
    """Exact similarity score from ``|s ∩ t|`` and the two set sizes.

    This is the verification rule of Section V-B: FS-Join never re-reads the
    original strings, it derives the score from the aggregated common-token
    count alone.
    """
    func = SimilarityFunction(func)
    if func is SimilarityFunction.JACCARD:
        union = size_s + size_t - common
        return common / union if union else 0.0
    if func is SimilarityFunction.DICE:
        total = size_s + size_t
        return 2.0 * common / total if total else 0.0
    if not size_s or not size_t:
        return 0.0
    return common / math.sqrt(size_s * size_t)


def passes_threshold(
    func: SimilarityFunction, theta: float, common: int, size_s: int, size_t: int
) -> bool:
    """Whether ``sim(s, t) ≥ θ`` given ``|s ∩ t|`` and the set sizes.

    Uses cross-multiplied comparisons so no division is performed; ties at
    the threshold are accepted.
    """
    _check_threshold(theta)
    func = SimilarityFunction(func)
    if common <= 0:
        # Zero overlap means similarity 0 under all three functions, which
        # can never reach a positive threshold (including the empty/empty
        # pair, defined as 0 by the join semantics).
        return False
    if func is SimilarityFunction.JACCARD:
        return common * (1.0 + theta) + EPS >= theta * (size_s + size_t)
    if func is SimilarityFunction.DICE:
        return 2.0 * common + EPS >= theta * (size_s + size_t)
    return common * common + EPS >= theta * theta * size_s * size_t
