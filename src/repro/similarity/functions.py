"""Set-based similarity functions.

The paper (Section V-B) verifies candidates under three similarity functions:
Jaccard, Dice and Cosine.  All three are defined over token *sets*; callers
may pass any iterable of hashable tokens, but passing ``frozenset``/``set``
avoids a conversion.
"""

from __future__ import annotations

import enum
import math
from typing import AbstractSet, Iterable, Union

TokenSet = Union[AbstractSet, Iterable]


class SimilarityFunction(str, enum.Enum):
    """The similarity functions supported throughout the package."""

    JACCARD = "jaccard"
    DICE = "dice"
    COSINE = "cosine"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def _as_set(tokens: TokenSet) -> AbstractSet:
    if isinstance(tokens, (set, frozenset)):
        return tokens
    return set(tokens)


def overlap(s: TokenSet, t: TokenSet) -> int:
    """Return ``|s ∩ t|``, the number of common tokens."""
    a, b = _as_set(s), _as_set(t)
    if len(a) > len(b):
        a, b = b, a
    return sum(1 for token in a if token in b)


def jaccard(s: TokenSet, t: TokenSet) -> float:
    """Jaccard similarity ``|s ∩ t| / |s ∪ t|``.

    Two empty sets are defined to have similarity 0.0 (an empty record can
    never reach a positive threshold, matching the join semantics).
    """
    a, b = _as_set(s), _as_set(t)
    inter = overlap(a, b)
    union = len(a) + len(b) - inter
    return inter / union if union else 0.0


def dice(s: TokenSet, t: TokenSet) -> float:
    """Dice similarity ``2|s ∩ t| / (|s| + |t|)``."""
    a, b = _as_set(s), _as_set(t)
    total = len(a) + len(b)
    return 2.0 * overlap(a, b) / total if total else 0.0


def cosine(s: TokenSet, t: TokenSet) -> float:
    """Cosine similarity for sets: ``|s ∩ t| / sqrt(|s| · |t|)``."""
    a, b = _as_set(s), _as_set(t)
    if not a or not b:
        return 0.0
    return overlap(a, b) / math.sqrt(len(a) * len(b))


_FUNCTIONS = {
    SimilarityFunction.JACCARD: jaccard,
    SimilarityFunction.DICE: dice,
    SimilarityFunction.COSINE: cosine,
}


def get_similarity_function(name: Union[str, SimilarityFunction]):
    """Return the callable for a similarity function name.

    Accepts either a :class:`SimilarityFunction` or its string value
    (case-insensitive).
    """
    func = SimilarityFunction(str(name).lower())
    return _FUNCTIONS[func]
