"""Exact verification of candidate pairs.

Verification computes the true intersection size of two token lists.  When
both lists are sorted under the same global ordering a linear merge suffices
(the ``O(m + n)`` case the paper mentions); unsorted inputs fall back to a
hash-set intersection.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.similarity.functions import SimilarityFunction
from repro.similarity.thresholds import passes_threshold, similarity_from_overlap


def intersection_size(
    s: Sequence, t: Sequence, sorted_input: bool = False
) -> int:
    """Return ``|set(s) ∩ set(t)|``.

    With ``sorted_input=True`` both sequences must be strictly increasing
    under a shared total order (tokens are unique within a record); a linear
    merge is used.  Otherwise a hash intersection is used.
    """
    if not sorted_input:
        return len(frozenset(s) & frozenset(t))
    i = j = count = 0
    len_s, len_t = len(s), len(t)
    while i < len_s and j < len_t:
        a, b = s[i], t[j]
        if a == b:
            count += 1
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return count


def verify_pair(
    s: Sequence,
    t: Sequence,
    theta: float,
    func: SimilarityFunction = SimilarityFunction.JACCARD,
    sorted_input: bool = False,
) -> Optional[float]:
    """Verify one candidate pair; return its score if ``sim ≥ θ`` else None."""
    common = intersection_size(s, t, sorted_input=sorted_input)
    if passes_threshold(func, theta, common, len(s), len(t)):
        return similarity_from_overlap(func, common, len(s), len(t))
    return None
