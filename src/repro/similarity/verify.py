"""Exact verification of candidate pairs.

Verification computes the true intersection size of two token lists.  When
both lists are sorted under the same global ordering a linear merge suffices
(the ``O(m + n)`` case the paper mentions); unsorted inputs fall back to a
hash-set intersection.

The merge additionally supports **early termination** via a ``required``
bound (PPJoin's positional filter, applied during verification): at every
merge step the best achievable intersection is the matches found so far
plus the shorter remaining suffix, so as soon as that upper bound drops
below the required overlap the pair provably fails the threshold and the
merge is abandoned.  :func:`verify_pair` derives ``required`` from the
similarity threshold, making the early-terminating merge its default path.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.similarity.functions import SimilarityFunction
from repro.similarity.thresholds import (
    passes_threshold,
    required_overlap,
    similarity_from_overlap,
)


def intersection_size(
    s: Sequence,
    t: Sequence,
    sorted_input: bool = False,
    required: Optional[int] = None,
) -> int:
    """Return ``|set(s) ∩ set(t)|``.

    With ``sorted_input=True`` both sequences must be strictly increasing
    under a shared total order (tokens are unique within a record); a linear
    merge is used.  Otherwise a hash intersection is used.

    ``required`` (sorted merge only) enables early termination: when the
    matches found so far plus the shorter remaining suffix cannot reach
    ``required``, the merge stops and returns the current count.  The
    result is then some value ``< required`` — exact enough for any
    threshold test that needs at least ``required`` common tokens, but not
    necessarily the true intersection size.  With ``required=None`` (or on
    the hash path, which cannot terminate early) the result is exact.
    """
    if not sorted_input:
        # One set, one pass over ``t`` (set.intersection deduplicates).
        return len(set(s).intersection(t))
    i = j = count = 0
    len_s, len_t = len(s), len(t)
    if required is None:
        while i < len_s and j < len_t:
            a, b = s[i], t[j]
            if a == b:
                count += 1
                i += 1
                j += 1
            elif a < b:
                i += 1
            else:
                j += 1
        return count
    while i < len_s and j < len_t:
        remaining = len_s - i
        other = len_t - j
        if count + (remaining if remaining < other else other) < required:
            return count
        a, b = s[i], t[j]
        if a == b:
            count += 1
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return count


def verify_overlap(
    func: SimilarityFunction,
    theta: float,
    common: int,
    size_s: int,
    size_t: int,
) -> Optional[float]:
    """Threshold-test a known overlap; return the score if ``sim ≥ θ``.

    The shared verification rule of Section V-B: both the in-memory
    verifiers and FS-Join's count-aggregation
    :class:`~repro.core.verify_job.VerificationJob` derive the decision
    from ``|s ∩ t|`` and the two set sizes alone.
    """
    if passes_threshold(func, theta, common, size_s, size_t):
        return similarity_from_overlap(func, common, size_s, size_t)
    return None


def verify_pair(
    s: Sequence,
    t: Sequence,
    theta: float,
    func: SimilarityFunction = SimilarityFunction.JACCARD,
    sorted_input: bool = False,
    early_termination: bool = True,
) -> Optional[float]:
    """Verify one candidate pair; return its score if ``sim ≥ θ`` else None.

    With sorted input the merge early-terminates by default once the pair
    provably cannot reach the equivalent-overlap threshold
    ``required_overlap(func, θ, |s|, |t|)``; ``early_termination=False``
    forces the full merge (the naive reference the property tests compare
    against).  Both paths return identical results: an abandoned merge can
    only happen when the true overlap is below the required bound, which
    :func:`~repro.similarity.thresholds.passes_threshold` rejects.
    """
    func = SimilarityFunction(func)
    required: Optional[int] = None
    if sorted_input and early_termination:
        required = required_overlap(func, theta, len(s), len(t))
    common = intersection_size(s, t, sorted_input=sorted_input, required=required)
    return verify_overlap(func, theta, common, len(s), len(t))
