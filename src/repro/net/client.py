"""Clients for the gateway's TCP front door.

Two flavours over the same wire protocol:

* :class:`GatewayClient` — synchronous, blocking sockets.  What the CLI
  (``repro query --connect``) and ordinary scripts use.
* :class:`AsyncGatewayClient` — asyncio streams, for callers already in
  an event loop (the bench harness drives many connections with it).

Both pool connections (a bounded stack of idle sockets reused across
calls), handshake the tenant once per connection, time out reads with a
configurable budget, and retry *idempotent* frames — search,
search_batch, status — on connection-level failures by reconnecting and
re-sending, with the cluster's deterministic-jitter
:class:`~repro.cluster.failover.RetryPolicy` pacing the attempts.
``ingest-append`` and ``drain`` are never retried: a torn connection
leaves their outcome unknown, and re-sending could double-apply.

Typed errors cross the wire by class name: a server-side
:class:`~repro.errors.QuotaExceededError` raises as exactly that here
(see :func:`~repro.net.protocol.raise_wire_error`), and is never
retried — the server already answered authoritatively.  Connection-level
failures (refused, reset, timeout) surface as
:class:`~repro.errors.TransportError` once the retry budget is spent.

``search_batch`` rides one frame each way, whatever the batch size —
the batching the paper's communication-cost argument asks the transport
to preserve.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.cluster.failover import RetryPolicy
from repro.errors import ProtocolError, TransportError
from repro.service.index import SearchHit
from repro.similarity.functions import SimilarityFunction

from .protocol import (
    DEFAULT_MAX_FRAME,
    ERROR,
    IDEMPOTENT_KINDS,
    RESULT,
    Frame,
    FrameDecoder,
    append_frame,
    drain_frame,
    encode_frame,
    hello_frame,
    hits_from_wire,
    raise_wire_error,
    search_batch_frame,
    search_frame,
    status_frame,
)

#: Default reconnect/retry pacing: a couple of quick, jittered attempts.
_DEFAULT_RETRY = RetryPolicy(max_retries=2, base_delay=0.02, max_delay=0.2)


def _check_response(frame: Frame, request_id: int) -> Dict[str, Any]:
    """Validate a response frame's correlation and type; unwrap or raise."""
    if frame.request_id != request_id:
        raise ProtocolError(
            f"response id {frame.request_id} does not match "
            f"request id {request_id}"
        )
    if frame.kind == ERROR:
        raise_wire_error(frame.payload)
    if frame.kind != RESULT:
        raise ProtocolError(f"unexpected response kind {frame.kind!r}")
    return frame.payload


class _SyncConnection:
    """One handshaken blocking socket plus its decode buffer."""

    def __init__(self, host: str, port: int, tenant: str, timeout: float,
                 max_frame: int) -> None:
        self.decoder = FrameDecoder(max_frame)
        self.max_frame = max_frame
        try:
            self.sock = socket.create_connection((host, port),
                                                 timeout=timeout)
        except OSError as exc:
            raise TransportError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from None
        try:
            payload = self.call(hello_frame(0, tenant))
        except Exception:
            self.close()
            raise
        if not payload.get("ok"):
            self.close()
            raise TransportError("handshake rejected by server")

    def call(self, frame: Frame) -> Dict[str, Any]:
        try:
            self.sock.sendall(encode_frame(frame, self.max_frame))
            while True:
                data = self.sock.recv(65536)
                if not data:
                    raise TransportError(
                        "connection closed by server mid-response"
                    )
                frames = self.decoder.feed(data)
                if frames:
                    return _check_response(frames[0], frame.request_id)
        except socket.timeout:
            raise TransportError(
                "timed out waiting for a response"
            ) from None
        except OSError as exc:
            raise TransportError(f"connection failed: {exc}") from None

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class GatewayClient:
    """Synchronous pooled client; also a context manager."""

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str = "default",
        pool_size: int = 2,
        timeout: float = 5.0,
        retry: Optional[RetryPolicy] = None,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self.retry = retry if retry is not None else _DEFAULT_RETRY
        self.max_frame = max_frame
        self._idle: List[_SyncConnection] = []
        self._lock = threading.Lock()
        self._slots = threading.BoundedSemaphore(max(1, pool_size))
        self._next_id = 1
        self._closed = False

    # -- the request path ----------------------------------------------
    def search(
        self,
        tokens: Iterable[str],
        theta: float,
        k: Optional[int] = None,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        exclude: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> List[SearchHit]:
        """One exact probe over the wire; same result contract as
        :meth:`SimilarityGateway.search` on the server."""
        frame = search_frame(
            self._request_id(), tokens, theta,
            func=SimilarityFunction(func).value,
            k=k, exclude=exclude, deadline=deadline,
        )
        return hits_from_wire(self._call(frame)["hits"])

    def search_batch(
        self,
        queries: Sequence[Iterable[str]],
        theta: float,
        k: Optional[int] = None,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        deadline: Optional[float] = None,
    ) -> List[List[SearchHit]]:
        """Batched probes in **one frame** each way, results aligned with
        ``queries``."""
        frame = search_batch_frame(
            self._request_id(), queries, theta,
            func=SimilarityFunction(func).value, k=k, deadline=deadline,
        )
        return [hits_from_wire(rows)
                for rows in self._call(frame)["results"]]

    def append(self, records) -> int:
        """Route a write batch to the server's ingest tier (not retried:
        a torn connection leaves the append's fate unknown)."""
        frame = append_frame(self._request_id(), records)
        return int(self._call(frame)["added"])

    def status(self) -> Dict[str, Any]:
        return self._call(status_frame(self._request_id()))["status"]

    def drain(self) -> Dict[str, Any]:
        """Ask the server to drain gracefully (acknowledged, not retried)."""
        return self._call(drain_frame(self._request_id()))

    # -- plumbing ------------------------------------------------------
    def _request_id(self) -> int:
        with self._lock:
            request_id = self._next_id
            self._next_id += 1
            return request_id

    def _call(self, frame: Frame) -> Dict[str, Any]:
        if self._closed:
            raise TransportError("client is closed")
        retries = (
            self.retry.max_retries if frame.kind in IDEMPOTENT_KINDS else 0
        )
        with self._slots:
            for attempt in range(retries + 1):
                if attempt:
                    time.sleep(self.retry.backoff(
                        ("net", frame.kind, frame.request_id), attempt - 1
                    ))
                connection = None
                try:
                    connection = self._checkout()
                    payload = connection.call(frame)
                except TransportError:
                    # Connection-level failure (including a failed
                    # connect): drop the socket and — for idempotent
                    # frames — reconnect and re-send.
                    if connection is not None:
                        connection.close()
                    if attempt >= retries:
                        raise
                    continue
                except Exception:
                    if connection is not None:
                        connection.close()
                    raise
                self._checkin(connection)
                return payload
        raise TransportError("retry budget exhausted")  # pragma: no cover

    def _checkout(self) -> _SyncConnection:
        with self._lock:
            if self._idle:
                return self._idle.pop()
        return _SyncConnection(self.host, self.port, self.tenant,
                               self.timeout, self.max_frame)

    def _checkin(self, connection: _SyncConnection) -> None:
        with self._lock:
            if not self._closed:
                self._idle.append(connection)
                return
        connection.close()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for connection in idle:
            connection.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _AsyncConnection:
    """One handshaken asyncio stream pair plus its decode buffer."""

    def __init__(self, reader, writer, max_frame: int) -> None:
        self.reader = reader
        self.writer = writer
        self.decoder = FrameDecoder(max_frame)
        self.max_frame = max_frame

    async def call(self, frame: Frame, timeout: float) -> Dict[str, Any]:
        try:
            self.writer.write(encode_frame(frame, self.max_frame))
            await self.writer.drain()
            while True:
                data = await asyncio.wait_for(
                    self.reader.read(65536), timeout
                )
                if not data:
                    raise TransportError(
                        "connection closed by server mid-response"
                    )
                frames = self.decoder.feed(data)
                if frames:
                    return _check_response(frames[0], frame.request_id)
        except asyncio.TimeoutError:
            raise TransportError(
                "timed out waiting for a response"
            ) from None
        except (ConnectionError, OSError) as exc:
            raise TransportError(f"connection failed: {exc}") from None

    def close(self) -> None:
        try:
            self.writer.close()
        except (ConnectionError, OSError):
            pass


class AsyncGatewayClient:
    """Asyncio twin of :class:`GatewayClient`; pool of stream pairs."""

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str = "default",
        pool_size: int = 2,
        timeout: float = 5.0,
        retry: Optional[RetryPolicy] = None,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self.retry = retry if retry is not None else _DEFAULT_RETRY
        self.max_frame = max_frame
        self.pool_size = max(1, pool_size)
        self._pool: asyncio.LifoQueue = asyncio.LifoQueue()
        self._created = 0
        self._next_id = 1
        self._closed = False

    async def search(
        self,
        tokens: Iterable[str],
        theta: float,
        k: Optional[int] = None,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        exclude: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> List[SearchHit]:
        frame = search_frame(
            self._request_id(), tokens, theta,
            func=SimilarityFunction(func).value,
            k=k, exclude=exclude, deadline=deadline,
        )
        return hits_from_wire((await self._call(frame))["hits"])

    async def search_batch(
        self,
        queries: Sequence[Iterable[str]],
        theta: float,
        k: Optional[int] = None,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        deadline: Optional[float] = None,
    ) -> List[List[SearchHit]]:
        frame = search_batch_frame(
            self._request_id(), queries, theta,
            func=SimilarityFunction(func).value, k=k, deadline=deadline,
        )
        return [hits_from_wire(rows)
                for rows in (await self._call(frame))["results"]]

    async def append(self, records) -> int:
        return int((await self._call(
            append_frame(self._request_id(), records)
        ))["added"])

    async def status(self) -> Dict[str, Any]:
        return (await self._call(status_frame(self._request_id())))["status"]

    async def drain(self) -> Dict[str, Any]:
        return await self._call(drain_frame(self._request_id()))

    # -- plumbing ------------------------------------------------------
    def _request_id(self) -> int:
        request_id = self._next_id
        self._next_id += 1
        return request_id

    async def _connect(self) -> _AsyncConnection:
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), self.timeout
            )
        except asyncio.TimeoutError:
            raise TransportError(
                f"timed out connecting to {self.host}:{self.port}"
            ) from None
        except OSError as exc:
            raise TransportError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from None
        connection = _AsyncConnection(reader, writer, self.max_frame)
        payload = await connection.call(hello_frame(0, self.tenant),
                                        self.timeout)
        if not payload.get("ok"):
            connection.close()
            raise TransportError("handshake rejected by server")
        return connection

    async def _checkout(self) -> _AsyncConnection:
        if not self._pool.empty():
            return self._pool.get_nowait()
        if self._created < self.pool_size:
            self._created += 1
            try:
                return await self._connect()
            except Exception:
                self._created -= 1
                raise
        return await self._pool.get()

    def _checkin(self, connection: _AsyncConnection) -> None:
        if self._closed:
            connection.close()
            return
        self._pool.put_nowait(connection)

    async def _call(self, frame: Frame) -> Dict[str, Any]:
        if self._closed:
            raise TransportError("client is closed")
        retries = (
            self.retry.max_retries if frame.kind in IDEMPOTENT_KINDS else 0
        )
        for attempt in range(retries + 1):
            if attempt:
                await asyncio.sleep(self.retry.backoff(
                    ("net", frame.kind, frame.request_id), attempt - 1
                ))
            connection = None
            try:
                connection = await self._checkout()
                payload = await connection.call(frame, self.timeout)
            except TransportError:
                if connection is not None:
                    connection.close()
                    self._created -= 1
                if attempt >= retries:
                    raise
                continue
            except Exception:
                if connection is not None:
                    connection.close()
                    self._created -= 1
                raise
            self._checkin(connection)
            return payload
        raise TransportError("retry budget exhausted")  # pragma: no cover

    async def close(self) -> None:
        self._closed = True
        while not self._pool.empty():
            self._pool.get_nowait().close()

    async def __aenter__(self) -> "AsyncGatewayClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
