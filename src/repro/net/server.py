"""The asyncio TCP front door: one long-lived gateway behind real sockets.

:class:`GatewayServer` is what turns the repo from a library into a
service.  It owns one :class:`~repro.gateway.gateway.SimilarityGateway`
over a loaded cluster and keeps a persistent event loop, so requests
from *different connections* land in the same scheduling waves and get
the gateway's coalescing, micro-batching and per-tenant quotas for free
— exactly the machinery ``SimilarityGateway.serve()`` exercises
in-process, now fed from the wire.

Per connection:

* the first frame must be the ``hello`` handshake; its tenant name is
  attached to every later request on the connection (quotas and
  per-tenant latency follow from it);
* a reader task decodes frames (reassembling torn ones) and dispatches
  request tasks, holding a bounded per-connection inflight semaphore —
  when a client has ``max_inflight`` requests outstanding the reader
  stops reading, so backpressure propagates to the peer as TCP flow
  control instead of unbounded buffering;
* wire ``deadline`` fields are handed to the gateway unchanged, so a
  deadline overrun raises the same typed
  :class:`~repro.errors.DeadlineExceededError` a local caller sees;
* a connection that leaves a frame half-sent for ``frame_timeout``
  seconds is a stalled peer and is dropped (counted, so the chaos drill
  can assert it);
* request latency records into a per-connection
  :class:`~repro.observability.histogram.LatencyHistogram` and every
  served frame emits a ``phase="net"`` span.

**Drain protocol** (SIGTERM, a ``drain`` frame, or :meth:`drain`): the
listener closes so no new connection is accepted (late arrivals get a
typed :class:`~repro.errors.DrainingError` and are disconnected), but
established connections keep being served — every request already on
the wire gets exactly one response, finished and flushed — until the
peers close or ``drain_grace`` expires, at which point in-flight work
is completed, responses are flushed, and the sockets are closed.  Zero
losses, zero duplicates.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.data.records import Record
from repro.errors import ConfigError, DrainingError, ProtocolError, ReproError
from repro.mapreduce.counters import Counters
from repro.observability.histogram import LatencyHistogram
from repro.observability.tracer import Tracer
from repro.similarity.functions import SimilarityFunction

from .protocol import (
    APPEND,
    DEFAULT_MAX_FRAME,
    DRAIN,
    HELLO,
    SEARCH,
    SEARCH_BATCH,
    STATUS,
    Frame,
    FrameDecoder,
    encode_frame,
    error_frame,
    hits_to_wire,
    result_frame,
)

NET_GROUP = "net"

#: Closed-connection histograms retained for ``stats()`` (oldest dropped).
_RETAINED_HISTOGRAMS = 64


@dataclass(frozen=True)
class ServerConfig:
    """Shape of one server: bind address, frame and inflight budgets."""

    host: str = "127.0.0.1"
    port: int = 0
    """``0`` binds an ephemeral port; :meth:`GatewayServer.start` returns
    the actual address either way."""
    max_frame: int = DEFAULT_MAX_FRAME
    max_inflight: int = 32
    """Per-connection outstanding-request bound — the reader stops
    reading past it, so overload turns into TCP backpressure."""
    frame_timeout: Optional[float] = 30.0
    """Seconds a partial frame may sit unfinished before the connection
    is declared stalled and dropped (``None`` disables)."""
    drain_grace: float = 5.0
    """Seconds :meth:`GatewayServer.drain` waits for peers to close
    before force-closing their connections (in-flight work still
    finishes and flushes first)."""

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ConfigError(f"port must be in [0, 65535], got {self.port}")
        if self.max_frame < 1:
            raise ConfigError("max_frame must be >= 1")
        if self.max_inflight < 1:
            raise ConfigError("max_inflight must be >= 1")
        if self.frame_timeout is not None and self.frame_timeout <= 0:
            raise ConfigError("frame_timeout must be positive (or None)")
        if self.drain_grace < 0:
            raise ConfigError("drain_grace must be >= 0")


class _Connection:
    """Server-side state of one accepted socket."""

    def __init__(self, name: str, reader, writer, config: ServerConfig) -> None:
        self.name = name
        self.reader = reader
        self.writer = writer
        self.decoder = FrameDecoder(config.max_frame)
        self.tenant: Optional[str] = None
        self.inflight = asyncio.Semaphore(config.max_inflight)
        self.write_lock = asyncio.Lock()
        self.tasks: Set[asyncio.Task] = set()
        self.histogram = LatencyHistogram()
        self.frames = 0


class GatewayServer:
    """An asyncio TCP server over one long-lived ``SimilarityGateway``."""

    def __init__(
        self,
        gateway,
        config: Optional[ServerConfig] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.gateway = gateway
        self.config = config if config is not None else ServerConfig()
        self.tracer = tracer if tracer is not None else gateway.tracer
        self.metrics = Counters()
        self._server: Optional[asyncio.AbstractServer] = None
        self._address: Optional[Tuple[str, int]] = None
        self._connections: Set[_Connection] = set()
        self._handler_tasks: Set[asyncio.Task] = set()
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._conn_seq = 0
        self._draining = False
        self._drained: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the actual ``(host, port)``."""
        self._drained = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        return self._address

    @property
    def address(self) -> Tuple[str, int]:
        if self._address is None:
            raise ConfigError("server not started; call start() first")
        return self._address

    @property
    def draining(self) -> bool:
        return self._draining

    def request_drain(self) -> None:
        """Signal-handler-safe drain trigger: schedules :meth:`drain` on
        the running loop (idempotent)."""
        if not self._draining:
            asyncio.get_running_loop().create_task(self.drain())

    async def drain(self) -> None:
        """Stop accepting, serve out what is established, flush, close."""
        if self._draining:
            await self.wait_drained()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Established peers get everything they ask for until they hang
        # up — or until the grace runs out, after which in-flight work is
        # finished, flushed, and the sockets are closed from this side.
        assert self._idle is not None
        try:
            await asyncio.wait_for(self._idle.wait(), self.config.drain_grace)
        except asyncio.TimeoutError:
            for connection in list(self._connections):
                await self._flush_and_close(connection)
        # Let every connection handler run to completion so nothing is
        # left mid-write when the caller tears the loop down.
        current = asyncio.current_task()
        pending = [
            task for task in self._handler_tasks
            if task is not current and not task.done()
        ]
        if pending:
            await asyncio.wait(pending, timeout=self.config.drain_grace or 1.0)
        assert self._drained is not None
        self._drained.set()

    async def wait_drained(self) -> None:
        """Block until a drain (signal, frame, or direct call) completes."""
        assert self._drained is not None
        await self._drained.wait()

    async def _flush_and_close(self, connection: _Connection) -> None:
        if connection.tasks:
            await asyncio.gather(*connection.tasks, return_exceptions=True)
        try:
            await connection.writer.drain()
            connection.writer.close()
        except (ConnectionError, OSError):
            pass

    # -- the connection loop -------------------------------------------
    async def _handle(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
        name = f"conn-{self._conn_seq}"
        self._conn_seq += 1
        connection = _Connection(name, reader, writer, self.config)
        if self._draining:
            # A connection that slipped in around the listener close.
            self.metrics.increment(NET_GROUP, "refused")
            await self._send(
                connection,
                error_frame(0, DrainingError("server is draining")),
            )
            writer.close()
            return
        self.metrics.increment(NET_GROUP, "connections")
        self._connections.add(connection)
        assert self._idle is not None
        self._idle.clear()
        started = time.perf_counter()
        status = "closed"
        try:
            status = await self._read_loop(connection)
        except (ConnectionError, OSError):
            status = "reset"
        finally:
            if connection.tasks:
                await asyncio.gather(*connection.tasks,
                                     return_exceptions=True)
            try:
                await connection.writer.drain()
                connection.writer.close()
            except (ConnectionError, OSError):
                pass
            self._connections.discard(connection)
            if not self._connections:
                self._idle.set()
            self._retain_histogram(connection)
            if self.tracer.enabled:
                self.tracer.add(
                    f"net-connection:{name}", "net",
                    start=started,
                    duration=time.perf_counter() - started,
                    kind="connection", connection=name,
                    tenant=connection.tenant or "", frames=connection.frames,
                    status=status,
                )

    async def _read_loop(self, connection: _Connection) -> str:
        config = self.config
        while True:
            timeout = (
                config.frame_timeout if connection.decoder.pending else None
            )
            try:
                data = await asyncio.wait_for(
                    connection.reader.read(65536), timeout
                )
            except asyncio.TimeoutError:
                # A peer that started a frame and went quiet: stalled.
                self.metrics.increment(NET_GROUP, "stalled_connections")
                return "stalled"
            if not data:
                return "closed"
            try:
                frames = connection.decoder.feed(data)
            except ProtocolError as exc:
                # Framing is lost; answer typed and hang up.
                self.metrics.increment(NET_GROUP, "protocol_errors")
                await self._send(connection, error_frame(0, exc))
                return "protocol-error"
            for frame in frames:
                connection.frames += 1
                if not await self._accept_frame(connection, frame):
                    return "protocol-error"

    async def _accept_frame(self, connection: _Connection,
                            frame: Frame) -> bool:
        """Route one decoded frame; ``False`` drops the connection."""
        if connection.tenant is None:
            if frame.kind != HELLO:
                self.metrics.increment(NET_GROUP, "protocol_errors")
                await self._send(connection, error_frame(
                    frame.request_id,
                    ProtocolError("expected a hello handshake frame first"),
                ))
                return False
            connection.tenant = str(frame.payload.get("tenant", "default"))
            await self._send(connection, result_frame(
                frame.request_id,
                {"ok": True, "tenant": connection.tenant},
            ))
            return True
        if frame.kind == DRAIN:
            await self._send(connection, result_frame(
                frame.request_id, {"ok": True, "draining": True}
            ))
            self.request_drain()
            return True
        if frame.kind == STATUS:
            await self._send(connection, result_frame(
                frame.request_id, {"status": self.status()}
            ))
            return True
        if frame.kind in (SEARCH, SEARCH_BATCH, APPEND):
            self.metrics.increment(NET_GROUP, "requests")
            # Backpressure: the reader blocks here once the connection
            # has max_inflight requests outstanding.
            await connection.inflight.acquire()
            task = asyncio.get_running_loop().create_task(
                self._serve_frame(connection, frame)
            )
            connection.tasks.add(task)

            def _done(finished: asyncio.Task,
                      connection: _Connection = connection) -> None:
                connection.tasks.discard(finished)
                connection.inflight.release()

            task.add_done_callback(_done)
            return True
        # A syntactically valid frame the server has no business getting
        # (a stray result/error from a confused peer): answer typed and
        # keep the connection — framing is still intact.
        self.metrics.increment(NET_GROUP, "protocol_errors")
        await self._send(connection, error_frame(
            frame.request_id,
            ProtocolError(f"unexpected frame kind {frame.kind!r}"),
        ))
        return True

    async def _serve_frame(self, connection: _Connection,
                           frame: Frame) -> None:
        started = time.perf_counter()
        status = "ok"
        try:
            payload = await self._dispatch(connection, frame)
            response = result_frame(frame.request_id, payload)
        except ReproError as exc:
            status = type(exc).__name__
            self.metrics.increment(NET_GROUP, "request_errors")
            response = error_frame(frame.request_id, exc)
        delivered = await self._send(connection, response)
        elapsed = time.perf_counter() - started
        connection.histogram.record(elapsed)
        self.metrics.increment(
            NET_GROUP, "responses" if delivered else "dropped_responses"
        )
        if self.tracer.enabled:
            self.tracer.add(
                f"net-request:{frame.kind}", "net",
                start=started, duration=elapsed,
                kind=frame.kind, connection=connection.name,
                tenant=connection.tenant or "", status=status,
            )

    async def _dispatch(self, connection: _Connection, frame: Frame) -> Dict:
        payload = frame.payload
        if frame.kind == SEARCH:
            hits = await self.gateway.search(
                payload["tokens"], payload["theta"],
                k=payload.get("k"),
                func=SimilarityFunction(payload.get("func", "jaccard")),
                tenant=connection.tenant,
                exclude=payload.get("exclude"),
                deadline=payload.get("deadline"),
            )
            return {"hits": hits_to_wire(hits)}
        if frame.kind == SEARCH_BATCH:
            # One wire frame, many gateway requests submitted together:
            # they coalesce and micro-batch against each other (and
            # against other connections) like any scheduling wave.  The
            # fan-out is capped at the tenant's own outstanding quota so
            # a large batch queues behind itself instead of shedding
            # itself — the quota still bites across frames.
            quota = self.gateway.config.tenant(connection.tenant)
            gate = asyncio.Semaphore(max(1, quota.max_outstanding))
            func = SimilarityFunction(payload.get("func", "jaccard"))

            async def one(tokens):
                async with gate:
                    return await self.gateway.search(
                        tokens, payload["theta"],
                        k=payload.get("k"), func=func,
                        tenant=connection.tenant,
                        deadline=payload.get("deadline"),
                    )

            results = await asyncio.gather(
                *(one(tokens) for tokens in payload["queries"])
            )
            return {"results": [hits_to_wire(hits) for hits in results]}
        # APPEND: routed straight to the cluster's ingest tier.
        records = [
            Record.make(int(rid), tokens)
            for rid, tokens in payload["records"]
        ]
        added = self.gateway.router.apply_batch(records)
        self.metrics.increment(NET_GROUP, "appended_records", added)
        return {"added": added}

    async def _send(self, connection: _Connection, frame: Frame) -> bool:
        """Write one frame (serialized with the write lock so concurrent
        request tasks never interleave bytes); ``False`` if the peer is
        gone — the request was still served, only the response is lost,
        which is the peer's choice."""
        data = encode_frame(frame, self.config.max_frame)
        async with connection.write_lock:
            try:
                connection.writer.write(data)
                await connection.writer.drain()
                return True
            except (ConnectionError, OSError):
                return False

    # -- introspection -------------------------------------------------
    def _retain_histogram(self, connection: _Connection) -> None:
        self._histograms[connection.name] = connection.histogram
        while len(self._histograms) > _RETAINED_HISTOGRAMS:
            self._histograms.pop(next(iter(self._histograms)))

    def connection_latency_info(self) -> Dict[str, Dict]:
        """Per-connection request-latency snapshots (live + recent)."""
        info = dict(self._histograms)
        for connection in self._connections:
            info[connection.name] = connection.histogram
        return {
            name: histogram.snapshot()
            for name, histogram in sorted(info.items())
        }

    def status(self) -> Dict:
        """One JSON-safe snapshot: net counters, per-connection latency,
        the gateway's own stats, and — so a remote ``status`` frame shows
        cluster health without shell access to the server — the router's
        per-replica health/breaker/fencing summary (control-plane state
        included when one is attached)."""
        status = {
            "net": self.metrics.group(NET_GROUP),
            "draining": self._draining,
            "connections": self.connection_latency_info(),
            "gateway": self.gateway.stats(),
        }
        router = getattr(self.gateway, "router", None)
        if router is not None and hasattr(router, "health_summary"):
            status["self_heal"] = router.health_summary()
        return status
