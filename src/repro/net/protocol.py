"""The length-prefixed JSON wire protocol the net subsystem speaks.

One frame is one request or one response::

    +-------+---------+-------+-----------------+----------------------+
    | magic | version | flags | body length     | body (UTF-8 JSON)    |
    | 2 B   | 1 B     | 1 B   | 4 B big-endian  | ``length`` bytes     |
    +-------+---------+-------+-----------------+----------------------+

The body is a JSON object ``{"kind": str, "id": int, "payload": object}``.
Request kinds are ``hello`` (the handshake that names the tenant),
``search``, ``search_batch``, ``ingest-append``, ``status`` and
``drain``; responses are ``result`` or ``error``.  The header is
versioned: a peer speaking a different :data:`VERSION` is rejected with
a typed :class:`~repro.errors.ProtocolError` instead of being
mis-parsed, and so is any frame whose body exceeds the receiver's
``max_frame`` budget or fails to parse — malformed bytes can desync the
length-prefixed stream, so both sides drop the connection after a
protocol error.

:class:`FrameDecoder` is the incremental half: feed it whatever byte
chunks the socket produces (a frame torn across many reads, or many
frames coalesced into one read) and it yields complete frames in order.

Scores ride the wire as JSON numbers serialized with ``repr(float)``,
which round-trips IEEE doubles exactly — the bit-identical contract
between over-the-wire and in-process results costs nothing here.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro import errors
from repro.errors import ProtocolError, ReproError, TransportError
from repro.service.index import SearchHit

MAGIC = b"RN"
VERSION = 1
_HEADER = struct.Struct(">2sBBI")
HEADER_SIZE = _HEADER.size

#: Largest body (bytes) either side accepts by default.
DEFAULT_MAX_FRAME = 4 * 1024 * 1024

# Request kinds.
HELLO = "hello"
SEARCH = "search"
SEARCH_BATCH = "search_batch"
APPEND = "ingest-append"
STATUS = "status"
DRAIN = "drain"
# Response kinds.
RESULT = "result"
ERROR = "error"

FRAME_KINDS = frozenset(
    (HELLO, SEARCH, SEARCH_BATCH, APPEND, STATUS, DRAIN, RESULT, ERROR)
)
#: Request kinds safe to retry on a fresh connection: re-sending cannot
#: change state, so the client's reconnect/retry path is limited to them.
IDEMPOTENT_KINDS = frozenset((HELLO, SEARCH, SEARCH_BATCH, STATUS))


@dataclass(frozen=True)
class Frame:
    """One wire message: a kind, a correlation id, and a JSON payload."""

    kind: str
    request_id: int
    payload: Dict[str, Any] = field(default_factory=dict)


def encode_frame(frame: Frame, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Serialize ``frame`` to header + JSON body bytes."""
    if frame.kind not in FRAME_KINDS:
        raise ProtocolError(f"unknown frame kind {frame.kind!r}")
    body = json.dumps(
        {"kind": frame.kind, "id": frame.request_id, "payload": frame.payload},
        separators=(",", ":"),
    ).encode("utf-8")
    if len(body) > max_frame:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{max_frame}-byte frame budget"
        )
    return _HEADER.pack(MAGIC, VERSION, 0, len(body)) + body


class FrameDecoder:
    """Reassemble frames from an arbitrary chunking of the byte stream.

    ``feed`` buffers whatever arrives and returns every frame completed
    so far; a frame torn across reads completes on a later ``feed``.
    Garbage headers, version mismatches, oversized or unparseable bodies
    raise :class:`~repro.errors.ProtocolError` — after which the stream
    offset is unreliable and the connection should be dropped.
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()

    @property
    def pending(self) -> bool:
        """Is a partial frame sitting in the buffer?"""
        return bool(self._buffer)

    def feed(self, data: bytes) -> List[Frame]:
        self._buffer.extend(data)
        frames: List[Frame] = []
        while True:
            if len(self._buffer) < HEADER_SIZE:
                break
            magic, version, _flags, length = _HEADER.unpack_from(self._buffer)
            if magic != MAGIC:
                raise ProtocolError(
                    f"bad frame magic {bytes(magic)!r} (expected {MAGIC!r})"
                )
            if version != VERSION:
                raise ProtocolError(
                    f"unsupported protocol version {version} "
                    f"(this side speaks {VERSION})"
                )
            if length > self.max_frame:
                raise ProtocolError(
                    f"announced frame body of {length} bytes exceeds the "
                    f"{self.max_frame}-byte frame budget"
                )
            if len(self._buffer) < HEADER_SIZE + length:
                break
            body = bytes(self._buffer[HEADER_SIZE:HEADER_SIZE + length])
            del self._buffer[:HEADER_SIZE + length]
            frames.append(self._parse_body(body))
        return frames

    def _parse_body(self, body: bytes) -> Frame:
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(f"frame body is not valid JSON: {exc}") from None
        if not isinstance(document, dict):
            raise ProtocolError("frame body must be a JSON object")
        kind = document.get("kind")
        request_id = document.get("id")
        payload = document.get("payload", {})
        if kind not in FRAME_KINDS:
            raise ProtocolError(f"unknown frame kind {kind!r}")
        if not isinstance(request_id, int) or isinstance(request_id, bool):
            raise ProtocolError("frame id must be an integer")
        if not isinstance(payload, dict):
            raise ProtocolError("frame payload must be a JSON object")
        return Frame(kind, request_id, payload)


# -- frame constructors -------------------------------------------------
def hello_frame(request_id: int, tenant: str) -> Frame:
    """The handshake: first frame on every connection, names the tenant
    every later request on the connection is accounted to."""
    return Frame(HELLO, request_id, {"tenant": tenant, "version": VERSION})


def search_frame(
    request_id: int,
    tokens: Iterable[str],
    theta: float,
    func: str = "jaccard",
    k: Optional[int] = None,
    exclude: Optional[int] = None,
    deadline: Optional[float] = None,
) -> Frame:
    payload: Dict[str, Any] = {
        "tokens": list(tokens), "theta": float(theta), "func": func,
    }
    if k is not None:
        payload["k"] = int(k)
    if exclude is not None:
        payload["exclude"] = int(exclude)
    if deadline is not None:
        payload["deadline"] = float(deadline)
    return Frame(SEARCH, request_id, payload)


def search_batch_frame(
    request_id: int,
    queries: Sequence[Iterable[str]],
    theta: float,
    func: str = "jaccard",
    k: Optional[int] = None,
    deadline: Optional[float] = None,
) -> Frame:
    payload: Dict[str, Any] = {
        "queries": [list(tokens) for tokens in queries],
        "theta": float(theta), "func": func,
    }
    if k is not None:
        payload["k"] = int(k)
    if deadline is not None:
        payload["deadline"] = float(deadline)
    return Frame(SEARCH_BATCH, request_id, payload)


def append_frame(request_id: int, records) -> Frame:
    """``records`` are ``Record``-like objects routed to the ingest tier."""
    return Frame(APPEND, request_id, {
        "records": [[record.rid, list(record.tokens)] for record in records],
    })


def status_frame(request_id: int) -> Frame:
    return Frame(STATUS, request_id)


def drain_frame(request_id: int) -> Frame:
    return Frame(DRAIN, request_id)


def result_frame(request_id: int, payload: Dict[str, Any]) -> Frame:
    return Frame(RESULT, request_id, payload)


def error_frame(request_id: int, exc: BaseException) -> Frame:
    """Carry a typed error across the wire by exception-class name."""
    return Frame(ERROR, request_id,
                 {"error": type(exc).__name__, "message": str(exc)})


# -- payload helpers ----------------------------------------------------
def hits_to_wire(hits: Iterable[SearchHit]) -> List[List[Any]]:
    return [[hit.rid, hit.score] for hit in hits]


def hits_from_wire(rows: Iterable[Sequence[Any]]) -> List[SearchHit]:
    return [SearchHit(int(rid), float(score)) for rid, score in rows]


def _error_registry() -> Dict[str, type]:
    return {
        name: value
        for name, value in vars(errors).items()
        if isinstance(value, type) and issubclass(value, ReproError)
    }


_REGISTRY = _error_registry()


def raise_wire_error(payload: Dict[str, Any]) -> None:
    """Re-raise a server-side error frame as its typed local twin.

    Unknown class names (a newer server, a non-Repro error) degrade to
    :class:`~repro.errors.TransportError` so callers still get a typed
    failure.
    """
    name = str(payload.get("error", "TransportError"))
    message = str(payload.get("message", ""))
    raise _REGISTRY.get(name, TransportError)(message)
