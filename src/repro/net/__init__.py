"""Network transport: the gateway's TCP front door (see architecture §10).

``protocol`` is the length-prefixed JSON wire codec, ``server`` the
asyncio TCP server over one long-lived
:class:`~repro.gateway.gateway.SimilarityGateway`, ``client`` the
pooled sync/async clients.  ``repro serve`` and ``repro query
--connect`` are the CLI ends of the same wire.
"""

from .client import AsyncGatewayClient, GatewayClient
from .protocol import (
    DEFAULT_MAX_FRAME,
    Frame,
    FrameDecoder,
    encode_frame,
)
from .server import GatewayServer, ServerConfig

__all__ = [
    "AsyncGatewayClient",
    "DEFAULT_MAX_FRAME",
    "Frame",
    "FrameDecoder",
    "GatewayClient",
    "GatewayServer",
    "ServerConfig",
    "encode_frame",
]
