"""Incremental self-join maintenance.

Deduplication pipelines rarely re-join from scratch: batches of new
records arrive and only the *delta* — pairs involving a new record — is
wanted.  With the R-S machinery the delta decomposes exactly:

``Δ = join(new, new)  ∪  join(new, old)``

both computed by FS-Join pipelines, so the maintained result set is always
exactly what a full re-join would return (property-tested in
``tests/test_core_incremental.py``).

Each batch runs its own ordering job over the data it touches; global
orderings are an internal detail of a single join, so batches need not
share one.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.config import FSJoinConfig
from repro.core.fsjoin import FSJoin
from repro.core.rsjoin import FSJoinRS
from repro.data.records import RecordCollection
from repro.errors import DataError
from repro.mapreduce.runtime import SimulatedCluster

Pair = Tuple[int, int]


class IncrementalSelfJoin:
    """Maintains a self-join result under batch insertions.

    Example:
        >>> from repro.core import FSJoinConfig
        >>> from repro.data import Record, RecordCollection
        >>> join = IncrementalSelfJoin(FSJoinConfig(theta=0.9))
        >>> _ = join.initialize(RecordCollection.from_token_lists([["a", "b", "c"]]))
        >>> join.add_batch(RecordCollection([Record.make(1, ["a", "b", "c"])]))
        {(0, 1): 1.0}
    """

    def __init__(
        self,
        config: FSJoinConfig,
        cluster: Optional[SimulatedCluster] = None,
    ) -> None:
        self.config = config
        self.cluster = cluster or SimulatedCluster()
        self._records = RecordCollection()
        self._results: Dict[Pair, float] = {}

    # ------------------------------------------------------------------
    @property
    def records(self) -> RecordCollection:
        """The accumulated collection (do not mutate)."""
        return self._records

    @property
    def results(self) -> Dict[Pair, float]:
        """The maintained result set ``(rid_small, rid_large) → score``."""
        return dict(self._results)

    # ------------------------------------------------------------------
    def initialize(self, records: RecordCollection) -> Dict[Pair, float]:
        """Full join of the base collection; returns its result set."""
        if len(self._records):
            raise DataError("already initialized; use add_batch for more data")
        for record in records:
            self._records.add(record)
        result = FSJoin(self.config, self.cluster).run(self._records)
        self._results = dict(result.result_pairs)
        return self.results

    def add_batch(self, batch: RecordCollection) -> Dict[Pair, float]:
        """Insert a batch; returns only the delta pairs it created.

        Record ids clashing with the maintained collection — or repeated
        inside the batch itself — raise :class:`DataError` before any
        join runs, so a rejected batch cannot corrupt the maintained
        result set.
        """
        seen = set()
        for record in batch:
            if record.rid in self._records or record.rid in seen:
                raise DataError(f"record id {record.rid} already present")
            seen.add(record.rid)
        delta: Dict[Pair, float] = {}

        # New × new.
        new_pairs = FSJoin(self.config, self.cluster).run(batch)
        delta.update(new_pairs.result_pairs)

        # New × old (skipped for the very first batch into an empty join).
        if len(self._records):
            cross = FSJoinRS(self.config, self.cluster).run(batch, self._records)
            for (rid_new, rid_old), score in cross.result_pairs.items():
                key = (rid_new, rid_old) if rid_new < rid_old else (rid_old, rid_new)
                delta[key] = score

        for record in batch:
            self._records.add(record)
        self._results.update(delta)
        return delta
