"""Vertical pivot selection (paper Section IV).

A pivot set of size ``N_p`` splits the globally ordered token universe into
``N_p + 1`` partitions.  Pivots are represented as *cut ranks*: partition
``k`` holds token ranks ``r`` with ``cuts[k-1] ≤ r < cuts[k]`` (with
implicit boundaries 0 and vocab size).  Three selection methods are
implemented, matching the paper:

* **Random** — uniformly random cut ranks; no balance guarantee.
* **Even-Interval** — equal number of *distinct tokens* per partition; still
  unbalanced because token frequencies differ wildly.
* **Even-TF** — equal total *term frequency* per partition; this is what
  FS-Join uses, because it equalises the number of token occurrences each
  fragment receives and thereby balances reducer load.
"""

from __future__ import annotations

import bisect
import enum
import itertools
import random
from typing import Sequence, Tuple

from repro.errors import ConfigError


class PivotMethod(str, enum.Enum):
    """Pivot selection strategy."""

    RANDOM = "random"
    EVEN_INTERVAL = "even-interval"
    EVEN_TF = "even-tf"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def select_pivots(
    rank_frequencies: Sequence[int],
    n_partitions: int,
    method: PivotMethod = PivotMethod.EVEN_TF,
    seed: int = 0,
) -> Tuple[int, ...]:
    """Choose ``n_partitions − 1`` cut ranks over the ordered universe.

    Args:
        rank_frequencies: Term frequency per rank, ascending rank order
            (from :class:`~repro.core.ordering.GlobalOrder`).
        n_partitions: Desired number of vertical partitions (fragments).
        method: Selection strategy.
        seed: RNG seed for the Random method.

    Returns:
        Strictly increasing cut ranks in ``(0, vocab)``.  Fewer cuts than
        requested are returned when the vocabulary is too small.
    """
    if n_partitions < 1:
        raise ConfigError("n_partitions must be >= 1")
    vocab = len(rank_frequencies)
    n_cuts = min(n_partitions - 1, max(0, vocab - 1))
    if n_cuts == 0:
        return ()
    method = PivotMethod(method)
    if method is PivotMethod.RANDOM:
        rng = random.Random(seed)
        return tuple(sorted(rng.sample(range(1, vocab), n_cuts)))
    if method is PivotMethod.EVEN_INTERVAL:
        cuts = [round(k * vocab / (n_cuts + 1)) for k in range(1, n_cuts + 1)]
        return _dedupe_cuts(cuts, vocab)
    # Even-TF: cut where cumulative term frequency crosses k/N of the total.
    cumulative = list(itertools.accumulate(rank_frequencies))
    total = cumulative[-1]
    cuts = []
    for k in range(1, n_cuts + 1):
        target = k * total / (n_cuts + 1)
        cuts.append(bisect.bisect_left(cumulative, target) + 1)
    return _dedupe_cuts(cuts, vocab)


def _dedupe_cuts(cuts: Sequence[int], vocab: int) -> Tuple[int, ...]:
    """Clamp cuts into ``(0, vocab)`` and drop duplicates, keeping order."""
    result = []
    previous = 0
    for cut in cuts:
        cut = max(previous + 1, min(cut, vocab - 1))
        if cut <= previous or cut >= vocab:
            continue
        result.append(cut)
        previous = cut
    return tuple(result)


def partition_of_rank(cuts: Sequence[int], rank: int) -> int:
    """Vertical partition id of a token rank under the given cuts."""
    return bisect.bisect_right(cuts, rank)
