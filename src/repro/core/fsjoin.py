"""The FS-Join driver: ordering → filtering → verification.

:class:`FSJoin` wires the three MapReduce jobs together on a simulated
cluster and returns a :class:`~repro.mapreduce.pipeline.PipelineResult`
carrying the similar pairs plus per-job metrics (shuffle volumes, reduce
loads, measured task times) that the benchmarks consume.

``FSJoin`` with ``n_horizontal == 1`` is the paper's **FS-Join-V** (pure
vertical partitioning); with ``n_horizontal > 1`` it is full **FS-Join**.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import FSJoinConfig
from repro.core.filter_job import FilterJob
from repro.core.horizontal import build_horizontal_plan
from repro.core.ordering import compute_global_ordering
from repro.core.partitioning import VerticalPartitioner
from repro.core.pivots import select_pivots
from repro.core.verify_job import VerificationJob
from repro.data.records import RecordCollection
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.pipeline import PipelineResult
from repro.mapreduce.runtime import ClusterSpec, SimulatedCluster


class FSJoin:
    """Self-join a record collection under a similarity threshold.

    Example:
        >>> from repro.core import FSJoin, FSJoinConfig
        >>> from repro.data import make_corpus
        >>> records = make_corpus("wiki", 200, seed=7)
        >>> result = FSJoin(FSJoinConfig(theta=0.8)).run(records)
        >>> isinstance(result.result_pairs, dict)
        True
    """

    def __init__(
        self,
        config: FSJoinConfig,
        cluster: Optional[SimulatedCluster] = None,
        dfs: Optional[InMemoryDFS] = None,
    ) -> None:
        """``dfs``, when given, receives every job's output under
        ``fsjoin/<job-name>`` and feeds the next job from there — the way
        Hadoop pipelines hand data across jobs.  Purely observational (the
        returned results are identical); lets callers audit the
        intermediate HDFS volume that dominates MassJoin's cost story."""
        self.config = config
        if cluster is None:
            spec = (
                ClusterSpec(executor=config.executor)
                if config.executor is not None
                else ClusterSpec()
            )
            cluster = SimulatedCluster(spec)
        self.cluster = cluster
        self.dfs = dfs

    @property
    def algorithm_name(self) -> str:
        return "FS-Join" if self.config.uses_horizontal else "FS-Join-V"

    def run(self, records: RecordCollection) -> PipelineResult:
        """Execute the three-job pipeline and return results + metrics.

        When the cluster carries an enabled tracer, the run is wrapped in a
        ``pipeline:<name>`` span with one child per driver phase
        (``order-build`` / ``filter-job`` / ``verify-job`` /
        ``aggregation``), each job's own spans nested inside; the slice of
        spans this run produced is returned on ``PipelineResult.trace``.
        """
        config = self.config
        cluster = self.cluster
        tracer = cluster.tracer
        mark = tracer.mark()

        with tracer.span(
            f"pipeline:{self.algorithm_name}",
            phase="pipeline",
            theta=config.theta,
            func=config.func.value,
            records=len(records),
        ):
            # Job 1 + driver-side planning, as the paper's SetUp does:
            # vertical pivots from the ordering, horizontal pivots from the
            # length histogram.
            with tracer.span("order-build", phase="driver"):
                order, ordering_result = compute_global_ordering(cluster, records)
                cuts = select_pivots(
                    order.rank_frequencies,
                    config.n_vertical,
                    method=config.pivot_method,
                    seed=config.pivot_seed,
                )
                partitioner = VerticalPartitioner(cuts)
                horizontal = build_horizontal_plan(
                    [record.size for record in records],
                    config.n_horizontal,
                    config.theta,
                    config.func,
                )

            # Job 2: partition + fragment join → partial counts.
            with tracer.span("filter-job", phase="driver"):
                filter_job = FilterJob(config, order, partitioner, horizontal)
                filter_result = cluster.run_job(
                    filter_job, [(record.rid, record) for record in records]
                )
                verify_input = self._through_dfs(
                    "fsjoin/partial-counts", filter_result.output
                )

            # Job 3: aggregate counts → exact results.
            with tracer.span("verify-job", phase="driver"):
                verify_job = VerificationJob(config.theta, config.func)
                verify_result = cluster.run_job(verify_job, verify_input)

            with tracer.span("aggregation", phase="driver") as agg_span:
                self._through_dfs("fsjoin/results", verify_result.output)
                agg_span.attrs["pairs"] = len(verify_result.output)
                result = PipelineResult(
                    algorithm=self.algorithm_name,
                    pairs=verify_result.output,
                    job_results=[ordering_result, filter_result, verify_result],
                )

        if tracer.enabled:
            result.trace = tracer.spans_since(mark)
        return result

    def _through_dfs(self, path: str, pairs):
        """Round-trip one job's output through the DFS when one is attached."""
        if self.dfs is None:
            return pairs
        self.dfs.write(path, pairs, overwrite=True)
        return self.dfs.read(path)
