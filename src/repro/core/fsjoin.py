"""The FS-Join driver: ordering → filtering → verification.

:class:`FSJoin` wires the three MapReduce jobs together on a simulated
cluster and returns a :class:`~repro.mapreduce.pipeline.PipelineResult`
carrying the similar pairs plus per-job metrics (shuffle volumes, reduce
loads, measured task times) that the benchmarks consume.

``FSJoin`` with ``n_horizontal == 1`` is the paper's **FS-Join-V** (pure
vertical partitioning); with ``n_horizontal > 1`` it is full **FS-Join**.

When a DFS is attached, every job's output is additionally materialised as
a digest-validated checkpoint (``fsjoin/ckpt/<job>``), and
``run(records, resume=True)`` restarts a killed pipeline from the last
good job: jobs whose checkpoint still passes its sha256 digest are skipped
and their output reloaded, exactly like re-submitting a Hadoop job chain
over surviving intermediate files.  A corrupted checkpoint fails the
digest check and the job simply re-runs — resume can never feed garbage
downstream.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.core.config import FSJoinConfig
from repro.core.filter_job import FilterJob
from repro.core.horizontal import build_horizontal_plan
from repro.core.ordering import GlobalOrder, compute_global_ordering
from repro.core.partitioning import VerticalPartitioner
from repro.core.pivots import select_pivots
from repro.core.verify_job import VerificationJob
from repro.data.records import RecordCollection
from repro.errors import CheckpointError, ConfigError
from repro.mapreduce.checkpoint import PipelineCheckpoint
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.pipeline import PipelineResult
from repro.mapreduce.runtime import ClusterSpec, SimulatedCluster

#: DFS root the per-job checkpoints live under.
CHECKPOINT_ROOT = "fsjoin/ckpt"


class FSJoin:
    """Self-join a record collection under a similarity threshold.

    Example:
        >>> from repro.core import FSJoin, FSJoinConfig
        >>> from repro.data import make_corpus
        >>> records = make_corpus("wiki", 200, seed=7)
        >>> result = FSJoin(FSJoinConfig(theta=0.8)).run(records)
        >>> isinstance(result.result_pairs, dict)
        True
    """

    def __init__(
        self,
        config: FSJoinConfig,
        cluster: Optional[SimulatedCluster] = None,
        dfs: Optional[InMemoryDFS] = None,
    ) -> None:
        """``dfs``, when given, receives every job's output under
        ``fsjoin/<job-name>`` and feeds the next job from there — the way
        Hadoop pipelines hand data across jobs — plus a digest-validated
        checkpoint per job under ``fsjoin/ckpt/`` that ``run(resume=True)``
        restarts from.  Purely observational on a fault-free run (the
        returned results are identical); lets callers audit the
        intermediate HDFS volume that dominates MassJoin's cost story."""
        self.config = config
        if cluster is None:
            spec = (
                ClusterSpec(executor=config.executor)
                if config.executor is not None
                else ClusterSpec()
            )
            cluster = SimulatedCluster(spec)
        self.cluster = cluster
        self.dfs = dfs

    @property
    def algorithm_name(self) -> str:
        return "FS-Join" if self.config.uses_horizontal else "FS-Join-V"

    def run(
        self, records: RecordCollection, resume: bool = False
    ) -> PipelineResult:
        """Execute the three-job pipeline and return results + metrics.

        With ``resume=True`` (requires an attached DFS), jobs whose
        checkpoint from an earlier — possibly killed — run still passes
        its digest are skipped and their materialised output reused; the
        skipped names are reported on ``PipelineResult.resumed_jobs``.
        Resume assumes the same records and config as the original run:
        checkpoints name jobs, not inputs, so resuming a *different* join
        over a dirty DFS is caller error (call
        ``PipelineCheckpoint(dfs).clear()`` between unrelated runs).

        When the cluster carries an enabled tracer, the run is wrapped in a
        ``pipeline:<name>`` span with one child per driver phase
        (``order-build`` / ``filter-job`` / ``verify-job`` /
        ``aggregation``), each job's own spans nested inside — plus one
        ``phase="recovery"`` span per checkpoint-skipped job on resume;
        the slice of spans this run produced is returned on
        ``PipelineResult.trace``.
        """
        config = self.config
        cluster = self.cluster
        tracer = cluster.tracer
        mark = tracer.mark()
        ckpt = (
            PipelineCheckpoint(self.dfs, CHECKPOINT_ROOT)
            if self.dfs is not None
            else None
        )
        if resume and ckpt is None:
            raise ConfigError(
                "resume=True requires a DFS: checkpoints are materialised "
                "there (pass dfs=InMemoryDFS() to FSJoin)"
            )
        resumed: List[str] = []

        def restore(job: str):
            """A job's digest-valid checkpointed output, or None to re-run."""
            if not (resume and ckpt is not None and ckpt.valid(job)):
                return None
            try:
                pairs = ckpt.load(job)
            except CheckpointError:
                return None
            resumed.append(job)
            if tracer.enabled:
                tracer.add(
                    f"resume:{job}", "recovery",
                    start=time.perf_counter(), duration=0.0,
                    action="resume-skip", job=job,
                )
            return pairs

        with tracer.span(
            f"pipeline:{self.algorithm_name}",
            phase="pipeline",
            theta=config.theta,
            func=config.func.value,
            records=len(records),
        ):
            # Job 1 + driver-side planning, as the paper's SetUp does:
            # vertical pivots from the ordering, horizontal pivots from the
            # length histogram.  The ordering job's output (token
            # frequencies) is the checkpoint; GlobalOrder rebuilds from it
            # deterministically.
            ordering_result = filter_result = verify_result = None
            with tracer.span("order-build", phase="driver"):
                frequencies = restore("ordering")
                if frequencies is None:
                    order, ordering_result = compute_global_ordering(
                        cluster, records
                    )
                    if ckpt is not None:
                        ckpt.store("ordering", ordering_result.output)
                else:
                    order = GlobalOrder(frequencies)
                cuts = select_pivots(
                    order.rank_frequencies,
                    config.n_vertical,
                    method=config.pivot_method,
                    seed=config.pivot_seed,
                )
                partitioner = VerticalPartitioner(cuts)
                horizontal = build_horizontal_plan(
                    [record.size for record in records],
                    config.n_horizontal,
                    config.theta,
                    config.func,
                )

            # Job 2: partition + fragment join → partial counts.
            with tracer.span("filter-job", phase="driver"):
                verify_input = restore("filter")
                if verify_input is None:
                    filter_job = FilterJob(config, order, partitioner, horizontal)
                    filter_result = cluster.run_job(
                        filter_job, [(record.rid, record) for record in records]
                    )
                    if ckpt is not None:
                        ckpt.store("filter", filter_result.output)
                    verify_input = self._through_dfs(
                        "fsjoin/partial-counts", filter_result.output
                    )

            # Job 3: aggregate counts → exact results.
            with tracer.span("verify-job", phase="driver"):
                pairs = restore("verify")
                if pairs is None:
                    verify_job = VerificationJob(config.theta, config.func)
                    verify_result = cluster.run_job(verify_job, verify_input)
                    if ckpt is not None:
                        ckpt.store("verify", verify_result.output)
                    pairs = verify_result.output

            with tracer.span("aggregation", phase="driver") as agg_span:
                self._through_dfs("fsjoin/results", pairs)
                agg_span.attrs["pairs"] = len(pairs)
                result = PipelineResult(
                    algorithm=self.algorithm_name,
                    pairs=pairs,
                    job_results=[
                        job_result
                        for job_result in (
                            ordering_result, filter_result, verify_result
                        )
                        if job_result is not None
                    ],
                    resumed_jobs=resumed,
                )

        if tracer.enabled:
            result.trace = tracer.spans_since(mark)
        return result

    def _through_dfs(self, path: str, pairs):
        """Round-trip one job's output through the DFS when one is attached."""
        if self.dfs is None:
            return pairs
        self.dfs.write(path, pairs, overwrite=True)
        return self.dfs.read(path)
