"""Configuration auto-tuning from the Lemma 5 cost model.

Picks the vertical partition count by evaluating the paper's analytic cost
(Lemma 5) over a candidate grid, with ``P`` (expected segments per record)
predicted from the record-length distribution: a record of ``L`` tokens
spread over ``N`` roughly-equal-mass partitions occupies about
``N · (1 − (1 − 1/N)^L)`` of them.  The candidate fraction is estimated by
sampling (:mod:`repro.similarity.selectivity`).

This is deliberately a *planner*, not an oracle — it encodes the paper's
own cost trade-off (larger N splits the quadratic fragment term but adds
per-record segment overhead) and is validated against measured behaviour
in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.config import FSJoinConfig
from repro.data.records import RecordCollection
from repro.errors import ConfigError
from repro.mapreduce.costmodel import lemma5_cost
from repro.mapreduce.runtime import ClusterSpec
from repro.similarity.functions import SimilarityFunction
from repro.similarity.selectivity import estimate_result_count


@dataclass(frozen=True)
class TuningReport:
    """Outcome of a tuning run: the pick plus the evaluated grid."""

    n_vertical: int
    grid: Tuple[Tuple[int, float], ...]
    """``(candidate N, predicted cost)`` pairs, grid order."""
    estimated_results: float

    def as_rows(self):
        return [
            {"n_vertical": n, "predicted_cost": cost} for n, cost in self.grid
        ]


def expected_segments_per_record(length: int, n_partitions: int) -> float:
    """E[#occupied partitions] for a record of ``length`` tokens."""
    if length <= 0 or n_partitions <= 0:
        return 0.0
    return n_partitions * (1.0 - (1.0 - 1.0 / n_partitions) ** length)


def suggest_n_vertical(
    records: RecordCollection,
    theta: float,
    func: SimilarityFunction = SimilarityFunction.JACCARD,
    cluster: Optional[ClusterSpec] = None,
    candidates: Sequence[int] = (5, 10, 15, 30, 45, 60),
    seed: int = 0,
) -> TuningReport:
    """Pick the Lemma-5-cheapest vertical partition count for this data."""
    if len(records) < 2:
        raise ConfigError("need at least 2 records to tune")
    cluster = cluster or ClusterSpec()
    sizes = [record.size for record in records]
    total_pairs = len(records) * (len(records) - 1) / 2
    estimate = estimate_result_count(records, theta, func, seed=seed)
    # Candidates exceed results; a small multiple is a serviceable proxy.
    candidate_fraction = min(1.0, 10.0 * estimate.estimated_pairs / total_pairs)
    result_fraction = 0.1

    grid = []
    for n in candidates:
        mean_p = sum(
            expected_segments_per_record(size, n) for size in sizes
        ) / len(sizes)
        cost = lemma5_cost(
            sizes,
            n_partitions=n,
            token_probability=mean_p,
            candidate_fraction=candidate_fraction,
            result_fraction=result_fraction,
        )
        grid.append((n, cost))
    best = min(grid, key=lambda item: item[1])
    return TuningReport(
        n_vertical=best[0],
        grid=tuple(grid),
        estimated_results=estimate.estimated_pairs,
    )


def suggest_config(
    records: RecordCollection,
    theta: float,
    func: SimilarityFunction = SimilarityFunction.JACCARD,
    cluster: Optional[ClusterSpec] = None,
    seed: int = 0,
) -> FSJoinConfig:
    """A ready-to-run config with the tuned vertical partition count."""
    report = suggest_n_vertical(records, theta, func, cluster, seed=seed)
    return FSJoinConfig(theta=theta, func=func, n_vertical=report.n_vertical)
