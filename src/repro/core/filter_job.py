"""The filtering MapReduce job (paper Algorithm 1, filtering phase).

Map: encode the record under the global ordering, route it to its
horizontal partition(s), split it into vertical segments and emit
``((h, v), segment)`` — the duplicate-free key scheme that distinguishes
FS-Join from the token-keyed baselines (with pure vertical partitioning
every emitted byte appears exactly once).

Reduce: each key group is one fragment (or one horizontal *section* of a
fragment); run the configured join algorithm with the filter battery and
emit ``((rid_s, rid_t), (common, len_s, len_t))`` partial counts.
"""

from __future__ import annotations

from typing import List

from repro.core.config import FSJoinConfig
from repro.core.horizontal import HorizontalPlan
from repro.core.joins import join_fragment
from repro.core.ordering import GlobalOrder
from repro.core.partitioning import Segment, VerticalPartitioner
from repro.data.records import Record
from repro.mapreduce.job import JobContext, MapReduceJob


class FilterJob(MapReduceJob):
    """Vertical (and optional horizontal) partition + fragment join."""

    name = "fsjoin-filter"

    #: R-S subclasses set this to join only cross-collection pairs.
    cross_side_only = False

    def __init__(
        self,
        config: FSJoinConfig,
        order: GlobalOrder,
        partitioner: VerticalPartitioner,
        horizontal: HorizontalPlan,
    ) -> None:
        self.config = config
        self.order = order
        self.partitioner = partitioner
        self.horizontal = horizontal

    # ------------------------------------------------------------------
    def map(self, key: int, value: Record, emit, context: JobContext) -> None:
        self._map_record(value, 0, emit, context)

    def _map_record(
        self, record: Record, side: int, emit, context: JobContext
    ) -> None:
        ranks = self.order.encode(record)
        if not ranks:
            context.increment("fsjoin.map", "empty_records")
            return
        segments = self.partitioner.split(record.rid, ranks, side=side)
        partitions = self.horizontal.partitions_of(len(ranks))
        for h in partitions:
            for v, segment in segments:
                emit((h, v), segment)
        context.increment("fsjoin.map", "records", 1)
        context.increment("fsjoin.map", "segments", len(segments) * len(partitions))
        if len(partitions) > 1:
            context.increment(
                "fsjoin.map", "horizontal_replicas", len(partitions) - 1
            )

    # ------------------------------------------------------------------
    def partition(self, key, n_partitions: int) -> int:
        # Fragments round-robin over reduce tasks: with #fragments equal to
        # #reduce tasks (the paper's setup) every task gets exactly one
        # fragment, making pivot-selection load differences visible.
        h, v = key
        return (h * self.partitioner.n_partitions + v) % n_partitions

    # ------------------------------------------------------------------
    def reduce(
        self, key, values: List[Segment], emit, context: JobContext
    ) -> None:
        h, _v = key
        cross_only = self.cross_side_only
        if self.horizontal.is_boundary(h):
            pivot = self.horizontal.boundary_pivot(h)

            def pair_allowed(seg_a: Segment, seg_b: Segment) -> bool:
                if cross_only and seg_a.info.side == seg_b.info.side:
                    return False
                len_a, len_b = seg_a.info.str_len, seg_b.info.str_len
                low, high = (len_a, len_b) if len_a <= len_b else (len_b, len_a)
                return low < pivot <= high

        elif cross_only:

            def pair_allowed(seg_a: Segment, seg_b: Segment) -> bool:
                return seg_a.info.side != seg_b.info.side

        else:
            pair_allowed = None

        def emit_pair(rid_s: int, len_s: int, rid_t: int, len_t: int, common: int) -> None:
            emit((rid_s, rid_t), (common, len_s, len_t))

        join_fragment(
            values,
            method=self.config.join_method,
            theta=self.config.theta,
            func=self.config.func,
            filter_config=self.config.filters,
            emit_pair=emit_pair,
            context=context,
            pair_allowed=pair_allowed,
        )
