"""R-S (two-collection) similarity joins — an extension beyond the paper.

The paper evaluates self-joins; most deployments join two collections
``R ⋈ S`` (e.g. dirty records against a clean master list).  FS-Join's
machinery extends directly:

* the global ordering and both pivot kinds are computed over the *union*
  of the collections (one shared vector space);
* every segment is tagged with its collection (``SegmentInfo.side``);
* fragment joins consider only cross-collection pairs, so the output keys
  are always ``(rid_left, rid_right)`` — record ids may repeat across
  collections without ambiguity;
* verification is unchanged (it never looks at the records again).

All the correctness arguments (filter safety, horizontal exactly-once
coverage, safe segment prefixes) are side-agnostic, so they carry over
verbatim.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import FSJoinConfig
from repro.core.filter_job import FilterJob
from repro.core.horizontal import build_horizontal_plan
from repro.core.ordering import TokenFrequencyJob, GlobalOrder
from repro.core.partitioning import VerticalPartitioner
from repro.core.pivots import select_pivots
from repro.core.verify_job import VerificationJob
from repro.data.records import Record, RecordCollection
from repro.mapreduce.job import JobContext
from repro.mapreduce.pipeline import PipelineResult
from repro.mapreduce.runtime import SimulatedCluster

SidedRecord = Tuple[int, Record]  # (side, record)


class RSFilterJob(FilterJob):
    """FilterJob over tagged records; joins cross-collection pairs only."""

    name = "fsjoin-rs-filter"
    cross_side_only = True

    def map(self, key, value: SidedRecord, emit, context: JobContext) -> None:
        side, record = value
        self._map_record(record, side, emit, context)


class FSJoinRS:
    """Join two record collections under a similarity threshold.

    Example:
        >>> from repro.core import FSJoinConfig
        >>> from repro.core.rsjoin import FSJoinRS
        >>> from repro.data import RecordCollection
        >>> left = RecordCollection.from_token_lists([["a", "b", "c"]])
        >>> right = RecordCollection.from_token_lists([["a", "b", "c"]])
        >>> result = FSJoinRS(FSJoinConfig(theta=0.9)).run(left, right)
        >>> result.result_pairs
        {(0, 0): 1.0}
    """

    algorithm_name = "FS-Join-RS"

    def __init__(
        self,
        config: FSJoinConfig,
        cluster: Optional[SimulatedCluster] = None,
    ) -> None:
        self.config = config
        self.cluster = cluster or SimulatedCluster()

    def run(
        self, left: RecordCollection, right: RecordCollection
    ) -> PipelineResult:
        """Return pairs ``(rid_left, rid_right) → score`` with ``sim ≥ θ``."""
        config = self.config
        cluster = self.cluster

        tagged: List[Tuple[Tuple[int, int], SidedRecord]] = [
            ((0, record.rid), (0, record)) for record in left
        ] + [((1, record.rid), (1, record)) for record in right]

        # Job 1: global ordering over the union of both collections.
        ordering_input = [(key, record) for key, (_, record) in tagged]
        ordering_result = cluster.run_job(TokenFrequencyJob(), ordering_input)
        order = GlobalOrder(ordering_result.output)

        cuts = select_pivots(
            order.rank_frequencies,
            config.n_vertical,
            method=config.pivot_method,
            seed=config.pivot_seed,
        )
        partitioner = VerticalPartitioner(cuts)
        horizontal = build_horizontal_plan(
            [record.size for record in left] + [record.size for record in right],
            config.n_horizontal,
            config.theta,
            config.func,
        )

        # Job 2: tagged partition + cross-side fragment join.
        filter_job = RSFilterJob(config, order, partitioner, horizontal)
        filter_result = cluster.run_job(filter_job, tagged)

        # Job 3: unchanged verification.
        verify_job = VerificationJob(config.theta, config.func)
        verify_result = cluster.run_job(verify_job, filter_result.output)

        return PipelineResult(
            algorithm=self.algorithm_name,
            pairs=verify_result.output,
            job_results=[ordering_result, filter_result, verify_result],
        )
