"""Configuration objects for FS-Join."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.pivots import PivotMethod
from repro.errors import ConfigError
from repro.similarity.functions import SimilarityFunction


class JoinMethod(str, enum.Enum):
    """Per-fragment join algorithm (paper Section V-A "Join Algorithms")."""

    LOOP = "loop"
    INDEX = "index"
    PREFIX = "prefix"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class FilterConfig:
    """Which of the paper's four filters the fragment join applies.

    StrL-Filter (Lemma 1) is the baseline filter the paper always keeps on
    in Table IV; the three segment-aware filters (Lemmas 2–4) are FS-Join's
    novel contributions and can be toggled for the ablation.
    """

    strl: bool = True
    segl: bool = True
    segi: bool = True
    segd: bool = True

    @staticmethod
    def none() -> "FilterConfig":
        return FilterConfig(strl=False, segl=False, segi=False, segd=False)

    @staticmethod
    def only(*names: str) -> "FilterConfig":
        """A config with just the named filters on, e.g. ``only("strl", "segd")``."""
        valid = {"strl", "segl", "segi", "segd"}
        unknown = set(names) - valid
        if unknown:
            raise ConfigError(f"unknown filter names: {sorted(unknown)}")
        return FilterConfig(**{name: name in names for name in valid})


@dataclass(frozen=True)
class FSJoinConfig:
    """All knobs of an FS-Join run.

    Attributes:
        theta: Similarity threshold in (0, 1].
        func: Similarity function (Jaccard/Dice/Cosine).
        n_vertical: Number of vertical partitions (fragments); the paper
            uses the number of reduce tasks, its pivot count is
            ``n_vertical − 1``.
        pivot_method: How vertical pivots are chosen (Section IV).
        join_method: Per-fragment join algorithm.
        filters: Which filters to apply inside fragments.
        n_horizontal: Number of *base* horizontal (length) partitions; 1
            disables horizontal partitioning (the paper's FS-Join-V).
        pivot_seed: Seed for the Random pivot method.
    """

    theta: float
    func: SimilarityFunction = SimilarityFunction.JACCARD
    n_vertical: int = 30
    pivot_method: PivotMethod = PivotMethod.EVEN_TF
    join_method: JoinMethod = JoinMethod.PREFIX
    filters: FilterConfig = field(default_factory=FilterConfig)
    n_horizontal: int = 1
    pivot_seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.theta <= 1.0:
            raise ConfigError(f"theta must be in (0, 1], got {self.theta}")
        if self.n_vertical < 1:
            raise ConfigError("n_vertical must be >= 1")
        if self.n_horizontal < 1:
            raise ConfigError("n_horizontal must be >= 1 (1 = no horizontal partitioning)")
        # Coerce loose string arguments into the enums.
        object.__setattr__(self, "func", SimilarityFunction(self.func))
        object.__setattr__(self, "join_method", JoinMethod(self.join_method))
        object.__setattr__(self, "pivot_method", PivotMethod(self.pivot_method))

    @property
    def uses_horizontal(self) -> bool:
        return self.n_horizontal > 1
