"""Configuration objects for FS-Join."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from typing import Optional

from repro.core.pivots import PivotMethod
from repro.errors import ConfigError
from repro.mapreduce.executors import ExecutorKind
from repro.similarity.functions import SimilarityFunction


class JoinMethod(str, enum.Enum):
    """Per-fragment join algorithm (paper Section V-A "Join Algorithms")."""

    LOOP = "loop"
    INDEX = "index"
    PREFIX = "prefix"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class FilterConfig:
    """Which of the paper's four filters the fragment join applies.

    StrL-Filter (Lemma 1) is the baseline filter the paper always keeps on
    in Table IV; the three segment-aware filters (Lemmas 2–4) are FS-Join's
    novel contributions and can be toggled for the ablation.

    ``early_verify`` enables PPJoin-style positional upper-bounding inside
    the fragment join's segment merges: the merge is abandoned as soon as
    the remaining suffixes cannot reach the smallest intersection that
    would survive the post-intersection filters.  Join results are
    provably unchanged (the bound only fires on pairs the filters would
    prune anyway); the flag exists so the saved token comparisons can be
    measured.
    """

    strl: bool = True
    segl: bool = True
    segi: bool = True
    segd: bool = True
    early_verify: bool = True

    @staticmethod
    def none() -> "FilterConfig":
        return FilterConfig(strl=False, segl=False, segi=False, segd=False)

    @staticmethod
    def only(*names: str) -> "FilterConfig":
        """A config with just the named filters on, e.g. ``only("strl", "segd")``."""
        valid = {"strl", "segl", "segi", "segd"}
        unknown = set(names) - valid
        if unknown:
            raise ConfigError(f"unknown filter names: {sorted(unknown)}")
        return FilterConfig(**{name: name in names for name in valid})


@dataclass(frozen=True)
class FSJoinConfig:
    """All knobs of an FS-Join run.

    Attributes:
        theta: Similarity threshold in (0, 1].
        func: Similarity function (Jaccard/Dice/Cosine).
        n_vertical: Number of vertical partitions (fragments); the paper
            uses the number of reduce tasks, its pivot count is
            ``n_vertical − 1``.
        pivot_method: How vertical pivots are chosen (Section IV).
        join_method: Per-fragment join algorithm.
        filters: Which filters to apply inside fragments.
        n_horizontal: Number of *base* horizontal (length) partitions; 1
            disables horizontal partitioning (the paper's FS-Join-V).
        pivot_seed: Seed for the Random pivot method.
        executor: Task-execution backend used when the driver builds its
            own cluster (``serial``/``thread``/``process``); ``None``
            inherits the :class:`~repro.mapreduce.runtime.ClusterSpec`
            default.  Ignored when an explicit cluster is passed in.
    """

    theta: float
    func: SimilarityFunction = SimilarityFunction.JACCARD
    n_vertical: int = 30
    pivot_method: PivotMethod = PivotMethod.EVEN_TF
    join_method: JoinMethod = JoinMethod.PREFIX
    filters: FilterConfig = field(default_factory=FilterConfig)
    n_horizontal: int = 1
    pivot_seed: int = 0
    executor: Optional[ExecutorKind] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.theta <= 1.0:
            raise ConfigError(f"theta must be in (0, 1], got {self.theta}")
        if self.n_vertical < 1:
            raise ConfigError("n_vertical must be >= 1")
        if self.n_horizontal < 1:
            raise ConfigError("n_horizontal must be >= 1 (1 = no horizontal partitioning)")
        # Coerce loose string arguments into the enums.
        object.__setattr__(self, "func", SimilarityFunction(self.func))
        object.__setattr__(self, "join_method", JoinMethod(self.join_method))
        object.__setattr__(self, "pivot_method", PivotMethod(self.pivot_method))
        if self.executor is not None:
            try:
                object.__setattr__(self, "executor", ExecutorKind(self.executor))
            except ValueError:
                valid = ", ".join(k.value for k in ExecutorKind)
                raise ConfigError(
                    f"unknown executor {self.executor!r} (choose from: {valid})"
                ) from None

    @property
    def uses_horizontal(self) -> bool:
        return self.n_horizontal > 1
