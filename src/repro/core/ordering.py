"""The ordering phase: global token ordering by ascending term frequency.

FS-Join (and RIDPairsPPJoin, which it borrows the method from) sorts the
token universe by ascending term frequency so that rare tokens come first —
this is what makes prefixes selective.  One MapReduce job computes the
frequencies; the driver then assigns each token an integer *rank* (0 =
rarest).  All downstream processing works on rank tuples, which are compact
and compare fast.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.records import Record, RecordCollection
from repro.errors import DataError
from repro.mapreduce.job import JobContext, MapReduceJob
from repro.mapreduce.runtime import JobResult, SimulatedCluster


class TokenFrequencyJob(MapReduceJob):
    """Classic word count over record token sets (with a combiner)."""

    name = "fsjoin-ordering"

    def map(self, key, value: Record, emit, context: JobContext) -> None:
        for token in value.tokens:
            emit(token, 1)

    def combine(self, key, values: List[int], context: JobContext):
        return [(key, sum(values))]

    def reduce(self, key, values: List[int], emit, context: JobContext) -> None:
        emit(key, sum(values))


class GlobalOrder:
    """A total order over the token universe: token → rank.

    Rank 0 is the rarest token (ascending term frequency; ties broken
    lexicographically so the order is deterministic).  Also keeps the
    frequency of every rank, which the Even-TF pivot selector needs.
    """

    def __init__(self, frequencies: Sequence[Tuple[str, int]]) -> None:
        ordered = sorted(frequencies, key=lambda item: (item[1], item[0]))
        self._rank: Dict[str, int] = {
            token: rank for rank, (token, _) in enumerate(ordered)
        }
        self._tokens: List[str] = [token for token, _ in ordered]
        self._freqs: List[int] = [freq for _, freq in ordered]

    @property
    def vocab_size(self) -> int:
        return len(self._tokens)

    def rank(self, token: str) -> int:
        """Rank of ``token``; raises :class:`DataError` for unknown tokens."""
        try:
            return self._rank[token]
        except KeyError:
            raise DataError(f"token {token!r} not in the global ordering") from None

    def knows(self, token: str) -> bool:
        """Whether ``token`` is part of the ordering."""
        return token in self._rank

    def extend(self, frequencies: Sequence[Tuple[str, int]]) -> int:
        """Append unseen tokens *after* every existing rank; returns the count.

        The incremental-indexing hook (service ``apply_batch``): existing
        ranks — and everything derived from them (encoded records, pivot
        cuts, posting lists) — stay valid, because new tokens only extend
        the order at the high end.  The appended tokens are ordered among
        themselves by ``(frequency, token)``, mirroring the constructor;
        tokens already present are ignored (their global frequency is not
        updated — the order is a fixed total order, not a live histogram).
        """
        fresh: Dict[str, int] = {}
        for token, freq in frequencies:
            if token not in self._rank and token not in fresh:
                fresh[token] = freq
        for token, freq in sorted(fresh.items(), key=lambda item: (item[1], item[0])):
            self._rank[token] = len(self._tokens)
            self._tokens.append(token)
            self._freqs.append(freq)
        return len(fresh)

    def token(self, rank: int) -> str:
        """Inverse lookup (rank → token)."""
        return self._tokens[rank]

    def frequency_of_rank(self, rank: int) -> int:
        return self._freqs[rank]

    @property
    def rank_frequencies(self) -> Sequence[int]:
        """Frequencies indexed by rank (ascending)."""
        return self._freqs

    def encode(self, record: Record) -> Tuple[int, ...]:
        """Record tokens as a strictly increasing tuple of ranks."""
        rank = self._rank
        try:
            return tuple(sorted(rank[token] for token in record.tokens))
        except KeyError as exc:
            raise DataError(
                f"record {record.rid} contains token {exc.args[0]!r} "
                "outside the global ordering"
            ) from None

    def decode(self, ranks: Sequence[int]) -> Tuple[str, ...]:
        """Ranks back to tokens (mainly for debugging and tests)."""
        return tuple(self._tokens[rank] for rank in ranks)


def compute_global_ordering(
    cluster: SimulatedCluster,
    records: RecordCollection,
    num_reduce_tasks: Optional[int] = None,
) -> Tuple[GlobalOrder, JobResult]:
    """Run the ordering job and build the :class:`GlobalOrder`."""
    result = cluster.run_job(
        TokenFrequencyJob(),
        [(record.rid, record) for record in records],
        num_reduce_tasks=num_reduce_tasks,
    )
    return GlobalOrder(result.output), result
