"""Top-k most similar pairs — an extension beyond the paper.

A threshold join answers "all pairs above θ"; analysts often want "the k
most similar pairs" without guessing θ.  The classic reduction runs the
threshold join at a high θ and relaxes it until at least ``k`` pairs
survive: the result set at threshold θ contains *every* pair scoring ≥ θ,
so once it holds ``k`` pairs, its top ``k`` are the global top ``k``.

FS-Join fits this loop well because lower thresholds only lengthen
prefixes and weaken filters — the pipeline itself is unchanged.

When the corpus is already indexed for serving
(:class:`repro.service.SegmentIndex`), pass the index in: every
relaxation round then probes the standing index (one ``self_join`` per
θ) instead of re-running the three-job pipeline — same exact pairs and
scores, no repeated ordering/shuffle work
(``tests/test_core_topk.py`` asserts bit-identical results).  The
``self_join`` rounds run on the index's columnar batch path (every
record probed through each posting run in one pass, threshold algebra
memoized across the whole batch), so relaxation rounds get the full
columnar speedup for free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.config import FSJoinConfig
from repro.core.fsjoin import FSJoin
from repro.data.records import RecordCollection
from repro.errors import ConfigError
from repro.mapreduce.runtime import SimulatedCluster
from repro.similarity.functions import SimilarityFunction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service uses core)
    from repro.service.index import SegmentIndex

PairScore = Tuple[Tuple[int, int], float]


def topk_similar_pairs(
    records: RecordCollection,
    k: int,
    func: SimilarityFunction = SimilarityFunction.JACCARD,
    cluster: Optional[SimulatedCluster] = None,
    start_theta: float = 0.9,
    min_theta: float = 0.1,
    shrink: float = 0.75,
    config: Optional[FSJoinConfig] = None,
    index: Optional["SegmentIndex"] = None,
) -> List[PairScore]:
    """Return the ``k`` highest-scoring pairs, best first.

    Args:
        records: Collection to self-join.
        k: Number of pairs wanted (fewer are returned only when the whole
            collection has fewer scoring pairs above ``min_theta``).
        func: Similarity function.
        cluster: Simulated cluster (default paper-shaped).
        start_theta: First threshold tried.
        min_theta: Floor below which the search stops.
        shrink: Multiplicative threshold decay per round (in (0, 1)).
        config: Optional template config; its θ/func are overridden per
            round, everything else (partitions, pivots, join method) is
            kept.
        index: An already-built service index over ``records``.  When
            given, relaxation rounds probe the index instead of running
            the FS-Join pipeline; results are identical (the index
            ``self_join`` returns the exact ``FSJoin.run`` pair map) and
            no cluster is needed.  Filters still follow
            ``config.filters``.

    Ties at the k-th score are broken by record-id pair, deterministically.
    """
    if k < 1:
        raise ConfigError("k must be >= 1")
    if not 0.0 < min_theta <= start_theta <= 1.0:
        raise ConfigError("need 0 < min_theta <= start_theta <= 1")
    if not 0.0 < shrink < 1.0:
        raise ConfigError("shrink must be in (0, 1)")
    if index is None:
        cluster = cluster or SimulatedCluster()

    theta = start_theta
    while True:
        if index is not None:
            pairs: Dict[Tuple[int, int], float] = index.self_join(
                theta, func, config.filters if config is not None else None
            )
        else:
            round_config = _with_theta(config, theta, func)
            pairs = FSJoin(round_config, cluster).run(records).result_pairs
        if len(pairs) >= k or theta <= min_theta:
            ranked = sorted(pairs.items(), key=lambda item: (-item[1], item[0]))
            return ranked[:k]
        theta = max(min_theta, theta * shrink)


def _with_theta(
    template: Optional[FSJoinConfig], theta: float, func: SimilarityFunction
) -> FSJoinConfig:
    if template is None:
        return FSJoinConfig(theta=theta, func=func)
    return FSJoinConfig(
        theta=theta,
        func=func,
        n_vertical=template.n_vertical,
        pivot_method=template.pivot_method,
        join_method=template.join_method,
        filters=template.filters,
        n_horizontal=template.n_horizontal,
        pivot_seed=template.pivot_seed,
    )
