"""Vertical partitioning: splitting a record into disjoint segments.

Definition 5/6 of the paper: with the record's tokens sorted under the
global ordering, the pivots split them into disjoint *segments*; the
segments of all records that fall in the same partition form a *fragment*,
which is shuffled to one reducer.

Each segment travels with ``segInfo`` — the record size, the number of
tokens ahead of the segment (``|s^h|``) and behind it (``|s^e|``) — which is
exactly what Lemmas 2–4 need to filter inside a single fragment.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class SegmentInfo:
    """Per-segment metadata (the paper's ``segInfo``)."""

    rid: int
    str_len: int
    """``|s|`` — token count of the whole record."""
    ahead: int
    """``|s^h|`` — tokens in segments before this one."""
    behind: int
    """``|s^e|`` — tokens in segments after this one."""
    side: int = 0
    """Collection tag for R-S joins: 0 = left/R (and self-joins), 1 = right/S."""


@dataclass(frozen=True)
class Segment:
    """One record's slice of one vertical partition."""

    info: SegmentInfo
    tokens: Tuple[int, ...]
    """Strictly increasing token ranks within this partition."""

    @property
    def rid(self) -> int:
        return self.info.rid

    def __len__(self) -> int:
        return len(self.tokens)

    def payload_size(self) -> int:
        """Approximate serialized size (hook for the shuffle-byte sizer).

        Token ranks are small varints (~3 bytes at realistic vocabulary
        sizes) plus the four segInfo integers.
        """
        return 12 + 3 * len(self.tokens)


class VerticalPartitioner:
    """Splits rank-encoded records at fixed cut ranks.

    The cut ranks come from :func:`repro.core.pivots.select_pivots`; the
    partitioner is deterministic and shared by every map task of the filter
    job (the paper loads it in ``SetUp``).
    """

    def __init__(self, cuts: Sequence[int]) -> None:
        self.cuts: Tuple[int, ...] = tuple(cuts)

    @property
    def n_partitions(self) -> int:
        return len(self.cuts) + 1

    def partition_of(self, rank: int) -> int:
        """Partition id of a single token rank."""
        return bisect.bisect_right(self.cuts, rank)

    def split_bounds(self, ranks: Sequence[int]) -> List[Tuple[int, int, int]]:
        """Split a rank-encoded record into ``(partition, start, end)`` bounds.

        The columnar twin of :meth:`split`: instead of materialising
        :class:`Segment` objects it returns the half-open index ranges of
        each non-empty segment within ``ranks``.  ``ahead`` of a segment is
        its ``start`` and ``behind`` is ``len(ranks) - end``, so the full
        ``segInfo`` is recoverable from the bounds plus the record length.
        """
        total = len(ranks)
        result: List[Tuple[int, int, int]] = []
        start = 0
        cuts = self.cuts
        for partition in range(self.n_partitions):
            if partition < len(cuts):
                end = bisect.bisect_left(ranks, cuts[partition], start)
            else:
                end = total
            if end > start:
                result.append((partition, start, end))
            start = end
            if start >= total:
                break
        return result

    def split(
        self, rid: int, ranks: Sequence[int], side: int = 0
    ) -> List[Tuple[int, Segment]]:
        """Split a rank-encoded record into its non-empty segments.

        Returns ``(partition_id, segment)`` pairs, ascending by partition.
        Empty segments are skipped: they contribute nothing to any
        intersection and carry no information the filters need.  ``side``
        tags the collection of origin for R-S joins.
        """
        total = len(ranks)
        return [
            (
                partition,
                Segment(
                    SegmentInfo(
                        rid=rid, str_len=total, ahead=start,
                        behind=total - end, side=side,
                    ),
                    tuple(ranks[start:end]),
                ),
            )
            for partition, start, end in self.split_bounds(ranks)
        ]
