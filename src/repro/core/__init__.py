"""FS-Join: the paper's primary contribution.

The pipeline (Fig. 3 of the paper) is three MapReduce jobs:

1. **Ordering** (:mod:`repro.core.ordering`) — compute the global token
   ordering by ascending term frequency.
2. **Filtering** (:mod:`repro.core.filter_job`) — vertically partition every
   record into disjoint segments at pivot tokens
   (:mod:`repro.core.partitioning`, pivots from :mod:`repro.core.pivots`),
   optionally combined with horizontal (length-based) partitioning
   (:mod:`repro.core.horizontal`); join each fragment on one reducer using a
   loop / index / prefix join (:mod:`repro.core.joins`) guarded by the
   StrL/SegL/SegI/SegD filters (:mod:`repro.core.filters`); emit partial
   common-token counts.
3. **Verification** (:mod:`repro.core.verify_job`) — aggregate partial
   counts per record pair and apply the exact threshold test without ever
   re-reading the original strings.

:class:`repro.core.fsjoin.FSJoin` drives the pipeline.
"""

from repro.core.config import ExecutorKind, FilterConfig, FSJoinConfig, JoinMethod
from repro.core.fsjoin import FSJoin
from repro.core.ordering import GlobalOrder, compute_global_ordering
from repro.core.pivots import PivotMethod, select_pivots
from repro.core.partitioning import Segment, SegmentInfo, VerticalPartitioner
from repro.core.horizontal import HorizontalPlan, build_horizontal_plan
from repro.core.rsjoin import FSJoinRS
from repro.core.topk import topk_similar_pairs
from repro.core.incremental import IncrementalSelfJoin
from repro.core.tuning import suggest_config, suggest_n_vertical

__all__ = [
    "suggest_config",
    "suggest_n_vertical",
    "FSJoin",
    "FSJoinRS",
    "IncrementalSelfJoin",
    "topk_similar_pairs",
    "FSJoinConfig",
    "FilterConfig",
    "JoinMethod",
    "ExecutorKind",
    "GlobalOrder",
    "compute_global_ordering",
    "PivotMethod",
    "select_pivots",
    "Segment",
    "SegmentInfo",
    "VerticalPartitioner",
    "HorizontalPlan",
    "build_horizontal_plan",
]
