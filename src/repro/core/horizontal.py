"""Horizontal (length-based) partitioning (paper Section V-A, Optimization).

With ``t`` length pivots ``L_1 < … < L_t`` the records are divided into
``2t + 1`` horizontal partitions:

* *base* partitions ``h_0 … h_t``: ``h_k`` holds records with
  ``L_k ≤ |s| < L_{k+1}`` (implicit ``L_0 = 0``, ``L_{t+1} = ∞``);
* *boundary* partitions ``h_{t+1} … h_{2t}``: ``h_{t+i}`` holds the records
  whose length is close enough to ``L_i`` that a similar pair can straddle
  the pivot; joins there are restricted to pairs with one record below and
  one at-or-above ``L_i``, which is what makes the scheme duplicate-free in
  its *results*.

Correctness constraint (DESIGN.md §4.3): a similar pair must never straddle
*two* pivots, so consecutive pivots must satisfy
``L_{i+1} > length_upper_bound(L_i − 1)``.  The builder selects equal-depth
pivots from the length histogram and greedily drops pivots violating the
constraint, so a requested partition count may be reduced; the effective
count is visible on the returned plan.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigError
from repro.similarity.functions import SimilarityFunction
from repro.similarity.thresholds import length_lower_bound, length_upper_bound


@dataclass(frozen=True)
class HorizontalPlan:
    """Length pivots plus the routing/gating rules derived from them."""

    pivots: Tuple[int, ...]
    theta: float
    func: SimilarityFunction

    @property
    def n_pivots(self) -> int:
        return len(self.pivots)

    @property
    def n_base(self) -> int:
        return len(self.pivots) + 1

    @property
    def n_partitions(self) -> int:
        """Total horizontal partitions: ``2t + 1``."""
        return 2 * len(self.pivots) + 1

    # ------------------------------------------------------------------
    def base_partition(self, length: int) -> int:
        """Base partition id of a record of ``length`` tokens."""
        return bisect.bisect_right(self.pivots, length)

    def boundary_pivot(self, partition_id: int) -> int:
        """The pivot ``L_i`` guarded by boundary partition ``h_{t+i}``."""
        index = partition_id - self.n_base
        if not 0 <= index < self.n_pivots:
            raise ConfigError(f"{partition_id} is not a boundary partition id")
        return self.pivots[index]

    def is_boundary(self, partition_id: int) -> bool:
        return partition_id >= self.n_base

    def partitions_of(self, length: int) -> List[int]:
        """All horizontal partitions a record of ``length`` tokens joins.

        Always its base partition; additionally every boundary partition
        ``h_{t+i}`` whose pivot a similar partner could straddle.
        """
        result = [self.base_partition(length)]
        if length == 0:
            return result
        for index, pivot in enumerate(self.pivots):
            if length < pivot:
                reachable = length_upper_bound(self.func, self.theta, length) >= pivot
            else:
                reachable = length_lower_bound(self.func, self.theta, length) < pivot
            if reachable:
                result.append(self.n_base + index)
        return result

    def pair_allowed(self, partition_id: int, len_s: int, len_t: int) -> bool:
        """Whether a pair may be joined in ``partition_id``.

        Base partitions join everything they hold; boundary ``h_{t+i}``
        joins only pairs straddling ``L_i`` (one side strictly below, one
        at or above), which prevents double-counting pairs that share a
        base partition.
        """
        if not self.is_boundary(partition_id):
            return True
        pivot = self.boundary_pivot(partition_id)
        low, high = (len_s, len_t) if len_s <= len_t else (len_t, len_s)
        return low < pivot <= high


def build_horizontal_plan(
    lengths: Sequence[int],
    n_base: int,
    theta: float,
    func: SimilarityFunction,
) -> HorizontalPlan:
    """Equal-depth length pivots, pruned to respect the ratio constraint.

    Args:
        lengths: Record lengths (token counts) of the collection.
        n_base: Requested number of base partitions (``t + 1``); 1 disables
            horizontal partitioning entirely.
        theta: Similarity threshold.
        func: Similarity function (determines the admissible length band).
    """
    func = SimilarityFunction(func)
    if n_base < 1:
        raise ConfigError("n_base must be >= 1")
    positive = sorted(length for length in lengths if length > 0)
    if n_base == 1 or len(positive) < 2:
        return HorizontalPlan((), theta, func)
    raw = []
    for k in range(1, n_base):
        raw.append(positive[min(len(positive) - 1, round(k * len(positive) / n_base))])
    pivots: List[int] = []
    for pivot in sorted(set(raw)):
        if pivot <= positive[0]:
            continue  # nothing would fall below it
        if pivots and pivot <= length_upper_bound(func, theta, pivots[-1] - 1):
            continue  # a similar pair could straddle both pivots
        pivots.append(pivot)
    return HorizontalPlan(tuple(pivots), theta, func)
