"""Per-fragment join algorithms (paper Section V-A "Join Algorithms").

A fragment is the list of segments shuffled to one reducer.  The join's
task is to produce, for every pair of segments with common tokens that
survives the filters, the exact number of common tokens in this fragment.

Three implementations, as in the paper:

* **Loop join** — compare every segment pair; intersections by linear merge
  (tokens are sorted ranks).
* **Index join** — index *all* tokens of already-seen segments; probing a
  segment's tokens yields each earlier segment's exact intersection count
  directly, so only intersecting pairs are ever touched.
* **Prefix(-based index) join** — index and probe only segment *prefixes*.
  The safe segment-prefix length is ``min(|seg|, |s| − τ_min(|s|) + 1)``
  where ``τ_min`` is the minimum required overlap against any admissible
  partner (see DESIGN.md §4.1): if ``sim(s,t) ≥ θ`` the two segments are
  guaranteed to collide on a prefix token in every fragment where a similar
  pair must be counted, so the aggregated counts stay exact for every
  reported result.  Candidate pairs found by prefix collision still get
  their exact intersection via a merge of the full segments.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import FilterConfig, JoinMethod
from repro.core.filters import FragmentFilters
from repro.core.partitioning import Segment
from repro.mapreduce.job import JobContext
from repro.similarity.functions import SimilarityFunction
from repro.similarity.thresholds import prefix_length

#: emit_pair(rid_s, len_s, rid_t, len_t, common_in_fragment)
EmitPair = Callable[[int, int, int, int, int], None]

#: Optional pair gate used by horizontal boundary partitions.
PairPredicate = Callable[[Segment, Segment], bool]

_COUNTER_GROUP = "fsjoin.filter"


def merge_intersection(a: Sequence[int], b: Sequence[int]) -> int:
    """Exact ``|a ∩ b|`` of two strictly increasing rank tuples."""
    i = j = count = 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        x, y = a[i], b[j]
        if x == y:
            count += 1
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return count


def bounded_merge_intersection(
    a: Sequence[int], b: Sequence[int], required: int = 1
) -> Tuple[int, int, bool]:
    """Merge-count with positional early termination (PPJoin-style).

    Returns ``(count, comparisons, completed)``.  Before every comparison
    the best achievable intersection — matches so far plus the shorter
    remaining suffix — is checked against ``required``; when it falls
    short the merge is abandoned (``completed=False``, ``count`` is then a
    partial value ``< required``).  With ``required <= 1`` the bound can
    never fire mid-merge, so the result is always exact.  ``comparisons``
    counts the token comparisons actually performed, the quantity the
    ``fsjoin.filter`` counters report.
    """
    i = j = count = comparisons = 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        remaining_a = len_a - i
        remaining_b = len_b - j
        if count + (remaining_a if remaining_a < remaining_b else remaining_b) < required:
            return count, comparisons, False
        comparisons += 1
        x, y = a[i], b[j]
        if x == y:
            count += 1
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return count, comparisons, True


def join_fragment(
    segments: List[Segment],
    method: JoinMethod,
    theta: float,
    func: SimilarityFunction,
    filter_config: FilterConfig,
    emit_pair: EmitPair,
    context: Optional[JobContext] = None,
    pair_allowed: Optional[PairPredicate] = None,
) -> None:
    """Join one fragment's segments and emit surviving partial counts."""
    method = JoinMethod(method)
    filters = FragmentFilters(theta, func, filter_config)
    if method is JoinMethod.LOOP:
        _loop_join(segments, filters, emit_pair, context, pair_allowed)
    elif method is JoinMethod.INDEX:
        _index_join(segments, filters, emit_pair, context, pair_allowed)
    else:
        _prefix_join(
            segments, filters, theta, func, emit_pair, context, pair_allowed
        )


def _bump(context: Optional[JobContext], name: str, amount: int = 1) -> None:
    if context is not None and amount:
        context.increment(_COUNTER_GROUP, name, amount)


def _consider_pair(
    seg_a: Segment,
    seg_b: Segment,
    filters: FragmentFilters,
    emit_pair: EmitPair,
    context: Optional[JobContext],
    common: Optional[int] = None,
) -> None:
    """Run the filter battery on one segment pair and emit if it survives."""
    _bump(context, "pairs_considered")
    pruned = filters.pre_intersection(seg_a, seg_b)
    if pruned:
        _bump(context, f"pruned_{pruned}")
        return
    if common is None:
        # Early-termination merge: abandon as soon as the remaining
        # suffixes cannot reach the smallest intersection that would
        # survive the post-intersection filters.  Safe because those
        # filters are monotone in ``common`` (see FragmentFilters.
        # min_required_common); an abandoned pair was doomed either way.
        required = (
            filters.min_required_common(seg_a, seg_b)
            if filters.early_termination
            else 1
        )
        common, comparisons, completed = bounded_merge_intersection(
            seg_a.tokens, seg_b.tokens, required
        )
        _bump(context, "verify_token_comparisons", comparisons)
        if not completed:
            _bump(context, "pruned_overlap_bound")
            return
    if common == 0:
        _bump(context, "disjoint_segments")
        return
    pruned = filters.post_intersection(seg_a, seg_b, common)
    if pruned:
        _bump(context, f"pruned_{pruned}")
        return
    _bump(context, "candidates_emitted")
    info_a, info_b = seg_a.info, seg_b.info
    # Self-joins order pairs by rid; R-S joins put the left collection
    # (side 0) first so the output key is always (rid_left, rid_right).
    if info_a.side != info_b.side:
        first_comes_a = info_a.side < info_b.side
    else:
        first_comes_a = info_a.rid <= info_b.rid
    if first_comes_a:
        emit_pair(info_a.rid, info_a.str_len, info_b.rid, info_b.str_len, common)
    else:
        emit_pair(info_b.rid, info_b.str_len, info_a.rid, info_a.str_len, common)


def _loop_join(
    segments: List[Segment],
    filters: FragmentFilters,
    emit_pair: EmitPair,
    context: Optional[JobContext],
    pair_allowed: Optional[PairPredicate],
) -> None:
    n = len(segments)
    for i in range(n):
        seg_a = segments[i]
        for j in range(i + 1, n):
            seg_b = segments[j]
            if pair_allowed is not None and not pair_allowed(seg_a, seg_b):
                continue
            _consider_pair(seg_a, seg_b, filters, emit_pair, context)


def _index_join(
    segments: List[Segment],
    filters: FragmentFilters,
    emit_pair: EmitPair,
    context: Optional[JobContext],
    pair_allowed: Optional[PairPredicate],
) -> None:
    # token rank -> indices of already-inserted segments containing it.
    inverted: Dict[int, List[int]] = {}
    for current_index, segment in enumerate(segments):
        # Probing every token of the current segment against the index of
        # all earlier segments yields each earlier segment's exact
        # intersection count in one pass.
        hits: Dict[int, int] = {}
        for token in segment.tokens:
            for earlier in inverted.get(token, ()):
                hits[earlier] = hits.get(earlier, 0) + 1
        for earlier, common in hits.items():
            other = segments[earlier]
            if pair_allowed is not None and not pair_allowed(segment, other):
                continue
            _consider_pair(segment, other, filters, emit_pair, context, common)
        for token in segment.tokens:
            inverted.setdefault(token, []).append(current_index)


def _prefix_join(
    segments: List[Segment],
    filters: FragmentFilters,
    theta: float,
    func: SimilarityFunction,
    emit_pair: EmitPair,
    context: Optional[JobContext],
    pair_allowed: Optional[PairPredicate],
) -> None:
    prefix_lens = [
        min(len(segment), prefix_length(func, theta, segment.info.str_len))
        for segment in segments
    ]
    inverted: Dict[int, List[int]] = {}
    for current_index, segment in enumerate(segments):
        candidates: Dict[int, bool] = {}
        for token in segment.tokens[: prefix_lens[current_index]]:
            for earlier in inverted.get(token, ()):
                candidates[earlier] = True
        for earlier in candidates:
            other = segments[earlier]
            if pair_allowed is not None and not pair_allowed(segment, other):
                continue
            _consider_pair(segment, other, filters, emit_pair, context)
        for token in segment.tokens[: prefix_lens[current_index]]:
            inverted.setdefault(token, []).append(current_index)
