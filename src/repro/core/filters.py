"""The four filtering methods of Section V-A (Lemmas 1–4).

All four filters are *safe per fragment*: each lemma's proof derives
``sim(s, t) < θ`` from a single fragment's view (the ∀-quantifier in the
paper's statements is stronger than the proofs require), so a reducer may
suppress a pair locally.  A suppressed pair can then only be under-counted
during verification, and under-counting a provably-dissimilar pair never
changes the result set.

The lemmas are stated in the paper for Jaccard; here they are parameterised
by the *required overlap* ``τ = required_overlap(func, θ, |s|, |t|)``, which
makes the same inequalities valid for Dice and Cosine:

* StrL-Filter (Lemma 1): prune when the partner length is outside the
  admissible band.
* SegL-Filter (Lemma 2): prune when even a full overlap of the two segments
  plus full head/tail overlaps cannot reach ``τ``.
* SegI-Filter (Lemma 3): like SegL but with the *actual* segment
  intersection instead of its upper bound.
* SegD-Filter (Lemma 4): prune when the segment symmetric difference
  already exceeds the total symmetric-difference budget
  ``|s| + |t| − 2τ`` minus the unavoidable head/tail differences.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import FilterConfig
from repro.core.partitioning import Segment
from repro.similarity.functions import SimilarityFunction
from repro.similarity.thresholds import (
    length_lower_bound,
    required_overlap,
)


class FragmentFilters:
    """Filter battery applied inside one fragment's join.

    Stateless with respect to the data; construct once per reduce task.
    ``pre_intersection`` runs the filters that need only lengths (cheap,
    before computing the segment intersection); ``post_intersection`` runs
    the filters that need the intersection size.  Both return the name of
    the filter that pruned the pair, or ``None`` to keep it.
    """

    def __init__(
        self,
        theta: float,
        func: SimilarityFunction,
        config: FilterConfig,
    ) -> None:
        self.theta = theta
        self.func = SimilarityFunction(func)
        self.config = config

    # -- Lemma 1 ------------------------------------------------------
    def _strl_prune(self, len_s: int, len_t: int) -> bool:
        small, large = (len_s, len_t) if len_s <= len_t else (len_t, len_s)
        return small < length_lower_bound(self.func, self.theta, large)

    # -- Lemma 2 ------------------------------------------------------
    def _segl_prune(self, tau: int, seg_s: Segment, seg_t: Segment) -> bool:
        budget = (
            tau
            - min(seg_s.info.ahead, seg_t.info.ahead)
            - min(seg_s.info.behind, seg_t.info.behind)
        )
        return min(len(seg_s), len(seg_t)) < budget

    # -- Lemma 3 ------------------------------------------------------
    def _segi_prune(self, tau: int, common: int, seg_s: Segment, seg_t: Segment) -> bool:
        budget = (
            tau
            - min(seg_s.info.ahead, seg_t.info.ahead)
            - min(seg_s.info.behind, seg_t.info.behind)
        )
        return common < budget

    # -- Lemma 4 ------------------------------------------------------
    def _segd_prune(self, tau: int, common: int, seg_s: Segment, seg_t: Segment) -> bool:
        len_s, len_t = seg_s.info.str_len, seg_t.info.str_len
        seg_diff = len(seg_s) + len(seg_t) - 2 * common
        budget = (
            (len_s + len_t - 2 * tau)
            - abs(seg_s.info.ahead - seg_t.info.ahead)
            - abs(seg_s.info.behind - seg_t.info.behind)
        )
        return seg_diff > budget

    # ------------------------------------------------------------------
    @property
    def early_termination(self) -> bool:
        """Whether the fragment merge may use the early-termination bound."""
        return self.config.early_verify

    def min_required_common(self, seg_s: Segment, seg_t: Segment) -> int:
        """Smallest segment intersection that survives ``post_intersection``.

        Both post-intersection filters are monotone in ``common`` (a larger
        intersection can only help a pair survive), so the segment merge
        may be abandoned as soon as the remaining suffixes cannot reach
        this value: the pair would be pruned — or, at 0 overlap, dropped
        as disjoint — whatever the exact count turned out to be.  The
        result is always ≥ 1 because zero-overlap segment pairs are never
        emitted.
        """
        required = 1
        if not (self.config.segi or self.config.segd):
            return required
        len_s, len_t = seg_s.info.str_len, seg_t.info.str_len
        tau = required_overlap(self.func, self.theta, len_s, len_t)
        head = min(seg_s.info.ahead, seg_t.info.ahead)
        tail = min(seg_s.info.behind, seg_t.info.behind)
        if self.config.segi:
            # Lemma 3 prunes when common < tau − head − tail.
            required = max(required, tau - head - tail)
        if self.config.segd:
            # Lemma 4 prunes when |seg_s| + |seg_t| − 2·common > budget,
            # i.e. the pair survives iff common ≥ ⌈(|seg_s|+|seg_t|−budget)/2⌉.
            budget = (
                (len_s + len_t - 2 * tau)
                - abs(seg_s.info.ahead - seg_t.info.ahead)
                - abs(seg_s.info.behind - seg_t.info.behind)
            )
            required = max(required, -((budget - len(seg_s) - len(seg_t)) // 2))
        return required

    def pre_intersection(self, seg_s: Segment, seg_t: Segment) -> Optional[str]:
        """Filters that run before the segment intersection is computed."""
        len_s, len_t = seg_s.info.str_len, seg_t.info.str_len
        if self.config.strl and self._strl_prune(len_s, len_t):
            return "strl"
        if self.config.segl:
            tau = required_overlap(self.func, self.theta, len_s, len_t)
            if self._segl_prune(tau, seg_s, seg_t):
                return "segl"
        return None

    def post_intersection(
        self, seg_s: Segment, seg_t: Segment, common: int
    ) -> Optional[str]:
        """Filters that need the exact segment intersection size."""
        if not (self.config.segi or self.config.segd):
            return None
        len_s, len_t = seg_s.info.str_len, seg_t.info.str_len
        tau = required_overlap(self.func, self.theta, len_s, len_t)
        if self.config.segi and self._segi_prune(tau, common, seg_s, seg_t):
            return "segi"
        if self.config.segd and self._segd_prune(tau, common, seg_s, seg_t):
            return "segd"
        return None
