"""The verification MapReduce job (paper Section V-B).

Input: the filter job's ``((rid_s, rid_t), (common, len_s, len_t))``
partial counts.  The per-fragment counts of one pair are summed (a map-side
combiner already collapses duplicates within a map task); the exact
similarity is then derived from the total count and the two record sizes —
FS-Join never touches the original strings again.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.mapreduce.job import JobContext, MapReduceJob
from repro.similarity.functions import SimilarityFunction
from repro.similarity.verify import verify_overlap

PartialCount = Tuple[int, int, int]  # (common, len_s, len_t)


class VerificationJob(MapReduceJob):
    """Aggregate partial counts and apply the exact threshold test."""

    name = "fsjoin-verify"

    def __init__(self, theta: float, func: SimilarityFunction) -> None:
        self.theta = theta
        self.func = SimilarityFunction(func)

    def combine(self, key, values: List[PartialCount], context: JobContext):
        if len(values) == 1:
            return None
        total = sum(common for common, _, _ in values)
        _, len_s, len_t = values[0]
        return [(key, (total, len_s, len_t))]

    def reduce(
        self, key, values: List[PartialCount], emit, context: JobContext
    ) -> None:
        total = sum(common for common, _, _ in values)
        _, len_s, len_t = values[0]
        context.increment("fsjoin.verify", "candidates")
        # Shared verification rule (Section V-B) — the same early-terminating
        # verifier module the in-memory joins use, applied to the aggregated
        # count (the token comparisons themselves were already saved in the
        # filter job's bounded merges).
        score = verify_overlap(self.func, self.theta, total, len_s, len_t)
        if score is not None:
            context.increment("fsjoin.verify", "results")
            emit(key, score)
