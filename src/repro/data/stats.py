"""Dataset statistics (the paper's Table III).

``dataset_stats`` computes the quantities Table III reports for each corpus
(record count, size, length min / max / mean) plus the token-skew figures
the load-balancing discussion relies on.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from repro.data.records import RecordCollection


@dataclass(frozen=True)
class DatasetStats:
    """Summary statistics of one record collection."""

    n_records: int
    n_tokens: int
    vocab_size: int
    size_bytes: int
    min_len: int
    max_len: int
    mean_len: float
    top_token_share: float
    """Fraction of all token occurrences taken by the single most frequent token."""

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "records": self.n_records,
            "tokens": self.n_tokens,
            "vocab": self.vocab_size,
            "size_mb": round(self.size_bytes / 1e6, 3),
            "min_len": self.min_len,
            "max_len": self.max_len,
            "mean_len": round(self.mean_len, 2),
            "top_token_share": round(self.top_token_share, 4),
        }


def dataset_stats(records: RecordCollection) -> DatasetStats:
    """Compute :class:`DatasetStats` for a collection."""
    if len(records) == 0:
        return DatasetStats(0, 0, 0, 0, 0, 0, 0.0, 0.0)
    frequencies: Counter = Counter()
    size_bytes = 0
    min_len = max_len = records[0].size
    total = 0
    for record in records:
        n = record.size
        total += n
        min_len = min(min_len, n)
        max_len = max(max_len, n)
        for token in record.tokens:
            frequencies[token] += 1
            size_bytes += len(token) + 1
    top = frequencies.most_common(1)[0][1] if frequencies else 0
    return DatasetStats(
        n_records=len(records),
        n_tokens=total,
        vocab_size=len(frequencies),
        size_bytes=size_bytes,
        min_len=min_len,
        max_len=max_len,
        mean_len=total / len(records),
        top_token_share=top / total if total else 0.0,
    )
