"""Tokenizers that turn raw text into token sequences.

SSJoin treats a string as a set of tokens.  The paper tokenises on words; a
q-gram tokenizer is also provided for callers who want character-level sets.
"""

from __future__ import annotations

import re
from typing import List

from repro.errors import ConfigError


class Tokenizer:
    """Base tokenizer interface."""

    def tokenize(self, text: str) -> List[str]:
        """Split ``text`` into tokens (duplicates allowed, order preserved)."""
        raise NotImplementedError

    def __call__(self, text: str) -> List[str]:
        return self.tokenize(text)


class WhitespaceTokenizer(Tokenizer):
    """Split on runs of whitespace; keeps punctuation attached to words."""

    def tokenize(self, text: str) -> List[str]:
        return text.split()


class WordTokenizer(Tokenizer):
    """Extract lowercase alphanumeric words, dropping punctuation."""

    _WORD = re.compile(r"[A-Za-z0-9]+")

    def tokenize(self, text: str) -> List[str]:
        return [match.group(0).lower() for match in self._WORD.finditer(text)]


class QGramTokenizer(Tokenizer):
    """Overlapping character q-grams of the (optionally padded) string."""

    def __init__(self, q: int = 3, pad: bool = True) -> None:
        if q < 1:
            raise ConfigError(f"q must be >= 1, got {q}")
        self.q = q
        self.pad = pad

    def tokenize(self, text: str) -> List[str]:
        if self.pad:
            fill = "#" * (self.q - 1)
            text = f"{fill}{text}{fill}"
        if len(text) < self.q:
            return [text] if text else []
        return [text[i : i + self.q] for i in range(len(text) - self.q + 1)]
