"""Record types used throughout the package.

A :class:`Record` is a record id plus its token *set*, stored as a tuple of
unique tokens (SSJoin semantics: the string is a set of tokens, duplicates
within one record are dropped).  Token order inside a ``Record`` carries no
meaning; the ordering phase of each algorithm re-sorts tokens under a global
ordering and works with integer token ranks from then on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import DataError


@dataclass(frozen=True)
class Record:
    """One input record: an id and its unique tokens.

    Attributes:
        rid: Record identifier, unique within a collection.
        tokens: Unique tokens, in no particular order.
    """

    rid: int
    tokens: Tuple[str, ...]

    @staticmethod
    def make(rid: int, tokens: Iterable[str]) -> "Record":
        """Build a record, de-duplicating tokens but keeping first-seen order."""
        seen = dict.fromkeys(tokens)
        return Record(rid, tuple(seen))

    @property
    def size(self) -> int:
        """Number of (unique) tokens."""
        return len(self.tokens)

    def token_set(self) -> frozenset:
        """The tokens as a frozenset (for set-algebra callers)."""
        return frozenset(self.tokens)


class RecordCollection:
    """An ordered collection of records with unique ids.

    Provides list-like iteration plus id lookup; the MapReduce runtime treats
    a collection as the job input (each record is one input key/value pair).
    """

    def __init__(self, records: Iterable[Record] = ()) -> None:
        self._records: List[Record] = []
        self._by_rid: Dict[int, Record] = {}
        for record in records:
            self.add(record)

    def add(self, record: Record) -> None:
        """Append a record; raises :class:`DataError` on duplicate rid."""
        if record.rid in self._by_rid:
            raise DataError(f"duplicate record id {record.rid}")
        self._records.append(record)
        self._by_rid[record.rid] = record

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index: int) -> Record:
        return self._records[index]

    def get(self, rid: int) -> Record:
        """Look a record up by id; raises :class:`DataError` if absent."""
        try:
            return self._by_rid[rid]
        except KeyError:
            raise DataError(f"no record with id {rid}") from None

    def __contains__(self, rid: int) -> bool:
        return rid in self._by_rid

    @staticmethod
    def from_token_lists(token_lists: Sequence[Iterable[str]]) -> "RecordCollection":
        """Build a collection from raw token lists, assigning rids 0..n-1."""
        return RecordCollection(
            Record.make(rid, tokens) for rid, tokens in enumerate(token_lists)
        )

    def sizes(self) -> List[int]:
        """Record sizes, in collection order."""
        return [record.size for record in self._records]
