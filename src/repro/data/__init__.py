"""Datasets: records, tokenizers, loaders and synthetic corpus generators.

The paper evaluates on three real corpora (Enron Email, PubMed abstracts,
Wikipedia abstracts).  Those corpora are not bundled here; instead
:mod:`repro.data.synthetic` generates Zipf-distributed corpora whose record
counts, length distributions and vocabulary skew are parameterised to mimic
each corpus's published statistics (Table III), at laptop scale.
"""

from repro.data.records import Record, RecordCollection
from repro.data.tokenize import (
    QGramTokenizer,
    Tokenizer,
    WhitespaceTokenizer,
    WordTokenizer,
)
from repro.data.datasets import load_records, sample, save_records
from repro.data.stats import DatasetStats, dataset_stats
from repro.data.synthetic import (
    SyntheticSpec,
    generate,
    EMAIL_LIKE,
    PUBMED_LIKE,
    WIKI_LIKE,
    make_corpus,
)

__all__ = [
    "Record",
    "RecordCollection",
    "Tokenizer",
    "WhitespaceTokenizer",
    "WordTokenizer",
    "QGramTokenizer",
    "load_records",
    "save_records",
    "sample",
    "DatasetStats",
    "dataset_stats",
    "SyntheticSpec",
    "generate",
    "make_corpus",
    "EMAIL_LIKE",
    "PUBMED_LIKE",
    "WIKI_LIKE",
]
