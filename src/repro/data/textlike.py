"""Topic-clustered corpora with text-like positional structure.

The plain Zipf generators (:mod:`repro.data.synthetic`) draw every record
from the same global distribution, so any two records have nearly
identical *profiles* across the frequency-ordered universe — and the
paper's segment filters (SegL/SegI/SegD), which compare per-fragment
head/tail counts, barely fire (see EXPERIMENTS.md, Table IV).

Real corpora are topical: a record concentrates its rare tokens inside its
topic's vocabulary region.  This generator reproduces that structure —
records mix a *shared* hot-word pool (function words) with one topic's
content pool — so cross-topic pairs have strongly different fragment
profiles.  ``benchmarks/bench_ext_table4_textlike.py`` uses it to show the
segment filters regaining pruning power on topical data.
"""

from __future__ import annotations

import numpy as np

from repro.data.records import Record, RecordCollection
from repro.errors import ConfigError


def topic_corpus(
    n_records: int,
    n_topics: int = 15,
    topic_vocab: int = 400,
    shared_vocab: int = 80,
    mean_len: float = 60.0,
    shared_fraction: float = 0.35,
    duplicate_fraction: float = 0.2,
    mutation_rate: float = 0.1,
    seed: int = 0,
) -> RecordCollection:
    """Generate a topical corpus.

    Args:
        n_records: Total records (near-duplicates included).
        n_topics: Number of disjoint content-vocabulary clusters.
        topic_vocab: Content words per topic.
        shared_vocab: Hot function-word pool shared by all records.
        mean_len: Mean record length (token-set size).
        shared_fraction: Fraction of a record drawn from the shared pool.
        duplicate_fraction: Fraction of records that are near-duplicates.
        mutation_rate: Token replacement rate inside a near-duplicate
            (replacements stay within the source's topic).
        seed: RNG seed; fully deterministic.
    """
    if n_records < 1 or n_topics < 1:
        raise ConfigError("need n_records >= 1 and n_topics >= 1")
    if not 0.0 <= shared_fraction <= 1.0:
        raise ConfigError("shared_fraction must be in [0, 1]")
    if not 0.0 <= duplicate_fraction < 1.0:
        raise ConfigError("duplicate_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)

    shared_pool = [f"fn{i:03d}" for i in range(shared_vocab)]
    topic_pools = [
        [f"t{topic:02d}w{i:04d}" for i in range(topic_vocab)]
        for topic in range(n_topics)
    ]
    shared_weights = _zipf_weights(shared_vocab, 1.1)
    topic_weights = _zipf_weights(topic_vocab, 1.05)

    n_dups = int(n_records * duplicate_fraction)
    n_base = n_records - n_dups
    base_records = []
    topics = []
    for _ in range(n_base):
        topic = int(rng.integers(0, n_topics))
        topics.append(topic)
        length = max(4, int(rng.normal(mean_len, mean_len / 4)))
        n_shared = min(shared_vocab, int(length * shared_fraction))
        n_topic = min(topic_vocab, length - n_shared)
        tokens = _draw(shared_pool, shared_weights, n_shared, rng) + _draw(
            topic_pools[topic], topic_weights, n_topic, rng
        )
        base_records.append(tokens)

    records = list(base_records)
    for _ in range(n_dups):
        source_index = int(rng.integers(0, n_base))
        tokens = list(base_records[source_index])
        pool = topic_pools[topics[source_index]]
        for position in range(len(tokens)):
            if rng.random() < mutation_rate:
                tokens[position] = pool[_weighted_index(topic_weights, rng)]
        records.append(tokens)

    return RecordCollection(
        Record.make(rid, tokens) for rid, tokens in enumerate(records)
    )


def _zipf_weights(size: int, exponent: float) -> np.ndarray:
    weights = 1.0 / np.arange(1, size + 1, dtype=np.float64) ** exponent
    return weights / weights.sum()


def _weighted_index(weights: np.ndarray, rng: np.random.Generator) -> int:
    return int(rng.choice(len(weights), p=weights))


def _draw(pool, weights: np.ndarray, count: int, rng: np.random.Generator):
    if count <= 0:
        return []
    chosen = rng.choice(len(pool), size=count, replace=False, p=weights)
    return [pool[i] for i in chosen]
