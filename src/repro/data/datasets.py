"""Dataset I/O and sampling.

Records are stored one per line: ``rid<TAB>token token token ...``.  The
sampling helper implements the paper's scale experiments (Section VI-C):
``sample(records, 0.6)`` is the paper's "6X" dataset (60% of records drawn
uniformly at random).
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Optional, Union

from repro.data.records import Record, RecordCollection
from repro.data.tokenize import Tokenizer, WhitespaceTokenizer
from repro.errors import ConfigError, DataError


def save_records(records: RecordCollection, path: Union[str, Path]) -> None:
    """Write records to ``path`` in ``rid<TAB>tokens`` format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(f"{record.rid}\t{' '.join(record.tokens)}\n")


def load_records(
    path: Union[str, Path], tokenizer: Optional[Tokenizer] = None
) -> RecordCollection:
    """Read records from ``path``.

    Lines with a leading ``rid<TAB>`` keep that id; otherwise line numbers
    are used.  ``tokenizer`` defaults to whitespace splitting.
    """
    tokenizer = tokenizer or WhitespaceTokenizer()
    collection = RecordCollection()
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle):
            line = line.rstrip("\n")
            if not line:
                continue
            rid_text, sep, body = line.partition("\t")
            if sep and rid_text.isdigit():
                rid = int(rid_text)
            else:
                rid, body = line_no, line
            collection.add(Record.make(rid, tokenizer.tokenize(body)))
    return collection


def sample(
    records: RecordCollection, fraction: float, seed: int = 0
) -> RecordCollection:
    """Uniform random sample of ``fraction`` of the records (rids preserved).

    ``fraction=1.0`` returns a shallow copy in the original order, matching
    the paper's "10X" (full) scale.
    """
    if not 0.0 < fraction <= 1.0:
        raise ConfigError(f"fraction must be in (0, 1], got {fraction}")
    if fraction == 1.0:
        return RecordCollection(records)
    rng = random.Random(seed)
    count = max(1, round(len(records) * fraction))
    if count > len(records):
        raise DataError("sample larger than population")
    chosen = rng.sample(range(len(records)), count)
    return RecordCollection(records[i] for i in sorted(chosen))
