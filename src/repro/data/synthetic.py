"""Synthetic corpus generators mimicking the paper's three datasets.

The paper evaluates on Enron Email, PubMed abstracts and Wikipedia abstracts
(Table III).  Those corpora are multi-GB downloads; this module generates
Zipf-distributed stand-ins whose *shape* matches each corpus:

* token frequencies follow a Zipf law (the skew that drives prefix filtering
  and the load-balancing problems the paper studies);
* record lengths follow a clipped lognormal with the corpus's min / mean
  ratios (Email: long messages with an extreme tail; PubMed: mid-length
  abstracts; Wiki: short abstracts);
* a configurable fraction of records are *near-duplicates* of earlier
  records (token mutations), so that joins at high thresholds return
  non-trivial result sets — mirroring the duplicate-detection use case the
  paper motivates.

Record counts are scaled down (pure-Python laptop scale); every generator is
fully deterministic given a seed.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.data.records import Record, RecordCollection
from repro.errors import ConfigError


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of one synthetic corpus.

    Attributes:
        name: Corpus label (used in bench output).
        n_records: Number of records to generate (near-duplicates included).
        vocab_size: Token-universe size.
        zipf_s: Zipf exponent of the token-frequency distribution.
        min_len / max_len: Clip bounds on record length (token-set size).
        mean_len: Target mean record length.
        sigma: Lognormal shape parameter (length-tail heaviness).
        duplicate_fraction: Fraction of records generated as near-duplicates.
        mutation_rate: Per-token replacement probability in a near-duplicate.
    """

    name: str
    n_records: int
    vocab_size: int
    zipf_s: float
    min_len: int
    max_len: int
    mean_len: float
    sigma: float
    duplicate_fraction: float = 0.2
    mutation_rate: float = 0.1

    def __post_init__(self) -> None:
        if self.n_records < 1:
            raise ConfigError("n_records must be >= 1")
        if self.vocab_size < self.max_len:
            raise ConfigError("vocab_size must be >= max_len (records are sets)")
        if not 0 < self.min_len <= self.max_len:
            raise ConfigError("need 0 < min_len <= max_len")
        if not 0.0 <= self.duplicate_fraction < 1.0:
            raise ConfigError("duplicate_fraction must be in [0, 1)")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ConfigError("mutation_rate must be in [0, 1]")


#: Long messages, extreme length tail, large vocabulary (Enron-like).
EMAIL_LIKE = SyntheticSpec(
    name="email",
    n_records=1000,
    vocab_size=30_000,
    zipf_s=1.05,
    min_len=20,
    max_len=2_000,
    mean_len=160.0,
    sigma=0.9,
)

#: Mid-length abstracts (PubMed-like, paper mean 80.39 tokens).
PUBMED_LIKE = SyntheticSpec(
    name="pubmed",
    n_records=1000,
    vocab_size=25_000,
    zipf_s=1.1,
    min_len=5,
    max_len=1_100,
    mean_len=80.0,
    sigma=0.5,
)

#: Short abstracts (Wiki-like, paper mean 55.95 tokens).
WIKI_LIKE = SyntheticSpec(
    name="wiki",
    n_records=1000,
    vocab_size=20_000,
    zipf_s=1.15,
    min_len=3,
    max_len=600,
    mean_len=56.0,
    sigma=0.6,
)

_PRESETS = {spec.name: spec for spec in (EMAIL_LIKE, PUBMED_LIKE, WIKI_LIKE)}


def _zipf_log_weights(vocab_size: int, s: float) -> np.ndarray:
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    return -s * np.log(ranks)


def _sample_lengths(spec: SyntheticSpec, rng: np.random.Generator, n: int) -> np.ndarray:
    # Lognormal with the requested mean: mean = exp(mu + sigma^2/2).
    mu = math.log(spec.mean_len) - spec.sigma**2 / 2.0
    lengths = rng.lognormal(mean=mu, sigma=spec.sigma, size=n)
    return np.clip(np.rint(lengths), spec.min_len, spec.max_len).astype(np.int64)


def _sample_token_sets(
    log_weights: np.ndarray, lengths: Sequence[int], rng: np.random.Generator
) -> List[np.ndarray]:
    """Draw one unique-token set per requested length.

    Uses the Gumbel top-k trick: adding Gumbel noise to log-weights and
    taking the k largest is equivalent to weighted sampling without
    replacement, in O(vocab) per record.
    """
    vocab = len(log_weights)
    sets: List[np.ndarray] = []
    for k in lengths:
        k = min(int(k), vocab)
        gumbel = rng.gumbel(size=vocab)
        keys = log_weights + gumbel
        top = np.argpartition(keys, vocab - k)[vocab - k :]
        sets.append(np.sort(top))
    return sets


def _mutate(
    base: np.ndarray,
    rate: float,
    log_weights: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Replace ~``rate`` of ``base``'s tokens with fresh Zipf draws."""
    keep = base[rng.random(len(base)) >= rate]
    need = len(base) - len(keep)
    if need <= 0:
        return keep
    gumbel = rng.gumbel(size=len(log_weights))
    keys = log_weights + gumbel
    # Draw extra candidates so replacements colliding with kept tokens can
    # be skipped without another sampling round.
    draw = min(len(log_weights), need + len(base))
    candidates = np.argpartition(keys, len(keys) - draw)[len(keys) - draw :]
    kept = set(keep.tolist())
    fresh = [c for c in candidates.tolist() if c not in kept][:need]
    return np.sort(np.concatenate([keep, np.asarray(fresh, dtype=base.dtype)]))


def generate(spec: SyntheticSpec, seed: int = 0) -> RecordCollection:
    """Generate a corpus for ``spec``; deterministic in ``seed``."""
    rng = np.random.default_rng(seed)
    log_weights = _zipf_log_weights(spec.vocab_size, spec.zipf_s)
    n_dups = int(spec.n_records * spec.duplicate_fraction)
    n_base = spec.n_records - n_dups
    lengths = _sample_lengths(spec, rng, n_base)
    token_sets = _sample_token_sets(log_weights, lengths, rng)

    for _ in range(n_dups):
        source = token_sets[int(rng.integers(0, n_base))]
        token_sets.append(_mutate(source, spec.mutation_rate, log_weights, rng))

    width = len(str(spec.vocab_size))
    collection = RecordCollection()
    for rid, tokens in enumerate(token_sets):
        words = tuple(f"w{int(t):0{width}d}" for t in tokens)
        collection.add(Record(rid, words))
    return collection


def make_corpus(name: str, n_records: int, seed: int = 0, **overrides) -> RecordCollection:
    """Generate a preset corpus (``email`` / ``pubmed`` / ``wiki``) of a given size.

    Extra keyword arguments override the preset's fields, e.g.
    ``make_corpus("wiki", 500, mutation_rate=0.05)``.
    """
    try:
        preset = _PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown corpus {name!r}; choose from {sorted(_PRESETS)}"
        ) from None
    spec = dataclasses.replace(preset, n_records=n_records, **overrides)
    return generate(spec, seed=seed)
