"""Shard-local state: a fragment-sliced index and the node that serves it.

A :class:`ShardSlice` is a :class:`~repro.service.index.SegmentIndex`
restricted to the fragments a shard owns: it keeps the columnar posting
runs for owned fragments only, plus the *full* id column and segment bounds
of every record that posts into them — which is exactly what the
StrL/SegL/SegI/SegD lemmas and the final verification need, so a slice
evaluates its candidates with the unmodified single-node code path (both
probe paths included).

The one thing a slice does differently is candidate *claiming*.  On a
single node, a candidate's "first hit" is the globally smallest-id common
prefix token (Theorem 1: each pair is generated in exactly one fragment).
Across shards the same pair would collide on several shards' fragments, so
each slice applies the claim rule:

    a slice claims candidate ``t`` iff the first common token between the
    probe prefix and ``t`` lies in a fragment this slice owns.

The rule is locally checkable — the slice holds ``t``'s full id column, so
it can test whether any *earlier* probed token from a foreign fragment is in
``t`` — and it partitions every (query, candidate) pair to exactly one
shard.  The claimed first-hit coordinates equal the single-node ones, so
positional filtering, fragment lemmas and verification make identical
per-pair decisions, and the union of per-shard hit lists is bit-identical
to ``SegmentIndex.probe`` (``tests/test_cluster_router.py`` property-tests
this, failure injection and rebalance included).

A :class:`ShardNode` wraps one slice as a routable endpoint: replica
identity, a liveness flag the failure injector flips, and per-node
counters.  In this simulated cluster, replicas of one shard share the slice
object (the data is read-only at serve time); a real deployment would give
each replica its own copy restored from the same per-shard snapshot.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import FilterConfig
from repro.errors import ClusterError, ShardDownError
from repro.mapreduce.counters import Counters
from repro.observability.tracer import NOOP_TRACER, Tracer
from repro.service.columnar import FragmentPostings
from repro.service.index import (
    EncodedQuery,
    FirstHit,
    SearchHit,
    SegmentIndex,
    _bump,
)
from repro.similarity.functions import SimilarityFunction
from repro.similarity.thresholds import prefix_length


@dataclass
class FragmentPayload:
    """One fragment's shippable state (the unit a migration moves).

    ``postings`` is the fragment's columnar inverted lists; ``records``
    carries the full id column + flat segment bounds of every record
    posting in the fragment, because the receiving slice may not know
    those records yet.
    """

    fragment: int
    postings: FragmentPostings
    records: Dict[int, Tuple[Sequence[int], Tuple[int, ...]]]

    def n_postings(self) -> int:
        return len(self.postings)


class ShardSlice(SegmentIndex):
    """A SegmentIndex restricted to an owned set of fragments."""

    def __init__(self, order, partitioner, pivot_method,
                 owned: Iterable[int]) -> None:
        super().__init__(order, partitioner, pivot_method)
        self._owned: set = set(owned)
        for v in self._owned:
            if not 0 <= v < partitioner.n_partitions:
                raise ClusterError(
                    f"fragment {v} out of range for "
                    f"{partitioner.n_partitions} partitions"
                )

    @property
    def owned_fragments(self) -> FrozenSet[int]:
        return frozenset(self._owned)

    @classmethod
    def carve(
        cls, index: SegmentIndex, fragments: Iterable[int]
    ) -> "ShardSlice":
        """Slice a full index down to ``fragments``.

        Posting columns are copied per owned fragment; record metadata (id
        columns, segment bounds) is shared with the source index — both
        are immutable after insert, so sharing is safe and keeps an
        in-memory cluster's footprint near one index's.
        """
        slice_ = cls(
            index.order, index.partitioner, index.pivot_method, fragments
        )
        slice_.probe_path = index.probe_path
        touched: set = set()
        for v in slice_._owned:
            source = index._postings[v]
            source.seal()
            slice_._postings[v] = source.copy()
            touched.update(source.rids)
        for rid in touched:
            slice_._ranks[rid] = index._ranks[rid]
            slice_._segbounds[rid] = index._segbounds[rid]
        return slice_

    # -- the claim rule ------------------------------------------------
    def _candidates_columnar(
        self,
        query: EncodedQuery,
        theta: float,
        func: SimilarityFunction,
        counters: Optional[Counters],
    ) -> Dict[int, FirstHit]:
        """Columnar twin of :meth:`_candidates` — same claim rule, scanned
        over the flat posting runs."""
        candidates: Dict[int, FirstHit] = {}
        rejected: set = set()
        foreign: List[int] = []
        q_ids = query.ranks
        if not q_ids:
            return candidates
        limit = min(prefix_length(func, theta, query.size), len(q_ids))
        lookups = ceded = 0
        ranks_of = self._ranks
        owned = self._owned
        for v, start, end in self.partitioner.split_bounds(q_ids[:limit]):
            if v not in owned:
                foreign.extend(q_ids[start:end])
                continue
            postings = self._postings[v]
            if postings._pending:
                postings.seal()
            slots = postings._slots
            offsets = postings.offsets
            rids = postings.rids
            positions = postings.positions
            for qpos in range(start, end):
                lookups += 1
                slot = slots.get(q_ids[qpos])
                if slot is None:
                    continue
                for k in range(offsets[slot], offsets[slot + 1]):
                    rid = rids[k]
                    if rid in candidates or rid in rejected:
                        continue
                    if foreign and _any_rank_present(foreign, ranks_of[rid]):
                        rejected.add(rid)
                        ceded += 1
                    else:
                        candidates[rid] = (v, qpos, positions[k])
        _bump(counters, "posting_lookups", lookups)
        _bump(counters, "ceded_candidates", ceded)
        return candidates

    def _candidates(
        self,
        query: EncodedQuery,
        theta: float,
        func: SimilarityFunction,
        counters: Optional[Counters],
    ) -> Dict[int, FirstHit]:
        """Candidates whose globally-first prefix collision is owned here.

        Probe tokens arrive in ascending id order (fragments are id
        ranges), so by the time an owned fragment's token is scanned,
        ``foreign`` holds every smaller-id probe token that lives on some
        other shard.  A record containing one of those tokens collides
        earlier on that other shard — it is that shard's candidate, not
        ours — which makes the per-shard candidate sets disjoint and their
        union exactly the single-node candidate set.
        """
        candidates: Dict[int, FirstHit] = {}
        rejected: set = set()
        foreign: List[int] = []
        postings_view = self._legacy_postings()
        for v, token, qpos in self._probe_tokens(query, theta, func):
            if v not in self._owned:
                foreign.append(token)
                continue
            _bump(counters, "posting_lookups")
            for rid, pos in postings_view[v].get(token, ()):
                if rid in candidates or rid in rejected:
                    continue
                if foreign and _any_rank_present(foreign, self._ranks[rid]):
                    rejected.add(rid)
                    _bump(counters, "ceded_candidates")
                else:
                    candidates[rid] = (v, qpos, pos)
        return candidates

    def _batch_candidates_columnar(
        self,
        queries: Sequence[EncodedQuery],
        theta: float,
        func: SimilarityFunction,
        counters: Optional[Counters],
    ) -> List[Dict[int, FirstHit]]:
        """One-pass batched candidate generation *with* the claim rule.

        Stage 1 mirrors the base class but splits each query's prefix into
        owned tokens (grouped per fragment for the shared posting scans)
        and a sorted foreign-id list.  Stage 2 walks owned fragments in
        ascending token-id order; because fragments are contiguous id
        ranges, the foreign tokens a sequential probe would have
        accumulated before reaching token ``t`` are exactly the query's
        foreign ids smaller than ``t`` — a ``bisect`` prefix of the
        per-query foreign list.  Applying :func:`_any_rank_present` to
        that prefix reproduces the sequential claim decision for every
        (query, candidate) pair, so the batch stays disjoint across
        shards and bit-identical to per-query probes.
        """
        grouped: List[Dict[int, List[Tuple[int, int]]]] = [
            {} for _ in range(self.n_fragments)
        ]
        plen_cache: Dict[int, int] = {}
        foreign_of: List[List[int]] = [[] for _ in queries]
        owned = self._owned
        for qi, query in enumerate(queries):
            q_ids = query.ranks
            if not q_ids:
                continue
            size = query.size
            plen = plen_cache.get(size)
            if plen is None:
                plen = plen_cache[size] = prefix_length(func, theta, size)
            limit = min(plen, len(q_ids))
            foreign = foreign_of[qi]
            for v, start, end in self.partitioner.split_bounds(q_ids[:limit]):
                if v not in owned:
                    foreign.extend(q_ids[start:end])
                    continue
                token_map = grouped[v]
                for qpos in range(start, end):
                    token = q_ids[qpos]
                    probes = token_map.get(token)
                    if probes is None:
                        token_map[token] = probes = []
                    probes.append((qi, qpos))
        candidate_sets: List[Dict[int, FirstHit]] = [{} for _ in queries]
        rejected_sets: List[set] = [set() for _ in queries]
        ranks_of = self._ranks
        lookups = ceded = 0
        for v, token_map in enumerate(grouped):
            if not token_map:
                continue
            postings = self._postings[v]
            if postings._pending:
                postings.seal()
            slots = postings._slots
            offsets = postings.offsets
            rids = postings.rids
            positions = postings.positions
            for token in sorted(token_map):
                lookups += 1
                slot = slots.get(token)
                if slot is None:
                    continue
                # Foreign ids already "seen" by a sequential scan at this
                # token: the bisect prefix of each probing query's list.
                cuts = [
                    (qi, qpos,
                     foreign_of[qi][:bisect_left(foreign_of[qi], token)])
                    for qi, qpos in token_map[token]
                ]
                for k in range(offsets[slot], offsets[slot + 1]):
                    rid = rids[k]
                    pos = positions[k]
                    for qi, qpos, foreign in cuts:
                        candidates = candidate_sets[qi]
                        if rid in candidates or rid in rejected_sets[qi]:
                            continue
                        if foreign and _any_rank_present(foreign,
                                                         ranks_of[rid]):
                            rejected_sets[qi].add(rid)
                            ceded += 1
                        else:
                            candidates[rid] = (v, qpos, pos)
        _bump(counters, "posting_lookups", lookups)
        _bump(counters, "ceded_candidates", ceded)
        return candidate_sets

    def probe_batch(
        self,
        queries,
        theta: float,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        filters: Optional[FilterConfig] = None,
        counters: Optional[Counters] = None,
        tracer: Tracer = NOOP_TRACER,
    ):
        """Batched probes that preserve the claim rule.

        On the columnar path the base class's fragment-grouped scan calls
        this slice's :meth:`_batch_candidates_columnar`, which applies the
        claim rule inside the one-pass scan — shared tokens cost one
        posting lookup for the whole batch, results stay disjoint across
        shards.  The legacy fragment-grouped scan has no claim-rule twin,
        so that path probes queries one by one instead.
        """
        if self._use_columnar():
            return super().probe_batch(
                queries, theta, func, filters, counters, tracer
            )
        return [
            self.probe_encoded(query, theta, func, filters, counters, tracer)
            for query in queries
        ]

    # -- replica independence ------------------------------------------
    def clone(self) -> "ShardSlice":
        """A deep, independent copy of this slice.

        A pickle round-trip — the same bytes a per-shard snapshot would
        restore — so nothing is shared with the source: corrupting (or
        rebuilding) the clone cannot touch the original.  This is how
        ``independent_replicas`` clusters give each replica its own
        storage, and how the repair path re-hydrates a dead replica from
        a healthy peer.
        """
        import pickle

        return pickle.loads(pickle.dumps(self))

    def content_digests(self) -> Dict[int, str]:
        """Per-fragment content digests over *owned* fragments only —
        what the anti-entropy scrubber compares across a shard's
        replicas."""
        return {
            v: self.fragment_digest(v) for v in sorted(self._owned)
        }

    # -- lifecycle guards ----------------------------------------------
    def apply_batch(self, new_records) -> int:
        raise ClusterError(
            "a shard slice cannot ingest records directly; apply the batch "
            "to the full index and rebuild the cluster"
        )

    # -- fragment migration --------------------------------------------
    def extract_fragment(self, fragment: int) -> FragmentPayload:
        """Package one owned fragment for shipping to another shard."""
        if fragment not in self._owned:
            raise ClusterError(f"fragment {fragment} is not owned by this slice")
        postings = self._postings[fragment].copy()
        records: Dict[int, Tuple[Sequence[int], Tuple[int, ...]]] = {}
        for rid in postings.rids:
            if rid not in records:
                records[rid] = (self._ranks[rid], self._segbounds[rid])
        return FragmentPayload(fragment, postings, records)

    def install_fragment(self, payload: FragmentPayload) -> None:
        """Adopt a migrated fragment (postings + any unseen record data)."""
        if payload.fragment in self._owned:
            raise ClusterError(
                f"fragment {payload.fragment} is already owned by this slice"
            )
        self._owned.add(payload.fragment)
        self._postings[payload.fragment] = payload.postings.copy()
        for rid, (ranks, bounds) in payload.records.items():
            self._ranks.setdefault(rid, ranks)
            self._segbounds.setdefault(rid, bounds)
        self._legacy_cache = None

    def drop_fragment(self, fragment: int) -> None:
        """Release a migrated-away fragment and garbage-collect its records.

        A record's metadata stays only while some *other* owned fragment
        still posts it (its segment bounds tell us which fragments it
        touches).
        """
        if fragment not in self._owned:
            raise ClusterError(f"fragment {fragment} is not owned by this slice")
        self._owned.discard(fragment)
        departing = self._postings[fragment]
        departing.seal()
        self._postings[fragment] = FragmentPostings()
        for rid in set(departing.rids):
            if rid not in self._ranks:
                continue
            bounds = self._segbounds[rid]
            if not any(
                bounds[k] in self._owned for k in range(0, len(bounds), 3)
            ):
                del self._ranks[rid]
                del self._segbounds[rid]
        self._legacy_cache = None


def _any_rank_present(ranks: List[int], t_ranks: Sequence[int]) -> bool:
    """True if any of ``ranks`` occurs in the sorted id column ``t_ranks``."""
    for rank in ranks:
        i = bisect_left(t_ranks, rank)
        if i < len(t_ranks) and t_ranks[i] == rank:
            return True
    return False


class ShardNode:
    """One routable replica of one shard."""

    def __init__(self, shard_id: int, replica_id: int,
                 slice_: ShardSlice) -> None:
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.slice = slice_
        self.alive = True
        #: fencing flag: a fenced replica refuses *all* service (pings
        #: fail, probes raise) even while ``alive`` — the repair path's
        #: guarantee that a mid-rebuild replica can never serve stale or
        #: unverified answers.  Only verified readmission unfences.
        self.fenced = False
        self.counters = Counters()
        #: optional chaos hook, called with this node at the top of every
        #: probe (after the liveness check, before any work).  It may raise
        #: :class:`ShardDownError` to crash the probe mid-flight, or advance
        #: an injected clock to model a latency spike — the router's
        #: deadline checks run on the same clock, so injected latency is
        #: observable without real sleeps.
        self.fault_hook = None

    @property
    def name(self) -> str:
        return f"shard{self.shard_id}/r{self.replica_id}"

    # -- health --------------------------------------------------------
    def fail(self) -> None:
        """Injected failure: the node stops answering until restored."""
        self.alive = False

    def restore(self) -> None:
        """Flip the liveness flag back.

        Note this alone does *not* rejoin the router's rotation cleanly —
        the replica's circuit breaker may still be open.  Use
        :meth:`~repro.cluster.router.ClusterRouter.restore_replica` for
        the verified-readmission path (restore → verify against a healthy
        peer → close the breaker).
        """
        self.alive = True

    def fence(self) -> None:
        """Quarantine: stop serving until verified readmission unfences."""
        self.fenced = True

    def unfence(self) -> None:
        self.fenced = False

    def ping(self) -> bool:
        """Health check: can this replica serve a probe right now?"""
        return self.alive and not self.fenced

    def adopt_slice(self, slice_: ShardSlice) -> None:
        """Swap in a rebuilt slice (the repair path's re-hydration step)."""
        self.slice = slice_

    # -- serving -------------------------------------------------------
    def probe(
        self,
        query: EncodedQuery,
        theta: float,
        func: SimilarityFunction,
        filters: Optional[FilterConfig] = None,
        tracer: Tracer = NOOP_TRACER,
    ) -> List[SearchHit]:
        """Serve one scatter leg; raises :class:`ShardDownError` if failed."""
        # Serving checks the raw flags, not ping(): a replica whose health
        # check lies (or is stubbed in tests) must still crash the probe so
        # the router fails over instead of serving from a dead copy.
        if not self.alive or self.fenced:
            raise ShardDownError(f"{self.name} is {self._down_state()}")
        if self.fault_hook is not None:
            self.fault_hook(self)
        self.counters.increment("cluster.node", "probes")
        return self.slice.probe_encoded(
            query, theta, func, filters, self.counters, tracer
        )

    def probe_batch(
        self,
        queries: Sequence[EncodedQuery],
        theta: float,
        func: SimilarityFunction,
        filters: Optional[FilterConfig] = None,
        tracer: Tracer = NOOP_TRACER,
    ) -> List[List[SearchHit]]:
        """Serve one batched scatter leg (fragment-grouped on the columnar
        path, claim rule preserved); raises :class:`ShardDownError` if
        failed.  The fault hook fires once per batch — a crashed replica
        loses the whole leg, exactly like a crashed single probe."""
        if not self.alive or self.fenced:
            raise ShardDownError(f"{self.name} is {self._down_state()}")
        if self.fault_hook is not None:
            self.fault_hook(self)
        self.counters.increment("cluster.node", "probes", len(queries))
        return self.slice.probe_batch(
            queries, theta, func, filters, self.counters, tracer
        )

    def tokens_of(self, rid: int) -> Tuple[str, ...]:
        if not self.alive or self.fenced:
            raise ShardDownError(f"{self.name} is {self._down_state()}")
        return self.slice.tokens_of(rid)

    def _down_state(self) -> str:
        return "fenced" if (self.alive and self.fenced) else "down"

    def __contains__(self, rid: int) -> bool:
        return rid in self.slice

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.ping() else (
            "FENCED" if self.alive else "DOWN"
        )
        return (
            f"ShardNode({self.name}, {state}, "
            f"fragments={sorted(self.slice.owned_fragments)})"
        )


class IngestNode:
    """The write tier as a routable scatter participant.

    Wraps a :class:`~repro.ingest.streaming.StreamingIndex` with the same
    surface the router expects of a :class:`ShardNode` — liveness, fault
    hook, counters, ``probe`` — so freshly ingested records are served by
    one extra scatter leg.  Exactness needs no claim rule here: the
    ingest tier's record ids are disjoint from every shard's (the router
    rejects duplicates at admission), and the streaming index is exact
    over its own records, so gather stays concat-and-sort, dedup-free.
    """

    shard_id = -1
    replica_id = 0

    def __init__(self, streaming) -> None:
        self.streaming = streaming
        self.alive = True
        #: same contract as :attr:`ShardNode.fenced`.
        self.fenced = False
        self.counters = Counters()
        #: same contract as :attr:`ShardNode.fault_hook`.
        self.fault_hook = None

    @property
    def name(self) -> str:
        return "ingest/r0"

    def fail(self) -> None:
        self.alive = False

    def restore(self) -> None:
        self.alive = True

    def fence(self) -> None:
        self.fenced = True

    def unfence(self) -> None:
        self.fenced = False

    def ping(self) -> bool:
        return self.alive and not self.fenced

    def probe(
        self,
        query: EncodedQuery,
        theta: float,
        func: SimilarityFunction,
        filters: Optional[FilterConfig] = None,
        tracer: Tracer = NOOP_TRACER,
    ) -> List[SearchHit]:
        if not self.alive or self.fenced:
            raise ShardDownError(f"{self.name} is down")
        if self.fault_hook is not None:
            self.fault_hook(self)
        self.counters.increment("cluster.node", "probes")
        return self.streaming.probe_encoded(
            query, theta, func, filters, self.counters, tracer
        )

    def tokens_of(self, rid: int) -> Tuple[str, ...]:
        if not self.alive or self.fenced:
            raise ShardDownError(f"{self.name} is down")
        return self.streaming.tokens_of(rid)

    def __contains__(self, rid: int) -> bool:
        return rid in self.streaming

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "DOWN"
        return f"IngestNode({state}, records={len(self.streaming)})"
