"""Fragment placement: assigning vertical fragments to shard nodes.

FS-Join's pivots cut the token space into disjoint fragments, and a
fragment is the natural unit of *placement*: its postings are
self-contained (candidate generation in fragment ``v`` touches only
fragment ``v``'s lists), so each fragment can live on exactly one shard
and a probe scatters only to the shards its prefix fragments map to.

Placement is a bin-packing problem — fragment posting loads are far from
uniform once real token distributions meet Even-TF cuts — so
:func:`plan_shards` runs the classic LPT greedy (largest fragment first,
onto the currently lightest shard), which is a 4/3-approximation of the
optimal makespan and, more importantly here, deterministic.  Balance is
quantified with the same :func:`~repro.analysis.loadbalance.summarize_loads`
skew metrics the offline analysis uses for reduce tasks, so "how skewed is
this cluster" reads in the numbers the paper argues about (CV,
max-over-mean straggler factor).

A :class:`ShardPlan` is a value object: the router consults it for
fragment → shard lookups, :meth:`ShardPlan.move` re-homes one fragment
during a :meth:`~repro.cluster.router.ClusterRouter.rebalance`, and
:meth:`as_dict`/:meth:`from_dict` round-trip it through the cluster
manifest JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.loadbalance import LoadBalanceReport, summarize_loads
from repro.errors import ClusterError, ConfigError


@dataclass
class ShardPlan:
    """Assignment of every vertical fragment to one shard.

    Attributes:
        n_shards: Number of shard groups in the cluster.
        assignment: ``fragment id → shard id`` for every fragment.
        fragment_loads: ``fragment id → posting entries`` observed when the
            plan was computed (the bin-packing weights; kept so status
            reports and rebalance decisions can show planned vs observed).
    """

    n_shards: int
    assignment: Dict[int, int]
    fragment_loads: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigError("a cluster needs at least one shard")
        for fragment, shard in self.assignment.items():
            if not 0 <= shard < self.n_shards:
                raise ConfigError(
                    f"fragment {fragment} assigned to shard {shard}, "
                    f"valid shards are 0..{self.n_shards - 1}"
                )

    @property
    def n_fragments(self) -> int:
        return len(self.assignment)

    def shard_of(self, fragment: int) -> int:
        """The shard owning ``fragment``."""
        try:
            return self.assignment[fragment]
        except KeyError:
            raise ClusterError(f"no shard owns fragment {fragment}") from None

    def fragments_of(self, shard: int) -> Tuple[int, ...]:
        """Fragments owned by ``shard``, ascending (may be empty)."""
        return tuple(
            sorted(f for f, s in self.assignment.items() if s == shard)
        )

    def shard_loads(self, loads: Dict[int, int] = None) -> List[int]:
        """Per-shard total load under ``loads`` (default: planned loads)."""
        weights = self.fragment_loads if loads is None else loads
        totals = [0] * self.n_shards
        for fragment, shard in self.assignment.items():
            totals[shard] += weights.get(fragment, 0)
        return totals

    def balance_report(self, loads: Dict[int, int] = None) -> LoadBalanceReport:
        """Skew summary of the per-shard loads (CV, max-over-mean)."""
        return summarize_loads(self.shard_loads(loads))

    def move(self, fragment: int, to_shard: int) -> None:
        """Re-home one fragment (the rebalancer's bookkeeping step)."""
        if fragment not in self.assignment:
            raise ClusterError(f"no shard owns fragment {fragment}")
        if not 0 <= to_shard < self.n_shards:
            raise ClusterError(
                f"shard {to_shard} does not exist (0..{self.n_shards - 1})"
            )
        self.assignment[fragment] = to_shard

    # -- manifest round-trip -------------------------------------------
    def as_dict(self) -> Dict:
        """JSON-safe form (dict keys become strings in JSON)."""
        return {
            "n_shards": self.n_shards,
            "assignment": {str(f): s for f, s in self.assignment.items()},
            "fragment_loads": {
                str(f): n for f, n in self.fragment_loads.items()
            },
        }

    @classmethod
    def from_dict(cls, doc: Dict) -> "ShardPlan":
        return cls(
            n_shards=int(doc["n_shards"]),
            assignment={int(f): int(s) for f, s in doc["assignment"].items()},
            fragment_loads={
                int(f): int(n) for f, n in doc.get("fragment_loads", {}).items()
            },
        )


def plan_shards(fragment_loads: Sequence[int], n_shards: int) -> ShardPlan:
    """Greedy LPT bin-packing of fragments onto shards.

    Fragments are placed heaviest-first onto the currently lightest shard
    (ties broken by lower fragment id / lower shard id, so the plan is a
    pure function of the loads).  Empty shards are legal — with more
    shards than fragments the extras simply receive no traffic.
    """
    if n_shards < 1:
        raise ConfigError("a cluster needs at least one shard")
    order = sorted(
        range(len(fragment_loads)), key=lambda f: (-fragment_loads[f], f)
    )
    totals = [0] * n_shards
    assignment: Dict[int, int] = {}
    for fragment in order:
        shard = min(range(n_shards), key=lambda s: (totals[s], s))
        assignment[fragment] = shard
        totals[shard] += fragment_loads[fragment]
    return ShardPlan(
        n_shards=n_shards,
        assignment=assignment,
        fragment_loads={f: int(n) for f, n in enumerate(fragment_loads)},
    )
