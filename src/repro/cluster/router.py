"""Scatter-gather routing, admission control, failover and rebalancing.

:class:`ClusterRouter` is the cluster's front door.  One ``search`` is:

1. **Admission** — a bounded in-flight semaphore with a queue timeout;
   when the cluster is saturated the request is shed with a typed
   :class:`~repro.errors.ClusterOverloadError` instead of queueing
   unboundedly (fail fast, the caller can retry elsewhere).
2. **Routing** — the probe prefix is split at the shared pivots; only
   shards owning at least one fragment the prefix touches are contacted
   (V-SMART-Join's scatter discipline: never fan out to nodes that cannot
   contribute a candidate).
3. **Scatter** — each target shard is probed on one healthy replica
   (round-robin across replicas, gated by a per-replica
   :class:`~repro.cluster.failover.CircuitBreaker`).  A replica that
   fails mid-probe feeds its breaker and the next replica is tried; when
   a whole sweep fails the leg retries under the router's
   :class:`~repro.cluster.failover.RetryPolicy` (exponential backoff,
   deterministic jitter) before declaring the shard unavailable.
   Breakers replace the old permanent-death failover: a crashed replica
   is skipped without contact while its breaker is OPEN, but once the
   reset timeout elapses a single half-open trial probe decides whether
   it rejoins rotation — so flapping replicas come back on their own.
   Legs run serially by default or fanned out on the thread backend of
   :mod:`repro.mapreduce.executors`.
4. **Gather** — per-shard hit lists are concatenated and sorted.  No
   dedup pass is needed: the shard slices' claim rule (see
   :mod:`repro.cluster.node`) assigns every (query, candidate) pair to
   exactly one shard, the distributed form of the paper's Theorem 1, so
   the merge is exact by construction.  :meth:`ClusterRouter.search`
   demands every leg succeed; :meth:`ClusterRouter.search_partial` is
   the opt-in degraded mode that returns whatever the live shards
   produced, flagged ``complete=False`` with the missing shards and
   fragments named — never silently partial.

Requests may carry a **deadline** (seconds of budget); a request that
exceeds it fails with a typed
:class:`~repro.errors.DeadlineExceededError` instead of hanging on a
slow cluster.  Failover and recovery emit ``phase="recovery"`` spans
(``failover`` / ``breaker-close``) alongside the existing counters, so a
trace shows *how* a degraded request was answered.

The router also keeps per-fragment *heat* counters (how many probes
touched each fragment).  :meth:`rebalance` turns observed heat into
placement: while the hottest shard exceeds ``skew_threshold`` times the
mean, its hottest fragment migrates to the lightest shard — postings and
record metadata ship peer-to-peer via
:meth:`~repro.cluster.node.ShardSlice.extract_fragment` — and the plan is
updated in place.  Search results are bit-identical before and after a
migration (McCauley & Silvestri's adaptive-load argument, realised on the
serving path).

Every hop emits ``phase="cluster"`` spans (``cluster-search`` →
``route``/``shard-probe``/``merge``), with the slices' own
``phase="service"`` spans nested under each ``shard-probe``, so
``repro trace`` renders the full cross-shard request tree.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.loadbalance import LoadBalanceReport, summarize_loads
from repro.core.config import FilterConfig
from repro.core.ordering import GlobalOrder
from repro.core.partitioning import VerticalPartitioner
from repro.errors import (
    ClusterError,
    ClusterOverloadError,
    ConfigError,
    DataError,
    DeadlineExceededError,
    ShardDownError,
)
from repro.mapreduce.counters import Counters
from repro.mapreduce.executors import ExecutorKind, create_executor
from repro.mapreduce.shuffle import stable_hash
from repro.observability.histogram import LatencyHistogram
from repro.observability.tracer import NOOP_TRACER, Tracer
from repro.service.index import EncodedQuery, SearchHit
from repro.service.vocab import TokenVocab
from repro.similarity.functions import SimilarityFunction
from repro.similarity.thresholds import prefix_length

from repro.cluster.failover import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    HedgeConfig,
    RetryPolicy,
)
from repro.cluster.node import IngestNode, ShardNode
from repro.cluster.plan import ShardPlan

ROUTE_GROUP = "cluster.route"


@dataclass(frozen=True)
class PartialSearchResult:
    """What a degraded (:meth:`ClusterRouter.search_partial`) gather found.

    ``complete=True`` means every targeted shard answered and ``hits``
    equals what :meth:`ClusterRouter.search` would have returned.
    Otherwise ``hits`` covers only the shards that answered, and the
    missing coverage is named explicitly — a caller can re-probe just
    ``missing_fragments`` later, and can never mistake a partial answer
    for a full one.
    """

    hits: Tuple[SearchHit, ...]
    complete: bool
    missing_shards: Tuple[int, ...] = ()
    missing_fragments: Tuple[int, ...] = ()


@dataclass(frozen=True)
class Migration:
    """One rebalance move: fragment ``fragment`` went ``src`` → ``dst``."""

    fragment: int
    src: int
    dst: int
    heat: int
    """Observed probe count that made the fragment migrate."""


class ClusterRouter:
    """Route exact similarity probes across a sharded, replicated cluster."""

    def __init__(
        self,
        order: GlobalOrder,
        partitioner: VerticalPartitioner,
        plan: ShardPlan,
        groups: Sequence[Sequence[ShardNode]],
        filters: Optional[FilterConfig] = None,
        max_in_flight: int = 64,
        queue_timeout: float = 0.25,
        tracer: Optional[Tracer] = None,
        executor: Union[ExecutorKind, str, None] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerConfig] = None,
        hedge: Optional[HedgeConfig] = None,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        """``groups[s]`` is shard ``s``'s replica list (all non-empty, same
        length = the replication factor).  ``executor`` fans scatter legs
        out (``thread``); the default probes shards serially in the calling
        thread.  ``max_in_flight`` bounds concurrently admitted searches;
        a request that cannot be admitted within ``queue_timeout`` seconds
        is shed with :class:`ClusterOverloadError`.  ``retry`` is the
        per-leg retry budget, ``breaker`` shapes the per-replica circuit
        breakers; ``hedge`` (default off) enables deadline-aware hedged
        scatter on the batched probe path — see
        :class:`~repro.cluster.failover.HedgeConfig`; ``clock``/``sleep``
        are injectable so breaker timeouts, deadlines and backoff waits
        are testable (and chaos-replayable) without real time passing.
        Latency histograms record on the same ``clock`` the deadlines
        use — one clock per router, so injected (chaos) latency shows up
        in the percentiles that deadline decisions are made against."""
        if len(groups) != plan.n_shards:
            raise ConfigError(
                f"plan expects {plan.n_shards} shards, got {len(groups)} groups"
            )
        if any(not group for group in groups):
            raise ConfigError("every shard needs at least one replica")
        if max_in_flight < 1:
            raise ConfigError("max_in_flight must be >= 1")
        if executor is not None and ExecutorKind(executor) is ExecutorKind.PROCESS:
            raise ConfigError(
                "scatter legs share in-memory shard state; use the serial or "
                "thread backend"
            )
        self.order = order
        self.vocab = TokenVocab(order)
        self.partitioner = partitioner
        self.plan = plan
        self.filters = filters if filters is not None else FilterConfig()
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.metrics = Counters()
        self.latency = LatencyHistogram()
        #: per-scatter-leg latencies (router clock) — the rolling p95 the
        #: hedging decision reads.
        self.leg_latency = LatencyHistogram()
        self._groups: List[List[ShardNode]] = [list(g) for g in groups]
        self.retry = retry if retry is not None else RetryPolicy()
        self.hedge = hedge
        self._hedge_pool: Optional[ThreadPoolExecutor] = None
        self._breaker_config = breaker if breaker is not None else BreakerConfig()
        self._clock = clock
        self._sleep = sleep
        self._breakers: List[List[CircuitBreaker]] = [
            [self._breaker_config.build(clock) for _ in group]
            for group in self._groups
        ]
        self._executor = executor
        self._admission = threading.BoundedSemaphore(max_in_flight)
        self.queue_timeout = queue_timeout
        self._lock = threading.Lock()
        #: fragment id → probes that touched it (the rebalancer's heat map).
        self._heat: Dict[int, int] = {}
        #: per-shard round-robin cursors for replica selection.
        self._cursor = [0] * plan.n_shards
        #: optional streaming write tier (see :meth:`attach_ingest`).
        self._ingest: Optional[IngestNode] = None
        self._base_rids: frozenset = frozenset()
        #: local component of :attr:`index_epoch` (bumped per write batch).
        self._epoch = 0
        #: the self-healing control plane, once one attaches (see
        #: :class:`repro.cluster.health.ControlPlane`); ``None`` means the
        #: cluster is fail-over-only, exactly as before.
        self.control = None

    # -- introspection -------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.plan.n_shards

    @property
    def replication(self) -> int:
        return len(self._groups[0])

    def replica(self, shard: int, replica: int) -> ShardNode:
        """Direct handle on one replica (failure injection, inspection)."""
        return self._groups[shard][replica]

    def health_check(self) -> List[List[bool]]:
        """Ping every replica; ``result[shard][replica]`` is liveness."""
        return [[node.ping() for node in group] for group in self._groups]

    def breaker(self, shard: int, replica: int) -> CircuitBreaker:
        """Direct handle on one replica's circuit breaker."""
        return self._breakers[shard][replica]

    def breaker_states(self) -> List[List[str]]:
        """``result[shard][replica]`` is the breaker state (string form)."""
        return [
            [breaker.state.value for breaker in group]
            for group in self._breakers
        ]

    # -- verified readmission -------------------------------------------
    def _healthy_peer(self, shard: int, exclude_replica: int
                      ) -> Optional[ShardNode]:
        """A serving replica of ``shard`` other than ``exclude_replica``."""
        for rep, node in enumerate(self._groups[shard]):
            if rep != exclude_replica and node.ping():
                return node
        return None

    def verify_replica(self, shard: int, replica: int,
                       probes: int = 4) -> Dict[str, object]:
        """Compare a replica's content against a healthy peer, bit for bit.

        Two checks, both exact: (1) per-fragment content digests (skipped
        when the replicas share one slice object — nothing to diverge);
        (2) ``probes`` seeded probe queries per theta in (0.5, 0.8) under
        jaccard, answered by both slices and compared as full hit lists.
        Returns ``{"ok": bool, "detail": str}``; with no healthy peer the
        check degrades to a self-probe smoke test and says so in the
        detail — a replication=1 cluster can still restore manually.
        """
        node = self._groups[shard][replica]
        peer = self._healthy_peer(shard, replica)
        if peer is None:
            try:
                rids = sorted(node.slice.rids())
                if rids:
                    rid = rids[stable_hash(("verify", shard, replica))
                               % len(rids)]
                    query = EncodedQuery(tuple(node.slice._ranks[rid]), 0)
                    node.slice.probe_encoded(
                        query, 0.5, SimilarityFunction.JACCARD, self.filters
                    )
            except Exception as exc:  # pragma: no cover - defensive
                return {"ok": False, "detail": f"self-check failed: {exc}"}
            return {"ok": True, "detail": "no healthy peer; self-check only"}
        if peer.slice is not node.slice:
            mine = node.slice.content_digests()
            theirs = peer.slice.content_digests()
            if mine != theirs:
                bad = sorted(
                    v for v in set(mine) | set(theirs)
                    if mine.get(v) != theirs.get(v)
                )
                return {
                    "ok": False,
                    "detail": f"fragment digests diverge: {bad}",
                }
        rids = sorted(peer.slice.rids())
        for i in range(probes):
            if not rids:
                break
            rid = rids[stable_hash(("verify", shard, replica, i)) % len(rids)]
            query = EncodedQuery(tuple(peer.slice._ranks[rid]), 0)
            for theta in (0.5, 0.8):
                expected = peer.slice.probe_encoded(
                    query, theta, SimilarityFunction.JACCARD, self.filters
                )
                got = node.slice.probe_encoded(
                    query, theta, SimilarityFunction.JACCARD, self.filters
                )
                if got != expected:
                    return {
                        "ok": False,
                        "detail": (
                            f"probe rid={rid} theta={theta} diverges "
                            f"({len(got)} vs {len(expected)} hits)"
                        ),
                    }
        return {"ok": True, "detail": f"digests + {probes} probes match"}

    def readmit_replica(self, shard: int, replica: int,
                        probes: int = 4) -> Dict[str, object]:
        """Unfence a replica iff verification passes; close its breaker.

        The only door back into rotation: on a verification failure the
        replica is re-fenced and a :class:`ClusterError` raised, so a
        divergent rebuild can never serve.  On success the breaker is
        force-closed (the verification *is* the trial probe) and a
        ``phase="recovery"`` span (``action="readmit"``) is emitted.
        """
        node = self._groups[shard][replica]
        was_fenced = node.fenced
        node.unfence()
        verdict = self.verify_replica(shard, replica, probes=probes)
        if not verdict["ok"]:
            node.fence()
            raise ClusterError(
                f"readmission refused for {node.name}: {verdict['detail']}"
            )
        self._breakers[shard][replica].reset()
        self.metrics.increment(ROUTE_GROUP, "readmissions")
        self.tracer.add(
            f"readmit:{node.name}", "recovery",
            start=time.perf_counter(), duration=0.0,
            action="readmit", shard=shard, replica=replica,
            was_fenced=was_fenced, detail=str(verdict["detail"]),
        )
        return verdict

    def restore_replica(self, shard: int, replica: int,
                        probes: int = 4) -> Dict[str, object]:
        """Manual restore done right: revive *and* verifiably readmit.

        ``ShardNode.restore()`` alone flips the liveness flag but leaves
        the circuit breaker open, so the replica stays skipped until the
        breaker's cooldown — and nothing ever checks its content.  This
        path restores, then runs the same verified readmission as the
        automatic rebuild: verify against a healthy peer, close the
        breaker, emit the recovery span.
        """
        node = self._groups[shard][replica]
        node.restore()
        return self.readmit_replica(shard, replica, probes=probes)

    def health_summary(self) -> Dict[str, object]:
        """Per-replica health/breaker/fencing plus control-plane state.

        JSON-safe; the ``replicas`` matrix rows are shards, and each cell
        reports what the router *and* (when one is attached) the control
        plane believe about that replica.
        """
        plane = self.control
        states = plane.replica_states() if plane is not None else None
        replicas: List[List[Dict[str, object]]] = []
        for shard, group in enumerate(self._groups):
            row = []
            for rep, node in enumerate(group):
                cell: Dict[str, object] = {
                    "alive": node.alive,
                    "fenced": node.fenced,
                    "serving": node.ping(),
                    "breaker": self._breakers[shard][rep].state.value,
                }
                if states is not None:
                    cell["state"] = states[shard][rep]
                row.append(cell)
            replicas.append(row)
        summary: Dict[str, object] = {"replicas": replicas}
        if self._ingest is not None:
            summary["ingest"] = {
                "alive": self._ingest.alive,
                "fenced": self._ingest.fenced,
                "serving": self._ingest.ping(),
            }
        if plane is not None:
            summary.update(plane.summary())
        return summary

    def fragment_heat(self) -> Dict[int, int]:
        """Observed per-fragment probe counts since start (or last reset)."""
        with self._lock:
            return dict(self._heat)

    def shard_heat(self) -> List[int]:
        """Observed per-shard probe load under the current assignment."""
        heat = self.fragment_heat()
        totals = [0] * self.n_shards
        for fragment, count in heat.items():
            totals[self.plan.shard_of(fragment)] += count
        return totals

    def heat_report(self) -> LoadBalanceReport:
        """Skew summary of observed shard load (CV, max-over-mean)."""
        return summarize_loads(self.shard_heat())

    def reset_heat(self) -> None:
        with self._lock:
            self._heat.clear()

    def storage_stats(self) -> Dict[str, int]:
        """Cluster-wide columnar storage totals (summed over shards).

        Each shard contributes its first replica's slice (replicas share
        the slice object in this simulated cluster); ``posting_bytes`` /
        ``record_bytes`` are actual array-buffer bytes, see
        :meth:`repro.service.index.SegmentIndex.posting_stats`.
        """
        totals = {"postings": 0, "posting_bytes": 0, "record_bytes": 0}
        for group in self._groups:
            stats = group[0].slice.posting_stats()
            for key in totals:
                totals[key] += stats[key]
        return totals

    # -- the streaming write tier ---------------------------------------
    @property
    def ingest(self) -> Optional[IngestNode]:
        return self._ingest

    def attach_ingest(self, streaming) -> IngestNode:
        """Grow a write tier: a :class:`IngestNode` over ``streaming``.

        The streaming index must share this router's order and partitioner
        (build it with :meth:`repro.ingest.streaming.StreamingIndex.attach`)
        so queries encode identically everywhere.  From here on
        :meth:`apply_batch` routes writes into it and every search gains
        one extra scatter leg over the freshly ingested records — results
        stay exact because ingested rids are disjoint from the shards'.
        """
        if self._ingest is not None:
            raise ClusterError("an ingest tier is already attached")
        if streaming.order is not self.order:
            raise ClusterError(
                "the ingest tier must share the router's global order "
                "(use StreamingIndex.attach)"
            )
        self._base_rids = frozenset(self.rids())
        self._ingest = IngestNode(streaming)
        return self._ingest

    def apply_batch(self, new_records) -> int:
        """Route a write batch into the attached streaming tier.

        Rids already served by the base shards are rejected with
        :class:`DataError` before anything is logged — the disjointness
        the dedup-free gather depends on.
        """
        if self._ingest is None:
            raise ClusterError(
                "no ingest tier attached; call attach_ingest first"
            )
        batch = list(new_records)
        for record in batch:
            if record.rid in self._base_rids:
                raise DataError(
                    f"record id {record.rid} already indexed by the cluster"
                )
        added = self._ingest.streaming.apply_batch(batch)
        self._epoch += 1
        self.metrics.increment(ROUTE_GROUP, "ingested_records", added)
        return added

    @property
    def index_epoch(self) -> int:
        """A counter that changes whenever served content may have:
        bumped per :meth:`apply_batch` and per ingest generation swap
        (flush/compaction manifest commits, which can also happen
        out-of-band through the streaming index).  Result caches above
        the router — the gateway's coalescing LRU — tag entries with
        this epoch so a post-ingest probe never serves a stale result.
        """
        epoch = self._epoch
        if self._ingest is not None:
            epoch += self._ingest.streaming.manifest_version
        return epoch

    def latency_info(self) -> Dict[str, Dict]:
        """Request- and scatter-leg latency percentiles.

        Both histograms record on the router's injectable clock — the
        same one the deadline checks and breakers read — so latency a
        chaos run injects through that clock is visible here, and the
        hedge timer's rolling leg p95 is auditable.
        """
        return {
            "latency": self.latency.snapshot(),
            "leg_latency": self.leg_latency.snapshot(),
        }

    def status(self) -> Dict:
        """One JSON-safe snapshot: plan, health, heat, balance, storage."""
        report = self.heat_report()
        return {
            "shards": self.n_shards,
            "replication": self.replication,
            "fragments": self.plan.n_fragments,
            "assignment": {str(f): s for f, s in
                           sorted(self.plan.assignment.items())},
            "planned_loads": self.plan.shard_loads(),
            "observed_heat": self.shard_heat(),
            "heat_cv": round(report.cv, 4),
            "heat_max_over_mean": round(report.max_over_mean, 4),
            "health": self.health_check(),
            "breakers": self.breaker_states(),
            "self_heal": self.health_summary(),
            "route": self.metrics.group(ROUTE_GROUP),
            "storage": self.storage_stats(),
            "ingest": (
                None if self._ingest is None
                else {"alive": self._ingest.ping(),
                      **self._ingest.streaming.status()}
            ),
        }

    # -- query planning ------------------------------------------------
    def encode_query(self, tokens: Iterable[str]) -> EncodedQuery:
        """Canonicalize probe tokens exactly like the single-node index.

        Both delegate to the shared :class:`TokenVocab` over the same
        :class:`GlobalOrder`, so router and slices agree on the interning
        by construction.
        """
        ids, unknown = self.vocab.encode_known(tokens)
        return EncodedQuery(tuple(ids), unknown)

    def target_fragments(
        self, query: EncodedQuery, theta: float, func: SimilarityFunction
    ) -> Tuple[int, ...]:
        """Fragments the probe prefix touches — the scatter set's support.

        Only these fragments can produce a prefix collision, so shards
        owning none of them are provably unable to contribute a candidate
        and are never contacted.
        """
        if not query.ranks:
            return ()
        limit = min(prefix_length(func, theta, query.size), len(query.ranks))
        prefix = query.ranks[:limit]
        return tuple(
            v for v, _start, _end in self.partitioner.split_bounds(prefix)
        )

    def _target_shards(
        self, fragments: Sequence[int]
    ) -> Dict[int, List[int]]:
        """Group target fragments by owning shard (ascending shard id)."""
        targets: Dict[int, List[int]] = {}
        for fragment in fragments:
            targets.setdefault(self.plan.shard_of(fragment), []).append(fragment)
        return dict(sorted(targets.items()))

    # -- serving -------------------------------------------------------
    def search(
        self,
        tokens: Iterable[str],
        theta: float,
        k: Optional[int] = None,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        exclude: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> List[SearchHit]:
        """Exact cluster-wide search; same contract as
        :meth:`repro.service.service.SimilarityService.search`.

        ``deadline`` (seconds of budget for the whole request, measured on
        the router's clock) turns a slow request into a typed
        :class:`DeadlineExceededError` instead of an unbounded wait.  Any
        unreachable shard fails the request (:class:`ClusterError`) — use
        :meth:`search_partial` to accept degraded answers instead."""
        result = self._search(
            tokens, theta, k, func, exclude, deadline, allow_partial=False
        )
        return list(result.hits)

    def search_partial(
        self,
        tokens: Iterable[str],
        theta: float,
        k: Optional[int] = None,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        exclude: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> PartialSearchResult:
        """Degraded-mode search: answer with whatever shards are live.

        A shard whose every replica is down (after breakers and the retry
        budget) does not fail the request; its absence is reported on the
        returned :class:`PartialSearchResult` (``complete=False`` plus the
        missing shard and fragment ids).  Admission shedding and deadline
        overruns still raise — degraded means *partial coverage*, never
        silent failure."""
        return self._search(
            tokens, theta, k, func, exclude, deadline, allow_partial=True
        )

    def _search(
        self,
        tokens: Iterable[str],
        theta: float,
        k: Optional[int],
        func: SimilarityFunction,
        exclude: Optional[int],
        deadline: Optional[float],
        allow_partial: bool,
    ) -> PartialSearchResult:
        func = SimilarityFunction(func)
        # One clock for everything: deadlines, breakers and the latency
        # histogram all read ``self._clock``, so injected (chaos) latency
        # is visible in ``latency_info()`` — and shed or deadline-exceeded
        # requests are recorded too, not just successes.
        started = self._clock()
        deadline_at = None if deadline is None else started + deadline
        try:
            if not self._admission.acquire(timeout=self.queue_timeout):
                self.metrics.increment(ROUTE_GROUP, "shed")
                raise ClusterOverloadError(
                    f"cluster at max in-flight capacity; request shed after "
                    f"{self.queue_timeout:.3f}s in queue"
                )
            try:
                self._check_deadline(deadline_at)
                query = self.encode_query(tokens)
                with self.tracer.span(
                    "cluster-search", phase="cluster", theta=theta,
                    func=func.value, query_size=query.size,
                ) as span:
                    with self.tracer.span("route",
                                          phase="cluster") as route_span:
                        fragments = self.target_fragments(query, theta, func)
                        targets = self._target_shards(fragments)
                        route_span.attrs["fragments"] = len(fragments)
                        route_span.attrs["shards"] = sorted(targets)
                    self.metrics.increment(ROUTE_GROUP, "searches")
                    self.metrics.increment(ROUTE_GROUP, "shards_probed",
                                           len(targets))
                    partials = self._scatter(
                        targets, query, theta, func, deadline_at,
                        allow_partial
                    )
                    ingest_leg = self._ingest_leg(query, theta, func,
                                                  allow_partial)
                    if ingest_leg is not None:
                        partials.append(ingest_leg)
                    # Heat is charged only now — after the scatter came
                    # back — and only for shards that answered, so shed,
                    # deadline-exceeded and all-replicas-down requests
                    # never skew the rebalancer toward fragments that
                    # served nothing.
                    self._charge_heat(targets, partials)
                    missing = [s for s, leg_hits in partials
                               if leg_hits is None]
                    with self.tracer.span("merge",
                                          phase="cluster") as merge_span:
                        hits = _gather(
                            [leg_hits for _s, leg_hits in partials
                             if leg_hits is not None]
                        )
                        merge_span.attrs["hits"] = len(hits)
                    span.attrs["hits"] = len(hits)
                    if missing:
                        span.attrs["missing_shards"] = missing
            finally:
                self._admission.release()
        finally:
            self.latency.record(self._clock() - started)
        if exclude is not None:
            hits = [hit for hit in hits if hit.rid != exclude]
        if k is not None:
            hits = hits[: max(k, 0)]
        if missing:
            self.metrics.increment(ROUTE_GROUP, "partial_results")
        missing_fragments = sorted(
            fragment for shard in missing for fragment in targets.get(shard, ())
        )
        return PartialSearchResult(
            hits=tuple(hits),
            complete=not missing,
            missing_shards=tuple(missing),
            missing_fragments=tuple(missing_fragments),
        )

    def _ingest_leg(
        self,
        query: EncodedQuery,
        theta: float,
        func: SimilarityFunction,
        allow_partial: bool,
    ) -> Optional[Tuple[int, Optional[List[SearchHit]]]]:
        """The write tier's scatter leg, as a ``(shard=-1, hits)`` pair.

        ``None`` when no tier is attached or it holds no records (nothing
        to contribute, not a degradation).  A down ingest node behaves
        like a down shard: fail the request, or mark shard ``-1`` missing
        in partial mode.
        """
        node = self._ingest
        if node is None or not len(node.streaming):
            return None
        with self.tracer.span(
            "ingest-probe", phase="cluster",
            records=len(node.streaming),
        ) as span:
            try:
                hits = node.probe(query, theta, func, self.filters,
                                  self.tracer)
            except ShardDownError as exc:
                span.attrs["status"] = "unavailable"
                self.metrics.increment(ROUTE_GROUP, "ingest_unavailable")
                if not allow_partial:
                    raise ClusterError(f"ingest tier down: {exc}") from exc
                return (IngestNode.shard_id, None)
            span.attrs["hits"] = len(hits)
        return (IngestNode.shard_id, hits)

    def _check_deadline(self, deadline_at: Optional[float]) -> None:
        if deadline_at is not None and self._clock() >= deadline_at:
            self.metrics.increment(ROUTE_GROUP, "deadline_exceeded")
            raise DeadlineExceededError(
                "request deadline exceeded before the cluster could answer"
            )

    def _charge_heat(
        self,
        targets: Dict[int, List[int]],
        partials: List[Tuple[int, Optional[List[SearchHit]]]],
    ) -> None:
        """Charge fragment heat for the shards whose leg answered."""
        answered = {s for s, leg_hits in partials if leg_hits is not None}
        if not answered:
            return
        with self._lock:
            for shard, shard_fragments in targets.items():
                if shard in answered:
                    for fragment in shard_fragments:
                        self._heat[fragment] = self._heat.get(fragment, 0) + 1

    def search_rid(
        self,
        rid: int,
        theta: float,
        k: Optional[int] = None,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
    ) -> List[SearchHit]:
        """Partners of an indexed record (itself excluded)."""
        return self.search(self.tokens_of(rid), theta, k=k, func=func,
                           exclude=rid)

    def search_batch(
        self,
        queries: Sequence[Iterable[str]],
        theta: float,
        k: Optional[int] = None,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        exclude: Optional[Sequence[Optional[int]]] = None,
        deadline: Optional[float] = None,
        hedge_delay: Optional[float] = None,
    ) -> List[List[SearchHit]]:
        """Batched exact search: dedupe, admit once, scatter per shard.

        The whole batch occupies one admission slot (a saturated cluster
        sheds it with a single typed :class:`ClusterOverloadError` instead
        of paying the queue timeout query by query), duplicate queries are
        computed once, and each target shard serves every query routed to
        it in one :meth:`~repro.cluster.node.ShardNode.probe_batch` call —
        the columnar fragment-grouped fast path, claim rule preserved.
        Results align with ``queries`` and are bit-identical to per-query
        :meth:`search` calls.

        ``exclude`` (parity with
        :meth:`~repro.service.service.SimilarityService.search_batch`) is
        a per-query sequence of record ids to drop, ``None`` entries
        skipping; ``deadline`` bounds the whole batch in seconds on the
        router clock.  With a :class:`~repro.cluster.failover.HedgeConfig`
        configured, slow shard legs are hedged onto a backup replica (the
        first answer wins; replicas serve the same slice, so the result
        is bit-identical either way).  ``hedge_delay`` overrides the
        rolling-p95 fire point for this batch — the gateway's adaptive
        per-tenant hedging rides this, and since hedging only picks
        *which replica answers*, any override keeps results bit-identical.
        """
        func = SimilarityFunction(func)
        if exclude is not None and len(exclude) != len(queries):
            raise ConfigError(
                f"exclude must align with queries: got {len(exclude)} "
                f"entries for {len(queries)} queries"
            )
        started = self._clock()
        deadline_at = None if deadline is None else started + deadline
        try:
            if not self._admission.acquire(timeout=self.queue_timeout):
                self.metrics.increment(ROUTE_GROUP, "shed")
                raise ClusterOverloadError(
                    f"cluster at max in-flight capacity; batch shed after "
                    f"{self.queue_timeout:.3f}s in queue"
                )
            try:
                self._check_deadline(deadline_at)
                merged = self._batch_scatter(queries, theta, func,
                                             deadline_at, hedge_delay)
            finally:
                self._admission.release()
        finally:
            self.latency.record(self._clock() - started)
        self._check_deadline(deadline_at)
        results: List[List[SearchHit]] = []
        for i, hits in enumerate(merged):
            drop = exclude[i] if exclude is not None else None
            if drop is not None:
                hits = [hit for hit in hits if hit.rid != drop]
            else:
                hits = list(hits)
            if k is not None:
                hits = hits[: max(k, 0)]
            results.append(hits)
        return results

    def _batch_scatter(
        self,
        queries: Sequence[Iterable[str]],
        theta: float,
        func: SimilarityFunction,
        deadline_at: Optional[float],
        hedge_delay: Optional[float] = None,
    ) -> List[List[SearchHit]]:
        """Dedupe, route, scatter shard-batched, gather — one merged hit
        list per input query (order preserved, excludes/k not yet applied)."""
        encoded = [self.encode_query(tokens) for tokens in queries]
        # Dedup key must include n_unknown: unknown tokens change |q| and
        # with it prefix lengths and similarity denominators.
        distinct: Dict[Tuple[Tuple[int, ...], int], int] = {}
        slots: List[int] = []
        uniques: List[EncodedQuery] = []
        for query in encoded:
            key = (query.ranks, query.n_unknown)
            di = distinct.get(key)
            if di is None:
                di = distinct[key] = len(uniques)
                uniques.append(query)
            slots.append(di)
        self.metrics.increment(ROUTE_GROUP, "searches", len(queries))
        self.metrics.increment(ROUTE_GROUP, "batches")
        self.metrics.increment(ROUTE_GROUP, "batch_deduped",
                               len(queries) - len(uniques))
        with self.tracer.span(
            "cluster-batch", phase="cluster", theta=theta, func=func.value,
            queries=len(queries), distinct=len(uniques),
        ) as span:
            with self.tracer.span("route", phase="cluster") as route_span:
                per_query_targets = [
                    self._target_shards(
                        self.target_fragments(query, theta, func)
                    )
                    for query in uniques
                ]
                shard_queries: Dict[int, List[int]] = {}
                for di, targets in enumerate(per_query_targets):
                    for shard in targets:
                        shard_queries.setdefault(shard, []).append(di)
                route_span.attrs["shards"] = sorted(shard_queries)
            self.metrics.increment(
                ROUTE_GROUP, "shards_probed",
                sum(len(t) for t in per_query_targets),
            )
            legs_by_query: List[List[List[SearchHit]]] = [
                [] for _ in uniques
            ]
            for shard in sorted(shard_queries):
                dis = shard_queries[shard]
                shard_hits = self._probe_shard_batch(
                    shard, [uniques[di] for di in dis], theta, func,
                    self.tracer, deadline_at, hedge_delay,
                )
                for di, hits in zip(dis, shard_hits):
                    legs_by_query[di].append(hits)
            if self._ingest is not None and len(self._ingest.streaming):
                for di, query in enumerate(uniques):
                    leg = self._ingest_leg(query, theta, func,
                                           allow_partial=False)
                    if leg is not None:
                        legs_by_query[di].append(leg[1])
            # Every targeted shard answered (failures raised above), so
            # each distinct query charges its fragments exactly once.
            with self._lock:
                for targets in per_query_targets:
                    for shard_fragments in targets.values():
                        for fragment in shard_fragments:
                            self._heat[fragment] = (
                                self._heat.get(fragment, 0) + 1
                            )
            with self.tracer.span("merge", phase="cluster") as merge_span:
                merged = [_gather(legs) for legs in legs_by_query]
                merge_span.attrs["hits"] = sum(len(m) for m in merged)
            span.attrs["hits"] = sum(len(m) for m in merged)
        return [merged[di] for di in slots]

    def rids(self) -> List[int]:
        """All record ids indexed anywhere in the cluster, ascending."""
        seen: set = set()
        for group in self._groups:
            for node in group:
                seen.update(node.slice.rids())
                break  # replicas of one shard hold the same records
        if self._ingest is not None:
            seen.update(self._ingest.streaming.rids())
        return sorted(seen)

    def tokens_of(self, rid: int) -> Tuple[str, ...]:
        """Decode an indexed record's tokens from whichever shard holds it."""
        for group in self._groups:
            for node in group:
                if node.ping() and rid in node:
                    return node.tokens_of(rid)
        if (self._ingest is not None and self._ingest.ping()
                and rid in self._ingest):
            return self._ingest.tokens_of(rid)
        raise DataError(f"no record with id {rid} in the cluster")

    # -- scatter internals ---------------------------------------------
    def _scatter(
        self,
        targets: Dict[int, List[int]],
        query: EncodedQuery,
        theta: float,
        func: SimilarityFunction,
        deadline_at: Optional[float],
        allow_partial: bool,
    ) -> List[Tuple[int, Optional[List[SearchHit]]]]:
        """Per-shard ``(shard, hits)`` legs; ``hits is None`` marks a shard
        that stayed unavailable in partial mode."""
        shards = list(targets)
        if not shards:
            return []
        if self._executor is None or len(shards) == 1:
            return [
                (shard,
                 self._leg(shard, query, theta, func, self.tracer,
                           deadline_at, allow_partial))
                for shard in shards
            ]
        executor = create_executor(self._executor)
        traced = self.tracer.enabled

        def leg(shard: int):
            tracer = Tracer() if traced else NOOP_TRACER
            hits = self._leg(shard, query, theta, func, tracer,
                             deadline_at, allow_partial)
            return hits, tracer.spans()

        outputs = executor.run_tasks(leg, shards)
        partials: List[Tuple[int, Optional[List[SearchHit]]]] = []
        # Adopted in shard-id order, like the runtime's task-index-order
        # commit, so traces are deterministic across backends.
        for shard, (hits, spans) in zip(shards, outputs):
            partials.append((shard, hits))
            self.tracer.adopt(spans)
        return partials

    def _leg(
        self,
        shard: int,
        query: EncodedQuery,
        theta: float,
        func: SimilarityFunction,
        tracer: Tracer,
        deadline_at: Optional[float],
        allow_partial: bool,
    ) -> Optional[List[SearchHit]]:
        """One scatter leg; in partial mode an unavailable shard yields
        ``None`` instead of failing the whole request.  Deadline overruns
        always propagate — a partial answer must still be a *timely* one."""
        try:
            return self._probe_shard(shard, query, theta, func, tracer,
                                     deadline_at)
        except DeadlineExceededError:
            raise
        except ClusterError:
            if not allow_partial:
                raise
            return None

    def _probe_shard(
        self,
        shard: int,
        query: EncodedQuery,
        theta: float,
        func: SimilarityFunction,
        tracer: Tracer,
        deadline_at: Optional[float] = None,
    ) -> List[SearchHit]:
        """Probe one available replica of ``shard``, failing over as needed.

        Replica order is round-robin from a per-shard cursor; a replica
        whose breaker is OPEN is skipped without contact.  A failed ping or
        mid-probe :class:`ShardDownError` feeds the replica's breaker and
        moves on to the next replica.  When one full sweep finds no
        answer, the sweep retries under :attr:`retry` (deterministic
        backoff) before the shard is declared unavailable — one
        ``unavailable`` count and one :class:`ClusterError` per request,
        however many attempts were burned."""
        group = self._groups[shard]
        breakers = self._breakers[shard]
        with self._lock:
            start = self._cursor[shard] % len(group)
            self._cursor[shard] += 1
        last_error: Optional[ShardDownError] = None
        for sweep in range(self.retry.max_retries + 1):
            if sweep:
                self._check_deadline(deadline_at)
                self.metrics.increment(ROUTE_GROUP, "retries")
                self._sleep(self.retry.backoff((shard, query.ranks), sweep - 1))
            for offset in range(len(group)):
                index = (start + offset) % len(group)
                node = group[index]
                breaker = breakers[index]
                self._check_deadline(deadline_at)
                if not breaker.allow():
                    # OPEN (or a busy half-open trial): known bad, skip
                    # without paying for a contact.
                    self.metrics.increment(ROUTE_GROUP, "breaker_skipped")
                    continue
                if not node.ping():
                    self._note_failure(breaker, shard, node, tracer)
                    continue
                with tracer.span(
                    "shard-probe", phase="cluster", shard=shard,
                    replica=node.replica_id,
                ) as span:
                    try:
                        leg_started = self._clock()
                        try:
                            hits = node.probe(query, theta, func,
                                              self.filters, tracer)
                        finally:
                            self.leg_latency.record(
                                self._clock() - leg_started)
                    except ShardDownError as exc:
                        # Failed mid-probe (e.g. injected between ping and
                        # probe): feed the breaker, try the next replica.
                        span.attrs["status"] = "failed-over"
                        self.metrics.increment(ROUTE_GROUP, "failovers")
                        if tracer.enabled:
                            tracer.add(
                                f"failover:{node.name}", "recovery",
                                start=time.perf_counter(), duration=0.0,
                                action="failover", shard=shard,
                                replica=node.replica_id,
                            )
                        self._note_failure(breaker, shard, node, tracer)
                        last_error = exc
                        continue
                    if breaker.record_success():
                        # A previously tripped replica answered its
                        # half-open trial: it rejoins rotation.
                        self.metrics.increment(ROUTE_GROUP, "breaker_closed")
                        if tracer.enabled:
                            tracer.add(
                                f"breaker-close:{node.name}", "recovery",
                                start=time.perf_counter(), duration=0.0,
                                action="breaker-close", shard=shard,
                                replica=node.replica_id,
                            )
                    span.attrs["hits"] = len(hits)
                    return hits
        self.metrics.increment(ROUTE_GROUP, "unavailable")
        raise ClusterError(
            f"shard {shard}: all {len(group)} replicas down"
            + (f" ({last_error})" if last_error else "")
        )

    def _probe_shard_batch(
        self,
        shard: int,
        queries: Sequence[EncodedQuery],
        theta: float,
        func: SimilarityFunction,
        tracer: Tracer,
        deadline_at: Optional[float] = None,
        hedge_delay: Optional[float] = None,
    ) -> List[List[SearchHit]]:
        """Serve all of ``queries`` on one available replica of ``shard``.

        Same failover discipline as :meth:`_probe_shard` — round-robin
        cursor, breaker-gated replicas, retry sweeps with deterministic
        backoff — but the whole query group rides one
        :meth:`~repro.cluster.node.ShardNode.probe_batch` call.  With
        :attr:`hedge` configured and a second healthy replica available,
        a leg still unanswered after the rolling leg-latency p95 races a
        backup probe on that replica and the first answer wins; replicas
        serve the same slice, so the winner's answer is bit-identical
        either way and the claim rule keeps the gather dedup-free.
        """
        group = self._groups[shard]
        breakers = self._breakers[shard]
        with self._lock:
            start = self._cursor[shard] % len(group)
            self._cursor[shard] += 1
        traced = tracer.enabled

        def attempt(node: ShardNode):
            """One leg: probe ``node``, tracing into a leg-local tracer
            (attempts may race on threads) and feeding the leg histogram."""
            leg_tracer = Tracer() if traced else NOOP_TRACER
            leg_started = self._clock()
            try:
                with leg_tracer.span(
                    "shard-probe", phase="cluster", shard=shard,
                    replica=node.replica_id, queries=len(queries),
                ) as span:
                    try:
                        hits = node.probe_batch(queries, theta, func,
                                                self.filters, leg_tracer)
                    except ShardDownError as exc:
                        span.attrs["status"] = "failed-over"
                        return None, leg_tracer.spans(), exc
                    span.attrs["hits"] = sum(len(h) for h in hits)
                return hits, leg_tracer.spans(), None
            finally:
                self.leg_latency.record(self._clock() - leg_started)

        last_error: Optional[ShardDownError] = None
        for sweep in range(self.retry.max_retries + 1):
            if sweep:
                self._check_deadline(deadline_at)
                self.metrics.increment(ROUTE_GROUP, "retries")
                self._sleep(self.retry.backoff((shard, len(queries)),
                                               sweep - 1))
            for offset in range(len(group)):
                index = (start + offset) % len(group)
                node = group[index]
                breaker = breakers[index]
                self._check_deadline(deadline_at)
                if not breaker.allow():
                    self.metrics.increment(ROUTE_GROUP, "breaker_skipped")
                    continue
                if not node.ping():
                    self._note_failure(breaker, shard, node, tracer)
                    continue
                backup = self._hedge_backup(shard, index)
                if backup is not None:
                    outcomes = self._race_legs(attempt, node, backup,
                                               hedge_delay)
                else:
                    outcomes = [(node, *attempt(node))]
                result: Optional[List[List[SearchHit]]] = None
                for attempted, hits, spans, exc in outcomes:
                    tracer.adopt(spans)
                    attempted_breaker = breakers[group.index(attempted)]
                    if hits is None:
                        self.metrics.increment(ROUTE_GROUP, "failovers")
                        if traced:
                            tracer.add(
                                f"failover:{attempted.name}", "recovery",
                                start=time.perf_counter(), duration=0.0,
                                action="failover", shard=shard,
                                replica=attempted.replica_id,
                            )
                        self._note_failure(attempted_breaker, shard,
                                           attempted, tracer)
                        last_error = exc
                        continue
                    if attempted is not node:
                        self.metrics.increment(ROUTE_GROUP, "hedge_wins")
                        if traced:
                            tracer.add(
                                f"hedge-win:{attempted.name}", "recovery",
                                start=time.perf_counter(), duration=0.0,
                                action="hedge-win", shard=shard,
                                replica=attempted.replica_id,
                            )
                    if attempted_breaker.record_success():
                        self.metrics.increment(ROUTE_GROUP, "breaker_closed")
                        if traced:
                            tracer.add(
                                f"breaker-close:{attempted.name}", "recovery",
                                start=time.perf_counter(), duration=0.0,
                                action="breaker-close", shard=shard,
                                replica=attempted.replica_id,
                            )
                    result = hits
                if result is not None:
                    return result
        self.metrics.increment(ROUTE_GROUP, "unavailable")
        raise ClusterError(
            f"shard {shard}: all {len(group)} replicas down"
            + (f" ({last_error})" if last_error else "")
        )

    def _hedge_backup(self, shard: int, primary_index: int
                      ) -> Optional[ShardNode]:
        """The replica a hedged leg would race, or ``None`` (hedging off,
        no second replica, or none healthy).  Only CLOSED-breaker replicas
        qualify — a half-open trial slot must not be burned on a hedge."""
        if self.hedge is None:
            return None
        group = self._groups[shard]
        breakers = self._breakers[shard]
        for offset in range(1, len(group)):
            index = (primary_index + offset) % len(group)
            if (breakers[index].state is BreakerState.CLOSED
                    and group[index].ping()):
                return group[index]
        return None

    def _hedge_delay(self) -> float:
        """Seconds to wait on the primary leg before firing the backup:
        the rolling leg p95 clamped to the config's bounds (min_delay
        until enough legs are on record)."""
        hedge = self.hedge
        if len(self.leg_latency) < hedge.min_observations:
            return hedge.min_delay
        return min(hedge.max_delay,
                   max(hedge.min_delay, self.leg_latency.percentile(0.95)))

    def _race_legs(self, attempt, primary: ShardNode, backup: ShardNode,
                   delay: Optional[float] = None):
        """Run ``attempt(primary)``; if it is still unanswered after the
        hedge delay (``delay`` overrides the rolling-p95 default), race
        ``attempt(backup)`` and take the first success.

        Returns ``(node, hits, spans, error)`` outcomes in arrival order,
        stopping at the first success — a still-running loser is
        abandoned (its result is discarded; both replicas would have
        produced identical hits).  Failed outcomes are all reported so
        the caller can feed every failure to its breaker.
        """
        pool = self._hedge_pool
        if pool is None:
            pool = self._hedge_pool = ThreadPoolExecutor(max_workers=4)
        f1 = pool.submit(attempt, primary)
        done, _pending = wait(
            [f1], timeout=self._hedge_delay() if delay is None else delay
        )
        if f1 in done:
            return [(primary, *f1.result())]
        self.metrics.increment(ROUTE_GROUP, "hedges")
        f2 = pool.submit(attempt, backup)
        owner = {f1: primary, f2: backup}
        pending = {f1, f2}
        outcomes = []
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            # When both land in one wake-up, prefer the primary — keeps
            # the common case (primary merely slow, not dead) stable.
            for future in sorted(done, key=lambda f: f is not f1):
                outcome = (owner[future], *future.result())
                outcomes.append(outcome)
                if outcome[1] is not None:
                    return outcomes
        return outcomes

    def _note_failure(
        self, breaker: CircuitBreaker, shard: int, node: ShardNode,
        tracer: Tracer,
    ) -> None:
        """Feed one replica failure to its breaker; count/trace a trip."""
        if breaker.record_failure():
            self.metrics.increment(ROUTE_GROUP, "breaker_opened")
            if tracer.enabled:
                tracer.add(
                    f"breaker-open:{node.name}", "fault",
                    start=time.perf_counter(), duration=0.0,
                    kind="breaker-open", shard=shard,
                    replica=node.replica_id,
                )

    # -- skew-aware rebalancing ----------------------------------------
    def rebalance(
        self, skew_threshold: float = 1.5, max_moves: int = 8
    ) -> List[Migration]:
        """Migrate hot fragments until observed shard load is balanced.

        While the hottest shard's observed probe load exceeds
        ``skew_threshold`` × the mean, its hottest fragment moves to the
        currently coldest shard — but only when the move strictly lowers
        the maximum (otherwise greedy migration would oscillate).  Returns
        the migrations performed; search results are identical before and
        after (the claim rule only depends on *which* shard owns a
        fragment, not on history).
        """
        if skew_threshold < 1.0:
            raise ConfigError("skew_threshold must be >= 1.0")
        moves: List[Migration] = []
        for _ in range(max_moves):
            heat = self.fragment_heat()
            loads = [0] * self.n_shards
            for fragment, count in heat.items():
                loads[self.plan.shard_of(fragment)] += count
            report = summarize_loads(loads)
            if report.mean_bytes == 0 or report.max_over_mean <= skew_threshold:
                break
            src = max(range(self.n_shards), key=lambda s: (loads[s], -s))
            dst = min(range(self.n_shards), key=lambda s: (loads[s], s))
            candidates = [
                (heat.get(f, 0), -f, f)
                for f in self.plan.fragments_of(src)
            ]
            move = None
            for fragment_heat, _neg, fragment in sorted(candidates,
                                                        reverse=True):
                # The move must strictly improve the makespan: the donor
                # sheds real load and the receiver stays below the old max.
                if (fragment_heat > 0
                        and loads[dst] + fragment_heat < loads[src]):
                    move = (fragment, fragment_heat)
                    break
            if move is None:
                break
            fragment, fragment_heat = move
            self._migrate(fragment, src, dst)
            moves.append(Migration(fragment, src, dst, fragment_heat))
            self.metrics.increment(ROUTE_GROUP, "migrations")
        return moves

    def _migrate(self, fragment: int, src: int, dst: int) -> None:
        """Ship one fragment's postings + record metadata between shards.

        Replicas of a shard may share one slice object (the in-memory
        cluster) or hold their own copies (restored snapshots); migration
        therefore applies to each *distinct* slice exactly once.
        """
        donor_slices = _distinct_slices(self._groups[src])
        target_slices = _distinct_slices(self._groups[dst])
        payload = donor_slices[0].extract_fragment(fragment)
        for slice_ in target_slices:
            slice_.install_fragment(payload)
        for slice_ in donor_slices:
            slice_.drop_fragment(fragment)
        self.plan.move(fragment, dst)


def _distinct_slices(group: Sequence[ShardNode]):
    """A shard group's unique slice objects (replicas may share one)."""
    seen: Dict[int, object] = {}
    for node in group:
        seen.setdefault(id(node.slice), node.slice)
    return list(seen.values())


def _gather(partials: List[List[SearchHit]]) -> List[SearchHit]:
    """Merge per-shard hit lists: concatenate and sort, no dedup needed.

    The claim rule makes shard results disjoint by record id, so the
    gather step is a plain sort by ``(-score, rid)`` — the same final
    order the single-node probe produces.
    """
    merged: List[SearchHit] = []
    for hits in partials:
        merged.extend(hits)
    merged.sort(key=lambda hit: (-hit.score, hit.rid))
    return merged
