"""The cluster layer: sharded, replicated serving over fragment placement.

FS-Join's pivot-delimited fragments double as a placement scheme: each
fragment's postings live on exactly one shard, probes scatter only to the
shards their prefix fragments map to, and per-shard candidate sets are
disjoint by the claim rule (the distributed form of the paper's Theorem 1),
so the gather step is an exact, dedup-free merge.

Components:

* :mod:`repro.cluster.plan` — greedy bin-packed fragment → shard placement
  with the skew metrics of :mod:`repro.analysis.loadbalance`;
* :mod:`repro.cluster.node` — :class:`ShardSlice` (a fragment-restricted
  :class:`~repro.service.index.SegmentIndex` with the claim rule) and
  :class:`ShardNode` (replica endpoint with health state);
* :mod:`repro.cluster.router` — scatter-gather routing, admission control
  with typed load-shedding, replica failover and skew-aware
  :meth:`~repro.cluster.router.ClusterRouter.rebalance`;
* :mod:`repro.cluster.build` — build/save/load of whole clusters
  (per-shard digest-checked snapshots + a JSON manifest);
* :mod:`repro.cluster.health` / :mod:`repro.cluster.repair` — the
  self-healing control plane: tick-driven failure detection,
  anti-entropy digest scrubbing, and automatic replica rebuild with
  verified readmission.

Example:
    >>> from repro.data import make_corpus
    >>> from repro.cluster import build_cluster
    >>> records = make_corpus("wiki", 100, seed=7)
    >>> router = build_cluster(records, n_shards=4, replication=2,
    ...                        n_vertical=8)
    >>> hits = router.search(records[0].tokens, theta=0.9)
    >>> hits[0].rid == records[0].rid  # the record itself, score 1.0
    True
"""

from repro.cluster.build import build_cluster, load_cluster, save_cluster
from repro.cluster.failover import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    HedgeConfig,
    RetryPolicy,
)
from repro.cluster.health import (
    ControlPlane,
    HealthConfig,
    HealthEvent,
    ReplicaState,
)
from repro.cluster.node import FragmentPayload, IngestNode, ShardNode, ShardSlice
from repro.cluster.plan import ShardPlan, plan_shards
from repro.cluster.repair import RepairManager
from repro.cluster.router import ClusterRouter, Migration, PartialSearchResult

__all__ = [
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "ClusterRouter",
    "ControlPlane",
    "FragmentPayload",
    "HealthConfig",
    "HealthEvent",
    "HedgeConfig",
    "IngestNode",
    "Migration",
    "PartialSearchResult",
    "RepairManager",
    "ReplicaState",
    "RetryPolicy",
    "ShardNode",
    "ShardPlan",
    "ShardSlice",
    "build_cluster",
    "load_cluster",
    "plan_shards",
    "save_cluster",
]
