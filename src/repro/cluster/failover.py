"""Failover primitives: retry budgets with backoff and circuit breakers.

Two small, composable pieces the :class:`~repro.cluster.router.ClusterRouter`
uses instead of its original permanent-death failover:

* :class:`RetryPolicy` — a per-request retry budget with exponential
  backoff and *deterministic* jitter: the jitter factor for attempt ``i``
  of request ``key`` is a pure function of ``(seed, key, i)`` through
  :func:`~repro.mapreduce.shuffle.stable_hash`, so a replayed failure run
  waits exactly as long as the original did (the chaos harness depends on
  this for exact replays).

* :class:`CircuitBreaker` — the classic three-state machine, one per
  replica:

  ::

      CLOSED --(failure_threshold consecutive failures)--> OPEN
      OPEN   --(reset_timeout elapsed)-->                  HALF_OPEN
      HALF_OPEN --(probe succeeds)-->                      CLOSED
      HALF_OPEN --(probe fails)-->                         OPEN

  While OPEN the replica is skipped without being contacted (no timeout
  paid on a node known to be down).  HALF_OPEN admits exactly one probe
  at a time — the "ping" that decides whether a flapping replica rejoins
  rotation automatically.  The clock is injectable so state transitions
  are testable (and chaos-replayable) without real sleeps.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, List

from repro.errors import ConfigError
from repro.mapreduce.shuffle import stable_hash


class BreakerState(str, enum.Enum):
    """Where a replica's circuit breaker currently stands."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter and a retry budget.

    ``backoff(key, attempt)`` for attempt ``0..max_retries-1`` is::

        min(max_delay, base_delay * multiplier**attempt) * jitter_factor

    where ``jitter_factor`` is drawn uniformly from ``[1-jitter, 1+jitter]``
    by hashing ``(seed, key, attempt)`` — no global RNG state, so two
    requests (or two runs) with the same key wait identically.
    """

    max_retries: int = 1
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.1
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigError("backoff delays must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError("jitter must be in [0, 1)")

    def backoff(self, key: Any, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        unit = stable_hash((self.seed, key, attempt)) % 10_000 / 10_000.0
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * unit)

    def backoffs(self, key: Any) -> List[float]:
        """The full deterministic backoff schedule for one request."""
        return [self.backoff(key, i) for i in range(self.max_retries)]


@dataclass(frozen=True)
class HedgeConfig:
    """Shape of deadline-aware hedged scatter on the batched probe path.

    When a shard leg is still unanswered after the rolling p95 of
    observed leg latencies (clamped to ``[min_delay, max_delay]``), the
    router fires one backup probe on the next healthy replica and takes
    whichever answer lands first.  Replicas of a shard serve identical
    slices, so the winner's answer is bit-identical either way and the
    claim rule keeps the gather dedup-free.  ``min_observations`` is how
    many legs must be on record before the p95 is trusted; until then
    ``min_delay`` is used.
    """

    min_delay: float = 0.005
    max_delay: float = 0.5
    min_observations: int = 16

    def __post_init__(self) -> None:
        if self.min_delay < 0 or self.max_delay < 0:
            raise ConfigError("hedge delays must be >= 0")
        if self.max_delay < self.min_delay:
            raise ConfigError("max_delay must be >= min_delay")
        if self.min_observations < 1:
            raise ConfigError("min_observations must be >= 1")


@dataclass(frozen=True)
class BreakerConfig:
    """Shape of the per-replica circuit breakers a router builds."""

    failure_threshold: int = 3
    reset_timeout: float = 0.05

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigError("failure_threshold must be >= 1")
        if self.reset_timeout < 0:
            raise ConfigError("reset_timeout must be >= 0")

    def build(self, clock: Callable[[], float] = time.monotonic) -> "CircuitBreaker":
        return CircuitBreaker(
            failure_threshold=self.failure_threshold,
            reset_timeout=self.reset_timeout,
            clock=clock,
        )


class CircuitBreaker:
    """Per-replica failure gate: closed → open → half-open → closed.

    Thread-safe; all transitions happen under one lock.  ``allow()`` is
    the single admission question ("may I send this replica a probe right
    now?") and is what flips OPEN to HALF_OPEN once ``reset_timeout`` has
    elapsed.  HALF_OPEN admits one in-flight probe: concurrent callers
    are refused until :meth:`record_success` or :meth:`record_failure`
    resolves the trial.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise ConfigError("reset_timeout must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probing = False
        #: lifetime transition counts, for reports: opened/half_opened/closed.
        self.transitions = {"opened": 0, "half_opened": 0, "closed": 0}

    # -- state ---------------------------------------------------------
    @property
    def state(self) -> BreakerState:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        """OPEN → HALF_OPEN once the reset timeout has elapsed (lock held)."""
        if (
            self._state is BreakerState.OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = BreakerState.HALF_OPEN
            self._probing = False
            self.transitions["half_opened"] += 1

    # -- the admission question ----------------------------------------
    def allow(self) -> bool:
        """May the caller contact this replica right now?

        CLOSED: always.  OPEN: no (until the timeout flips it to
        HALF_OPEN).  HALF_OPEN: exactly one caller at a time — the trial
        probe whose outcome decides the next state.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    # -- outcomes ------------------------------------------------------
    def record_success(self) -> bool:
        """Note a successful probe; returns True if this *closed* the breaker
        (i.e. a previously-failed replica just rejoined rotation)."""
        with self._lock:
            recovered = self._state is not BreakerState.CLOSED
            self._state = BreakerState.CLOSED
            self._consecutive_failures = 0
            self._probing = False
            if recovered:
                self.transitions["closed"] += 1
            return recovered

    def reset(self) -> bool:
        """Force-close the breaker after *verified* readmission.

        The half-open trial exists because the router cannot know whether
        a tripped replica healed; the control plane's rebuild path *does*
        know — it just compared the replica's answers bit-for-bit against
        a healthy peer — so a readmitted replica rejoins rotation
        immediately instead of waiting out the reset timeout.  Returns
        True if the breaker was not already closed (counted as a
        ``closed`` transition).
        """
        with self._lock:
            recovered = self._state is not BreakerState.CLOSED
            self._state = BreakerState.CLOSED
            self._consecutive_failures = 0
            self._probing = False
            if recovered:
                self.transitions["closed"] += 1
            return recovered

    def record_failure(self) -> bool:
        """Note a failed probe; returns True if this *opened* the breaker."""
        with self._lock:
            self._consecutive_failures += 1
            tripping = (
                self._state is BreakerState.HALF_OPEN
                or (
                    self._state is BreakerState.CLOSED
                    and self._consecutive_failures >= self.failure_threshold
                )
            )
            if tripping:
                self._state = BreakerState.OPEN
                self._opened_at = self._clock()
                self._probing = False
                self.transitions["opened"] += 1
            return tripping

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker({self.state.value}, "
            f"failures={self._consecutive_failures}/{self.failure_threshold})"
        )
