"""Cluster control plane: build, persist and restore a serving cluster.

:func:`build_cluster` carves a full :class:`~repro.service.index.SegmentIndex`
(or builds one from a corpus) into per-shard slices along a bin-packed
:class:`~repro.cluster.plan.ShardPlan` and wires up K replicas per shard
behind a :class:`~repro.cluster.router.ClusterRouter`.

:func:`save_cluster` writes one directory:

* ``manifest.json`` — cluster format/version, the plan, the replication
  factor and the per-shard snapshot file names;
* ``shard-NNN.idx`` — one versioned snapshot per shard, written with
  :func:`repro.service.snapshot.save_index` (so every shard file carries
  the sha256 integrity digest and fails closed on corruption).

:func:`load_cluster` restores the directory into a router: each shard
snapshot is loaded once and shared by that shard's replicas (the simulated
form of "every replica restores the same snapshot").
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional, Union

from repro.core.config import FilterConfig
from repro.core.pivots import PivotMethod
from repro.data.records import RecordCollection
from repro.errors import ClusterError, ConfigError
from repro.mapreduce.executors import ExecutorKind
from repro.observability.tracer import Tracer
from repro.service.index import SegmentIndex
from repro.service.snapshot import load_index, save_index

from repro.cluster.failover import BreakerConfig, HedgeConfig, RetryPolicy
from repro.cluster.node import ShardNode, ShardSlice
from repro.cluster.plan import ShardPlan, plan_shards
from repro.cluster.router import ClusterRouter

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "repro-cluster"
MANIFEST_VERSION = 1


def build_cluster(
    source: Union[RecordCollection, SegmentIndex],
    n_shards: int = 4,
    replication: int = 1,
    n_vertical: int = 30,
    pivot_method: PivotMethod = PivotMethod.EVEN_TF,
    pivot_seed: int = 0,
    filters: Optional[FilterConfig] = None,
    max_in_flight: int = 64,
    queue_timeout: float = 0.25,
    tracer: Optional[Tracer] = None,
    executor: Union[ExecutorKind, str, None] = None,
    retry: Optional[RetryPolicy] = None,
    breaker: Optional[BreakerConfig] = None,
    hedge: Optional[HedgeConfig] = None,
    clock=time.monotonic,
    sleep=time.sleep,
    independent_replicas: bool = False,
) -> ClusterRouter:
    """Shard an index (or a corpus) into a routed, replicated cluster.

    Passing a prebuilt :class:`SegmentIndex` guarantees the cluster
    answers bit-identically to a single-node service over that index —
    same ordering, same pivots, same fragments, just placed.

    ``independent_replicas=True`` gives every replica beyond the first
    its own deep copy of the shard slice (``ShardSlice.clone``) instead
    of sharing one object — the faithful model for failure drills, where
    corrupting one replica must not corrupt its peers and the scrubber's
    cross-replica digest comparison is meaningful.
    """
    if replication < 1:
        raise ConfigError("replication must be >= 1")
    if isinstance(source, SegmentIndex):
        index = source
    else:
        index = SegmentIndex.build(
            source, n_vertical=n_vertical, pivot_method=pivot_method,
            pivot_seed=pivot_seed,
        )
    plan = plan_shards(index.fragment_loads(), n_shards)
    groups = []
    for shard in range(plan.n_shards):
        slice_ = ShardSlice.carve(index, plan.fragments_of(shard))
        nodes = [ShardNode(shard, 0, slice_)]
        for r in range(1, replication):
            replica_slice = slice_.clone() if independent_replicas else slice_
            nodes.append(ShardNode(shard, r, replica_slice))
        groups.append(nodes)
    return ClusterRouter(
        order=index.order,
        partitioner=index.partitioner,
        plan=plan,
        groups=groups,
        filters=filters,
        max_in_flight=max_in_flight,
        queue_timeout=queue_timeout,
        tracer=tracer,
        executor=executor,
        retry=retry,
        breaker=breaker,
        hedge=hedge,
        clock=clock,
        sleep=sleep,
    )


def save_cluster(router: ClusterRouter, directory: Union[str, Path]) -> int:
    """Persist a cluster as per-shard snapshots plus a manifest.

    Returns total bytes written.  Replicas of a shard serve identical
    data, so one snapshot per shard suffices; each snapshot carries its
    own integrity digest.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    shards = []
    total = 0
    for shard in range(router.n_shards):
        slice_ = router.replica(shard, 0).slice
        filename = f"shard-{shard:03d}.idx"
        total += save_index(slice_, directory / filename)
        shards.append({
            "shard": shard,
            "file": filename,
            "fragments": sorted(slice_.owned_fragments),
            "records": len(slice_),
            # Per-fragment content digests: what the anti-entropy
            # scrubber and a snapshot-based rebuild check against.
            "digests": {str(v): d
                        for v, d in slice_.content_digests().items()},
        })
    manifest = {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "replication": router.replication,
        "plan": router.plan.as_dict(),
        "index_epoch": router.index_epoch,
        "shards": shards,
    }
    manifest_path = directory / MANIFEST_NAME
    tmp = manifest_path.with_name(MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
    tmp.replace(manifest_path)
    total += manifest_path.stat().st_size
    return total


def load_cluster(
    directory: Union[str, Path],
    replication: Optional[int] = None,
    filters: Optional[FilterConfig] = None,
    max_in_flight: int = 64,
    queue_timeout: float = 0.25,
    tracer: Optional[Tracer] = None,
    executor: Union[ExecutorKind, str, None] = None,
    retry: Optional[RetryPolicy] = None,
    breaker: Optional[BreakerConfig] = None,
    hedge: Optional[HedgeConfig] = None,
    clock=time.monotonic,
    sleep=time.sleep,
    independent_replicas: bool = False,
) -> ClusterRouter:
    """Restore a cluster directory written by :func:`save_cluster`.

    ``replication`` overrides the saved factor (e.g. restore a snapshot
    set at higher replication for a failover drill).
    ``independent_replicas`` deep-copies the loaded slice for every
    replica beyond the first — see :func:`build_cluster`.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ClusterError(f"no cluster manifest at {manifest_path}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise ClusterError(
            f"unreadable cluster manifest at {manifest_path}: {exc}"
        ) from None
    if manifest.get("format") != MANIFEST_FORMAT:
        raise ClusterError(f"{manifest_path} is not a {MANIFEST_FORMAT} manifest")
    if manifest.get("version") != MANIFEST_VERSION:
        raise ClusterError(
            f"cluster manifest version mismatch at {manifest_path}: file has "
            f"{manifest.get('version')!r}, this build reads {MANIFEST_VERSION}"
        )
    plan = ShardPlan.from_dict(manifest["plan"])
    if replication is None:
        replication = int(manifest.get("replication", 1))
    if replication < 1:
        raise ConfigError("replication must be >= 1")
    order = None
    partitioner = None
    groups = []
    for entry in sorted(manifest["shards"], key=lambda e: e["shard"]):
        slice_ = load_index(directory / entry["file"])
        if not isinstance(slice_, ShardSlice):
            raise ClusterError(
                f"{entry['file']} is a plain index snapshot, not a shard "
                "slice; rebuild the cluster with 'repro cluster build'"
            )
        if set(slice_.owned_fragments) != set(
                plan.fragments_of(entry["shard"])):
            raise ClusterError(
                f"{entry['file']} owns fragments "
                f"{sorted(slice_.owned_fragments)} but the manifest assigns "
                f"{list(plan.fragments_of(entry['shard']))} — manifest and "
                "snapshots disagree"
            )
        order = order or slice_.order
        partitioner = partitioner or slice_.partitioner
        nodes = [ShardNode(entry["shard"], 0, slice_)]
        for r in range(1, replication):
            replica_slice = slice_.clone() if independent_replicas else slice_
            nodes.append(ShardNode(entry["shard"], r, replica_slice))
        groups.append(nodes)
    if len(groups) != plan.n_shards:
        raise ClusterError(
            f"manifest lists {len(groups)} shard snapshots, plan expects "
            f"{plan.n_shards}"
        )
    return ClusterRouter(
        order=order,
        partitioner=partitioner,
        plan=plan,
        groups=groups,
        filters=filters,
        max_in_flight=max_in_flight,
        queue_timeout=queue_timeout,
        tracer=tracer,
        executor=executor,
        retry=retry,
        breaker=breaker,
        hedge=hedge,
        clock=clock,
        sleep=sleep,
    )
