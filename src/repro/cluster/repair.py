"""Replica re-hydration: peer clone or snapshot, then verified readmission.

The :class:`~repro.cluster.health.ControlPlane` decides *that* a replica
needs rebuilding; :class:`RepairManager` is the *how*.  The contract, in
order:

1. **Fence first.**  The replica is fenced before anything is touched,
   so a half-rebuilt slice can never answer a probe — fencing fails
   ``ping()`` and makes every probe raise, and only verified readmission
   (step 4) unfences.

2. **Pick a source.**  Preferred: a healthy peer of the same shard whose
   per-fragment content digests match the shard baseline — its slice is
   deep-cloned (:meth:`~repro.cluster.node.ShardSlice.clone`, the same
   bytes a snapshot restore would produce).  Fallback: the shard's
   digest-checked snapshot from a :func:`~repro.cluster.build.save_cluster`
   directory (``load_index`` fails closed on corruption; the manifest's
   recorded digests are checked against the baseline too).  No source →
   a typed :class:`~repro.errors.ClusterError`, replica stays fenced.

3. **Catch up under a pin.**  An ingest-tier rebuild replays the WAL
   past the manifest's applied sequence
   (:meth:`~repro.ingest.streaming.StreamingIndex.recover`); the live
   log is **pinned** (:meth:`~repro.ingest.wal.WriteAheadLog.pin`) for
   the duration so a flush committing mid-rebuild cannot garbage-collect
   the very segments the catch-up is reading — released on readmission
   *or* abort.

4. **Verified readmission.**  The rebuilt replica rejoins rotation only
   through :meth:`~repro.cluster.router.ClusterRouter.readmit_replica`:
   digests plus seeded probes compared bit-for-bit against a healthy
   peer.  Divergence re-fences and raises; success force-closes the
   replica's circuit breaker.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.errors import ClusterError
from repro.service.snapshot import load_index

from repro.cluster.node import ShardSlice
from repro.cluster.router import ClusterRouter


class RepairManager:
    """Re-hydrate dead or quarantined replicas and readmit them verified."""

    def __init__(
        self,
        router: ClusterRouter,
        snapshot_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.router = router
        self.snapshot_dir = (
            Path(snapshot_dir) if snapshot_dir is not None else None
        )

    # -- shard replicas --------------------------------------------------
    def rebuild_replica(
        self,
        shard: int,
        replica: int,
        baseline: Optional[Dict[int, str]] = None,
        probes: int = 4,
    ) -> str:
        """Fence → source → adopt → restore → verified readmission.

        Returns a one-line detail of what happened; raises
        :class:`ClusterError` (replica left fenced) when no trustworthy
        source exists or the readmission verification fails.
        """
        node = self.router.replica(shard, replica)
        node.fence()
        source, how = self._source_slice(shard, replica, baseline)
        node.adopt_slice(source)
        node.restore()
        verdict = self.router.readmit_replica(shard, replica, probes=probes)
        return f"rebuilt from {how}; {verdict['detail']}"

    def _source_slice(
        self,
        shard: int,
        replica: int,
        baseline: Optional[Dict[int, str]],
    ):
        """The freshest trustworthy copy of the shard's data, cloned."""
        for rep in range(self.router.replication):
            if rep == replica:
                continue
            peer = self.router.replica(shard, rep)
            if not peer.ping():
                continue
            if baseline is not None:
                if peer.slice.content_digests() != baseline:
                    continue
            return peer.slice.clone(), f"peer {peer.name}"
        slice_ = self._snapshot_slice(shard, baseline)
        if slice_ is not None:
            return slice_, "snapshot"
        raise ClusterError(
            f"no rebuild source for shard {shard}: no healthy baseline peer "
            "and no snapshot directory configured"
        )

    def _snapshot_slice(
        self, shard: int, baseline: Optional[Dict[int, str]]
    ) -> Optional[ShardSlice]:
        if self.snapshot_dir is None:
            return None
        manifest_path = self.snapshot_dir / "manifest.json"
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ClusterError(
                f"unreadable cluster manifest at {manifest_path}: {exc}"
            ) from None
        entry = next(
            (e for e in manifest.get("shards", ()) if e["shard"] == shard),
            None,
        )
        if entry is None:
            raise ClusterError(
                f"snapshot manifest at {manifest_path} has no shard {shard}"
            )
        slice_ = load_index(self.snapshot_dir / entry["file"])
        if not isinstance(slice_, ShardSlice):
            raise ClusterError(
                f"{entry['file']} is not a shard slice snapshot"
            )
        planned = set(self.router.plan.fragments_of(shard))
        if set(slice_.owned_fragments) != planned:
            raise ClusterError(
                f"snapshot for shard {shard} owns "
                f"{sorted(slice_.owned_fragments)} but the live plan assigns "
                f"{sorted(planned)} — the snapshot predates a migration; "
                "resave the cluster"
            )
        if baseline is not None:
            digests = slice_.content_digests()
            if digests != baseline:
                bad = sorted(
                    v for v in set(digests) | set(baseline)
                    if digests.get(v) != baseline.get(v)
                )
                raise ClusterError(
                    f"snapshot for shard {shard} diverges from the cluster "
                    f"baseline on fragments {bad} — stale or damaged snapshot"
                )
        return slice_

    # -- the ingest tier -------------------------------------------------
    def rebuild_ingest(self) -> str:
        """Recover the streaming tier from its own DFS, WAL pinned.

        The failed :class:`~repro.cluster.node.IngestNode` keeps its DFS
        root (manifest + segments + WAL) — only the in-memory tier died.
        We fence the node, pin the live WAL so concurrent flush GC cannot
        reclaim the catch-up segments, run
        :meth:`~repro.ingest.streaming.StreamingIndex.recover` against
        the same DFS, check the recovered global order is rank-compatible
        with the router's (extending it with any tokens the router's
        order gained after the last flush), then swap the recovered tier
        in and unfence.  The pin is released on success *and* failure.
        """
        from repro.ingest.streaming import StreamingIndex

        ingest = self.router.ingest
        if ingest is None:
            raise ClusterError("no ingest tier attached; nothing to rebuild")
        streaming = ingest.streaming
        ingest.fence()
        pin_id = streaming.wal.pin(streaming._wal_applied_seq)
        try:
            recovered = StreamingIndex.recover(
                streaming.dfs,
                streaming.root,
                config=streaming.config,
                tracer=streaming.tracer,
                counters=streaming.counters,
            )
            self._align_order(recovered)
            ingest.streaming = recovered
            ingest.restore()
            ingest.unfence()
            return (
                f"recovered {len(recovered)} records, "
                f"manifest v{recovered.manifest_version}"
            )
        except ClusterError:
            raise
        except Exception as exc:
            raise ClusterError(f"ingest recovery failed: {exc}") from exc
        finally:
            streaming.wal.release(pin_id)

    def _align_order(self, recovered) -> None:
        """Fail closed unless the recovered order encodes like the router's.

        Ranks are append-only (``GlobalOrder.extend``), so compatibility
        means the shorter order is a strict prefix of the longer.  The
        recovered order may trail the router's (tokens first seen after
        the last flush live only in the shared in-memory order) — those
        are re-appended so future encodes agree on every rank.
        """
        mine = self.router.order
        theirs = recovered.order
        if theirs is mine:
            return
        common = min(mine.vocab_size, theirs.vocab_size)
        for rank in range(common):
            if mine.token(rank) != theirs.token(rank):
                raise ClusterError(
                    f"recovered ingest order diverges from the router's at "
                    f"rank {rank} ({theirs.token(rank)!r} vs "
                    f"{mine.token(rank)!r}) — refusing to readmit"
                )
        if theirs.vocab_size > mine.vocab_size:
            raise ClusterError(
                "recovered ingest order knows tokens the router's does not "
                "— refusing to readmit"
            )
        # Re-append the trailing tokens one at a time, in the router's
        # rank order — a bulk extend would re-sort them by (freq, token)
        # and could assign different ranks than the router's sequence of
        # per-batch extends did.
        for rank in range(theirs.vocab_size, mine.vocab_size):
            theirs.extend([(mine.token(rank), mine.frequency_of_rank(rank))])
