"""Self-healing control plane: detect, scrub, repair — deterministically.

The cluster built in PRs 4–9 routes *around* damage: circuit breakers
skip crashed replicas and hedged scatter hides stragglers, but a dead
replica stays dead until an operator calls ``restore()``, and a replica
whose postings were silently bit-rotted keeps serving wrong answers
forever (the breaker never trips — the probes *succeed*, they are just
wrong).  :class:`ControlPlane` closes both gaps with three loops, all
driven by an explicit :meth:`~ControlPlane.tick` so a chaos run can
interleave them deterministically with traffic:

1. **Failure detection** — every tick pings every replica and reads its
   breaker.  A replica that misses (ping fails or breaker OPEN) becomes
   ``SUSPECT``; after ``miss_budget`` consecutive misses it is declared
   ``DEAD`` and queued for repair.  A suspect that answers again before
   the budget runs out recovers silently (flapping is not death).

2. **Anti-entropy scrubbing** — every ``scrub_interval`` ticks, each
   serving replica's per-fragment content digests (sha256 over canonical
   posting content, see
   :meth:`repro.service.index.SegmentIndex.fragment_digest`) are
   compared against the shard's *baseline* — the majority digest vote
   captured when the plane attached (refreshed when the plan changes,
   e.g. after a rebalance migration).  A divergent replica is fenced on
   the spot (``QUARANTINED`` — it stops serving before its next probe)
   and queued for repair.  This is what catches chaos ``corrupt()``:
   the serving path cannot tell a wrong answer from a right one, the
   scrubber can.

3. **Repair** — queued replicas are handed to the
   :class:`~repro.cluster.repair.RepairManager`: re-hydrate from a
   healthy peer clone or the digest-checked snapshot, catch up past the
   snapshot's epoch, then *verified readmission*
   (:meth:`~repro.cluster.router.ClusterRouter.readmit_replica`) — the
   replica rejoins rotation only after answering bit-identically to a
   healthy peer, which also force-closes its breaker.

Everything observable is deterministic: events carry the tick number
(never wall time), repair order is queue order, digest comparisons and
verification probes are seeded — two runs of the same chaos schedule
produce byte-identical event logs (``tests/test_chaos.py`` diffs them).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ClusterError, ConfigError
from repro.observability.tracer import NOOP_TRACER, Tracer

from repro.cluster.failover import BreakerState
from repro.cluster.repair import RepairManager
from repro.cluster.router import ClusterRouter

HEALTH_GROUP = "cluster.health"


class ReplicaState(str, enum.Enum):
    """What the control plane currently believes about one replica."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    DEAD = "dead"
    QUARANTINED = "quarantined"
    REBUILDING = "rebuilding"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class HealthConfig:
    """Shape of the control plane's three loops.

    ``miss_budget`` — consecutive missed heartbeats before a suspect is
    declared dead.  ``scrub_interval`` — ticks between anti-entropy
    digest sweeps.  ``verify_probes`` — seeded probes per readmission
    verification.  ``auto_repair=False`` detects and quarantines but
    leaves rebuilding to the operator.  ``max_repairs_per_tick`` bounds
    repair work per tick so detection never starves behind rebuilds.
    ``max_rebuild_attempts`` caps retries before a replica is abandoned
    (state stays terminal, event ``rebuild-abandoned``).
    """

    miss_budget: int = 3
    scrub_interval: int = 4
    verify_probes: int = 4
    auto_repair: bool = True
    max_repairs_per_tick: int = 2
    max_rebuild_attempts: int = 3

    def __post_init__(self) -> None:
        if self.miss_budget < 1:
            raise ConfigError("miss_budget must be >= 1")
        if self.scrub_interval < 1:
            raise ConfigError("scrub_interval must be >= 1")
        if self.verify_probes < 1:
            raise ConfigError("verify_probes must be >= 1")
        if self.max_repairs_per_tick < 1:
            raise ConfigError("max_repairs_per_tick must be >= 1")
        if self.max_rebuild_attempts < 1:
            raise ConfigError("max_rebuild_attempts must be >= 1")


@dataclass(frozen=True)
class HealthEvent:
    """One control-plane decision, replay-comparable.

    Carries the tick number, never a wall-clock time, so two seeded runs
    of the same fault schedule produce identical event logs.
    """

    tick: int
    kind: str
    target: str
    detail: str = ""

    def line(self) -> str:
        """The one-line typed form ``repro serve`` logs."""
        suffix = f" ({self.detail})" if self.detail else ""
        return f"health: [{self.tick}] {self.kind} {self.target}{suffix}"


class ControlPlane:
    """The cluster's health brain: detector + scrubber + repair driver."""

    def __init__(
        self,
        router: ClusterRouter,
        config: Optional[HealthConfig] = None,
        repair: Optional[RepairManager] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if router.control is not None:
            raise ClusterError("a control plane is already attached")
        self.router = router
        self.config = config if config is not None else HealthConfig()
        self.repair = repair if repair is not None else RepairManager(router)
        self.tracer = tracer if tracer is not None else router.tracer
        if self.tracer is None:  # pragma: no cover - defensive
            self.tracer = NOOP_TRACER
        self.metrics = router.metrics
        self._tick = 0
        self.scrub_epoch = 0
        self._states: List[List[ReplicaState]] = [
            [ReplicaState.HEALTHY] * router.replication
            for _ in range(router.n_shards)
        ]
        self._misses: List[List[int]] = [
            [0] * router.replication for _ in range(router.n_shards)
        ]
        self._attempts: Dict[Tuple, int] = {}
        self._ingest_state = ReplicaState.HEALTHY
        self._ingest_misses = 0
        #: repair queue: ``(shard, replica)`` or ``("ingest",)``, FIFO.
        self._queue: List[Tuple] = []
        self.events: List[HealthEvent] = []
        #: shard → fragment → majority content digest at attach time.
        self._baseline: List[Dict[int, str]] = []
        self._plan_print: Tuple = ()
        self._capture_baseline()
        router.control = self

    # -- baselines ------------------------------------------------------
    def _plan_fingerprint(self) -> Tuple:
        return tuple(sorted(self.router.plan.assignment.items()))

    def _capture_baseline(self) -> None:
        """Majority digest vote per fragment, over serving replicas.

        Ties break deterministically toward the digest held by the
        lowest-numbered replica — replica 0 is the copy snapshots are
        written from, so at replication 2 a plane attached *after* one
        replica rotted still votes the intact content in.  With replicas
        sharing one slice the vote is unanimous by construction.
        """
        self._baseline = []
        for shard in range(self.router.n_shards):
            #: fragment → digest → [vote count, first replica seen on].
            votes: Dict[int, Dict[str, List[int]]] = {}
            for rep in range(self.router.replication):
                node = self.router.replica(shard, rep)
                if not node.ping():
                    continue
                for fragment, digest in node.slice.content_digests().items():
                    tally = votes.setdefault(fragment, {})
                    entry = tally.setdefault(digest, [0, rep])
                    entry[0] += 1
            self._baseline.append({
                fragment: max(
                    tally.items(),
                    key=lambda kv: (kv[1][0], -kv[1][1]),
                )[0]
                for fragment, tally in votes.items()
            })
        self._plan_print = self._plan_fingerprint()

    def baseline(self, shard: int) -> Dict[int, str]:
        """The shard's reference digests (what a rebuild must match)."""
        return dict(self._baseline[shard])

    # -- the tick -------------------------------------------------------
    def tick(self) -> List[HealthEvent]:
        """One control-plane round: detect → scrub → repair.

        Returns the events this tick emitted (also appended to
        :attr:`events`).  Emits one ``phase="health"`` span per tick so a
        trace shows when the plane looked and what it decided.
        """
        self._tick += 1
        before = len(self.events)
        start = time.perf_counter()
        self._detect()
        if self._tick % self.config.scrub_interval == 0:
            self._scrub()
        if self.config.auto_repair:
            self._drain_repairs()
        emitted = self.events[before:]
        self.tracer.add(
            "health-tick", "health",
            start=start, duration=time.perf_counter() - start,
            tick=self._tick, events=len(emitted),
            pending_repairs=len(self._queue),
        )
        self.metrics.increment(HEALTH_GROUP, "ticks")
        return emitted

    # -- loop 1: failure detection --------------------------------------
    def _detect(self) -> None:
        cfg = self.config
        for shard in range(self.router.n_shards):
            for rep in range(self.router.replication):
                state = self._states[shard][rep]
                if state in (ReplicaState.DEAD, ReplicaState.QUARANTINED,
                             ReplicaState.REBUILDING):
                    continue
                node = self.router.replica(shard, rep)
                breaker_open = (
                    self.router.breaker(shard, rep).state
                    is BreakerState.OPEN
                )
                if node.ping() and not breaker_open:
                    if state is ReplicaState.SUSPECT:
                        self._event("recovered", node.name,
                                    f"after {self._misses[shard][rep]} misses")
                        self.metrics.increment(HEALTH_GROUP, "recoveries")
                    self._states[shard][rep] = ReplicaState.HEALTHY
                    self._misses[shard][rep] = 0
                    continue
                self._misses[shard][rep] += 1
                misses = self._misses[shard][rep]
                why = "breaker open" if breaker_open else "ping failed"
                if state is ReplicaState.HEALTHY:
                    self._states[shard][rep] = ReplicaState.SUSPECT
                    self._event("suspect", node.name,
                                f"{why}; miss 1/{cfg.miss_budget}")
                    self.metrics.increment(HEALTH_GROUP, "suspects")
                if misses >= cfg.miss_budget and (
                        self._states[shard][rep] is ReplicaState.SUSPECT):
                    self._states[shard][rep] = ReplicaState.DEAD
                    self._event("dead", node.name,
                                f"{why}; missed {misses} heartbeats")
                    self.metrics.increment(HEALTH_GROUP, "deaths")
                    self._enqueue((shard, rep))
        self._detect_ingest()

    def _detect_ingest(self) -> None:
        ingest = self.router.ingest
        if ingest is None:
            return
        if self._ingest_state in (ReplicaState.DEAD,
                                  ReplicaState.REBUILDING):
            return
        if ingest.ping():
            if self._ingest_state is ReplicaState.SUSPECT:
                self._event("recovered", ingest.name,
                            f"after {self._ingest_misses} misses")
                self.metrics.increment(HEALTH_GROUP, "recoveries")
            self._ingest_state = ReplicaState.HEALTHY
            self._ingest_misses = 0
            return
        self._ingest_misses += 1
        if self._ingest_state is ReplicaState.HEALTHY:
            self._ingest_state = ReplicaState.SUSPECT
            self._event("suspect", ingest.name,
                        f"ping failed; miss 1/{self.config.miss_budget}")
            self.metrics.increment(HEALTH_GROUP, "suspects")
        if self._ingest_misses >= self.config.miss_budget and (
                self._ingest_state is ReplicaState.SUSPECT):
            self._ingest_state = ReplicaState.DEAD
            self._event("dead", ingest.name,
                        f"missed {self._ingest_misses} heartbeats")
            self.metrics.increment(HEALTH_GROUP, "deaths")
            self._enqueue(("ingest",))

    # -- loop 2: anti-entropy scrubbing ---------------------------------
    def _scrub(self) -> None:
        """Digest every serving replica against the shard baseline."""
        if self._plan_fingerprint() != self._plan_print:
            # The plan moved (rebalance migration): the old baseline
            # describes ownership that no longer exists.  Re-vote instead
            # of quarantining every replica of the migrated fragments.
            self._capture_baseline()
            self._event("baseline-refresh", "plan",
                        "placement changed; digests re-voted")
            self.metrics.increment(HEALTH_GROUP, "baseline_refreshes")
        self.scrub_epoch += 1
        start = time.perf_counter()
        checked = quarantined = 0
        for shard in range(self.router.n_shards):
            baseline = self._baseline[shard]
            for rep in range(self.router.replication):
                if self._states[shard][rep] is not ReplicaState.HEALTHY:
                    continue
                node = self.router.replica(shard, rep)
                if not node.ping():
                    continue
                checked += 1
                digests = node.slice.content_digests()
                if digests == baseline:
                    continue
                bad = sorted(
                    v for v in set(digests) | set(baseline)
                    if digests.get(v) != baseline.get(v)
                )
                node.fence()
                self._states[shard][rep] = ReplicaState.QUARANTINED
                quarantined += 1
                self._event("quarantine", node.name,
                            f"fragment digests diverge: {bad}")
                self.metrics.increment(HEALTH_GROUP, "quarantines")
                self.tracer.add(
                    f"quarantine:{node.name}", "recovery",
                    start=time.perf_counter(), duration=0.0,
                    action="quarantine", shard=shard, replica=rep,
                    fragments=str(bad),
                )
                self._enqueue((shard, rep))
        self.tracer.add(
            "scrub", "health",
            start=start, duration=time.perf_counter() - start,
            epoch=self.scrub_epoch, checked=checked,
            quarantined=quarantined,
        )
        self.metrics.increment(HEALTH_GROUP, "scrubs")

    # -- loop 3: repair -------------------------------------------------
    def _enqueue(self, item: Tuple) -> None:
        if item not in self._queue:
            self._queue.append(item)

    def _drain_repairs(self) -> None:
        budget = self.config.max_repairs_per_tick
        while self._queue and budget > 0:
            budget -= 1
            item = self._queue.pop(0)
            if item == ("ingest",):
                self._repair_ingest()
            else:
                self._repair_replica(*item)

    def _repair_replica(self, shard: int, rep: int) -> None:
        node = self.router.replica(shard, rep)
        prior = self._states[shard][rep]
        self._states[shard][rep] = ReplicaState.REBUILDING
        self._event("rebuild-start", node.name, f"was {prior.value}")
        start = time.perf_counter()
        try:
            detail = self.repair.rebuild_replica(
                shard, rep,
                baseline=self._baseline[shard],
                probes=self.config.verify_probes,
            )
        except ClusterError as exc:
            self._rebuild_failed((shard, rep), prior, node.name, str(exc))
            return
        self._states[shard][rep] = ReplicaState.HEALTHY
        self._misses[shard][rep] = 0
        self._attempts.pop((shard, rep), None)
        self._event("readmit", node.name, detail)
        self.metrics.increment(HEALTH_GROUP, "rebuilds")
        self.tracer.add(
            f"rebuild:{node.name}", "recovery",
            start=start, duration=time.perf_counter() - start,
            action="replica-rebuild", shard=shard, replica=rep,
            detail=detail,
        )

    def _repair_ingest(self) -> None:
        ingest = self.router.ingest
        if ingest is None:  # pragma: no cover - defensive
            return
        prior = self._ingest_state
        self._ingest_state = ReplicaState.REBUILDING
        self._event("rebuild-start", ingest.name, f"was {prior.value}")
        start = time.perf_counter()
        try:
            detail = self.repair.rebuild_ingest()
        except ClusterError as exc:
            self._rebuild_failed(("ingest",), prior, ingest.name, str(exc))
            return
        self._ingest_state = ReplicaState.HEALTHY
        self._ingest_misses = 0
        self._attempts.pop(("ingest",), None)
        self._event("readmit", ingest.name, detail)
        self.metrics.increment(HEALTH_GROUP, "rebuilds")
        self.tracer.add(
            f"rebuild:{ingest.name}", "recovery",
            start=start, duration=time.perf_counter() - start,
            action="ingest-rebuild", detail=detail,
        )

    def _rebuild_failed(self, item: Tuple, prior: ReplicaState,
                        name: str, why: str) -> None:
        attempts = self._attempts.get(item, 0) + 1
        self._attempts[item] = attempts
        self.metrics.increment(HEALTH_GROUP, "rebuild_failures")
        if item == ("ingest",):
            self._ingest_state = prior
        else:
            self._states[item[0]][item[1]] = prior
        if attempts < self.config.max_rebuild_attempts:
            self._event("rebuild-failed", name,
                        f"attempt {attempts}: {why}")
            self._enqueue(item)
        else:
            self._event("rebuild-abandoned", name,
                        f"after {attempts} attempts: {why}")
            self.metrics.increment(HEALTH_GROUP, "rebuilds_abandoned")

    # -- introspection --------------------------------------------------
    def _event(self, kind: str, target: str, detail: str = "") -> None:
        self.events.append(HealthEvent(self._tick, kind, target, detail))

    @property
    def ticks(self) -> int:
        return self._tick

    def replica_states(self) -> List[List[str]]:
        """``result[shard][replica]`` is the plane's belief (string form)."""
        return [[state.value for state in row] for row in self._states]

    def ingest_state(self) -> Optional[str]:
        if self.router.ingest is None:
            return None
        return self._ingest_state.value

    def pending_repairs(self) -> List[Tuple]:
        return list(self._queue)

    def all_healthy(self) -> bool:
        """Full replication restored: every replica serving and believed
        healthy, nothing queued for repair."""
        for shard in range(self.router.n_shards):
            for rep in range(self.router.replication):
                if self._states[shard][rep] is not ReplicaState.HEALTHY:
                    return False
                if not self.router.replica(shard, rep).ping():
                    return False
        if self.router.ingest is not None:
            if self._ingest_state is not ReplicaState.HEALTHY:
                return False
            if not self.router.ingest.ping():
                return False
        return not self._queue

    def event_log(self) -> List[Tuple[int, str, str, str]]:
        """The full decision log as plain tuples — what replay runs diff."""
        return [(e.tick, e.kind, e.target, e.detail) for e in self.events]

    def summary(self) -> Dict[str, object]:
        """JSON-safe control-plane state for ``status()`` surfaces."""
        summary: Dict[str, object] = {
            "tick": self._tick,
            "scrub_epoch": self.scrub_epoch,
            "pending_repairs": [list(item) for item in self._queue],
            "events": len(self.events),
            "all_healthy": self.all_healthy(),
            "health_counters": self.metrics.group(HEALTH_GROUP),
        }
        if self.router.ingest is not None:
            summary["ingest_state"] = self._ingest_state.value
        return summary
