"""FS-Join reproduction: fast and scalable distributed set similarity joins.

Reproduction of Rong et al., "Fast and Scalable Distributed Set Similarity
Joins for Big Data Analytics" (ICDE 2017).  See README.md for a tour and
DESIGN.md for the system inventory.

Quick start::

    from repro import FSJoin, FSJoinConfig, make_corpus

    records = make_corpus("wiki", 500, seed=7)
    result = FSJoin(FSJoinConfig(theta=0.8)).run(records)
    for (rid_a, rid_b), score in sorted(result.result_pairs.items()):
        print(rid_a, rid_b, round(score, 3))
"""

from repro.core import FSJoin, FSJoinConfig, FilterConfig, JoinMethod, PivotMethod
from repro.data import Record, RecordCollection, load_records, make_corpus, save_records
from repro.mapreduce import ClusterSpec, CostModel, SimulatedCluster
from repro.similarity import SimilarityFunction, cosine, dice, jaccard

__version__ = "1.0.0"

__all__ = [
    "FSJoin",
    "FSJoinConfig",
    "FilterConfig",
    "JoinMethod",
    "PivotMethod",
    "Record",
    "RecordCollection",
    "load_records",
    "save_records",
    "make_corpus",
    "ClusterSpec",
    "SimulatedCluster",
    "CostModel",
    "SimilarityFunction",
    "jaccard",
    "dice",
    "cosine",
    "__version__",
]
