"""One-call run explanation: what a join pipeline did and where it cost.

``explain(result, cluster)`` renders a per-job breakdown (records, shuffle
volume, reduce skew, measured CPU, simulated time) plus the filter
counters — the first thing anyone asks of a distributed join run.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.report import format_table
from repro.mapreduce.costmodel import CostModel, simulate_job_time
from repro.mapreduce.pipeline import PipelineResult
from repro.mapreduce.runtime import ClusterSpec


def explain(
    result: PipelineResult,
    cluster: Optional[ClusterSpec] = None,
    model: Optional[CostModel] = None,
) -> str:
    """Render a textual report of one pipeline run."""
    cluster = cluster or ClusterSpec()
    model = model or CostModel()
    rows = []
    for job_result in result.job_results:
        metrics = job_result.metrics
        times = simulate_job_time(metrics, cluster, model)
        rows.append(
            {
                "job": metrics.job_name,
                "in_records": metrics.input_records,
                "shuffle_kb": round(metrics.shuffle_bytes / 1e3, 1),
                "out_records": metrics.output_records,
                "reduce_cv": round(metrics.reduce_load_cv(), 3),
                "cpu_s": round(
                    sum(
                        t.compute_seconds
                        for t in metrics.map_tasks + metrics.reduce_tasks
                    ),
                    3,
                ),
                "sim_s": round(times.total_s, 2),
            }
        )
    lines = [
        format_table(
            rows,
            title=(
                f"{result.algorithm}: {len(result.pairs)} result pairs, "
                f"{result.total_shuffle_bytes()/1e3:.1f} kB shuffled, "
                f"{cluster.workers} workers"
            ),
        )
    ]
    counters = result.counters()
    filter_counters = counters.group("fsjoin.filter")
    if filter_counters:
        considered = filter_counters.get("pairs_considered", 0)
        emitted = filter_counters.get("candidates_emitted", 0)
        pruned = {
            name.replace("pruned_", ""): value
            for name, value in sorted(filter_counters.items())
            if name.startswith("pruned_")
        }
        pruned_text = ", ".join(f"{k}={v}" for k, v in pruned.items()) or "none"
        lines.append(
            f"fragment joins: {considered} pairs considered, "
            f"{emitted} candidate records emitted, pruned: {pruned_text}"
        )
    verify = counters.group("fsjoin.verify")
    if verify:
        lines.append(
            f"verification: {verify.get('candidates', 0)} candidate pairs "
            f"→ {verify.get('results', 0)} results"
        )
    return "\n".join(lines)
