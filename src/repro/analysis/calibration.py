"""Cost-model calibrations for replaying the paper's cluster economics.

The repo executes miniature datasets (hundreds to thousands of records) in
pure Python; the paper ran multi-GB corpora on a 10-worker Hadoop/EC2
cluster.  Two calibrations bridge the gap:

* :data:`MEASURED` — the identity calibration: measured Python task times,
  paper-era cluster constants.  Honest about what this machine did; at
  miniature scale per-job startup latency dominates every comparison.

* :data:`PAPER_SCALE` — extrapolates the miniature run to paper scale:

  - ``compute_scale = 0.03``: CPython is roughly 30× slower than the JVM
    code the paper ran, so measured task seconds overstate cluster compute
    by that factor;
  - shuffle/DFS bandwidth divided by :data:`SCALE_RATIO` (≈ 1000): the
    paper's inputs are about three orders of magnitude larger than the
    bench corpora, and shuffle volume grows at least linearly in input
    size, so a miniature byte stands in for ~1000 real bytes.

  Under this calibration the quantities the paper's comparisons hinge on —
  duplication-driven shuffle volume, number of jobs, reduce-load skew —
  regain their paper-scale weight relative to raw compute.  Every bench
  reports measured wall-clock *and* both simulated times, so readers can
  see the raw data behind the extrapolation.
"""

from __future__ import annotations

from repro.mapreduce.costmodel import CostModel

#: Miniature-corpus to paper-corpus size ratio used by the extrapolation.
SCALE_RATIO = 1000.0

#: Identity calibration: measured Python seconds, paper-era cluster constants.
MEASURED = CostModel()

#: Paper-scale extrapolation (see module docstring).
PAPER_SCALE = CostModel(
    compute_scale=0.03,
    shuffle_bandwidth_per_worker=CostModel().shuffle_bandwidth_per_worker / SCALE_RATIO,
    dfs_bandwidth_per_worker=CostModel().dfs_bandwidth_per_worker / SCALE_RATIO,
)
