"""Duplication accounting (Table I's "duplicate-free" claim, measured).

For the join kernel job of each algorithm, compare the map output volume
against the job input volume.  Token-keyed algorithms replicate each record
once per signature token (record factor ≫ 1); FS-Join's vertical segments
partition each record, so its byte factor stays ≈ 1 (horizontal boundary
partitions add a small, bounded replication the paper accepts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mapreduce.metrics import JobMetrics


@dataclass(frozen=True)
class DuplicationReport:
    """Duplication factors of one job."""

    record_factor: float
    """Map output records per input record (signatures per record)."""
    byte_factor: float
    """Map output bytes per input byte (replicated payload volume)."""
    shuffle_bytes: int

    def as_row(self) -> dict:
        return {
            "record_factor": round(self.record_factor, 2),
            "byte_factor": round(self.byte_factor, 2),
            "shuffle_mb": round(self.shuffle_bytes / 1e6, 3),
        }


def duplication_report(metrics: JobMetrics) -> DuplicationReport:
    """Duplication factors of the given (join kernel) job."""
    return DuplicationReport(
        record_factor=metrics.duplication_record_factor(),
        byte_factor=metrics.duplication_byte_factor(),
        shuffle_bytes=metrics.shuffle_bytes,
    )
