"""ASCII line charts for the figure benchmarks.

The paper's evaluation is mostly line plots (runtime vs threshold, vs
scale, vs node count).  ``render_series`` draws a small multi-series ASCII
chart so the bench output resembles the figure it regenerates, alongside
the exact numbers in the accompanying table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

Series = Dict[str, Sequence[float]]

_MARKERS = "ox+*#@%&"


def render_series(
    x_values: Sequence,
    series: Series,
    title: str = "",
    width: int = 60,
    height: int = 12,
    y_label: str = "",
) -> str:
    """Render one or more y-series over shared x-values as an ASCII chart.

    Args:
        x_values: Shared x axis (printed under the chart).
        series: Name → y values (each the same length as ``x_values``).
        title: Chart heading.
        width/height: Plot-area size in characters.
        y_label: Unit label shown on the y-axis extremes.
    """
    if not series:
        raise ConfigError("need at least one series")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ConfigError(f"series {name!r} length != x_values length")
    if width < 8 or height < 3:
        raise ConfigError("chart too small")

    all_ys = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_ys), max(all_ys)
    if y_max == y_min:
        y_max = y_min + 1.0
    n_points = len(x_values)

    def column(point_index: int) -> int:
        if n_points == 1:
            return width // 2
        return round(point_index * (width - 1) / (n_points - 1))

    def row(y: float) -> int:
        return (height - 1) - round((y - y_min) * (height - 1) / (y_max - y_min))

    grid = [[" "] * width for _ in range(height)]
    for series_index, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[series_index % len(_MARKERS)]
        previous: Optional[Tuple[int, int]] = None
        for point_index, y in enumerate(ys):
            r, c = row(y), column(point_index)
            if previous is not None:
                _draw_line(grid, previous, (r, c))
            previous = (r, c)
        # Markers drawn last so they sit on top of connecting lines.
        for point_index, y in enumerate(ys):
            grid[row(y)][column(point_index)] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.3g} {y_label}".rstrip()
    bottom_label = f"{y_min:.3g} {y_label}".rstrip()
    gutter = max(len(top_label), len(bottom_label))
    for r in range(height):
        prefix = top_label if r == 0 else bottom_label if r == height - 1 else ""
        lines.append(f"{prefix:>{gutter}} |" + "".join(grid[r]))
    lines.append(" " * gutter + " +" + "-" * width)
    first, last = str(x_values[0]), str(x_values[-1])
    axis = first + " " * max(1, width - len(first) - len(last)) + last
    lines.append(" " * gutter + "  " + axis)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * gutter + "  " + legend)
    return "\n".join(lines)


def _draw_line(grid: List[List[str]], start: Tuple[int, int], end: Tuple[int, int]) -> None:
    """Draw a simple interpolated segment with '.' between two points."""
    (r0, c0), (r1, c1) = start, end
    steps = max(abs(r1 - r0), abs(c1 - c0))
    for step in range(1, steps):
        r = round(r0 + (r1 - r0) * step / steps)
        c = round(c0 + (c1 - c0) * step / steps)
        if grid[r][c] == " ":
            grid[r][c] = "."
