"""Reduce-load skew metrics.

The paper argues token-keyed algorithms have "no load balancing guarantee"
while Even-TF vertical partitioning equalises fragment sizes.  These
helpers condense a join job's per-reduce-task input loads into the numbers
that argument is about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.mapreduce.metrics import JobMetrics


@dataclass(frozen=True)
class LoadBalanceReport:
    """Distribution summary of per-reduce-task input bytes."""

    n_tasks: int
    total_bytes: int
    mean_bytes: float
    max_bytes: int
    min_bytes: int
    cv: float
    """Coefficient of variation (std/mean); 0 means perfectly balanced."""
    max_over_mean: float
    """Straggler factor; the LPT makespan is at least this over ideal."""

    def as_row(self) -> dict:
        return {
            "tasks": self.n_tasks,
            "total_mb": round(self.total_bytes / 1e6, 3),
            "cv": round(self.cv, 4),
            "max_over_mean": round(self.max_over_mean, 3),
        }


def summarize_loads(loads: Sequence[float]) -> LoadBalanceReport:
    """Summarize any load vector (bytes, records or seconds)."""
    if not loads:
        return LoadBalanceReport(0, 0, 0.0, 0, 0, 0.0, 1.0)
    total = sum(loads)
    mean = total / len(loads)
    variance = sum((x - mean) ** 2 for x in loads) / len(loads)
    cv = math.sqrt(variance) / mean if mean else 0.0
    return LoadBalanceReport(
        n_tasks=len(loads),
        total_bytes=int(total),
        mean_bytes=mean,
        max_bytes=int(max(loads)),
        min_bytes=int(min(loads)),
        cv=cv,
        max_over_mean=max(loads) / mean if mean else 1.0,
    )


def load_balance_report(metrics: JobMetrics) -> LoadBalanceReport:
    """Skew report of one job's reduce-task input bytes."""
    return summarize_loads(metrics.reduce_input_loads())
