"""Plain-text table rendering for bench output.

Every benchmark prints the rows/series the corresponding paper table or
figure reports; this module keeps that output aligned and consistent.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def format_table(
    rows: Sequence[Dict[str, Any]],
    title: Optional[str] = None,
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render dict rows as an aligned text table.

    Column order follows ``columns`` when given, else the first row's key
    order.  Missing cells render empty.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())
    cells: List[List[str]] = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
