"""Plain-text table rendering for bench output and trace reports.

Every benchmark prints the rows/series the corresponding paper table or
figure reports; this module keeps that output aligned and consistent.
:func:`phase_breakdown` / :func:`format_phase_breakdown` turn a recorded
span trace into the per-phase time table that used to be assembled from
ad-hoc ``time.perf_counter()`` calls — the Fig. 10 phase story, driven by
the same spans the Chrome trace shows.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.observability.tracer import Span


def format_table(
    rows: Sequence[Dict[str, Any]],
    title: Optional[str] = None,
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render dict rows as an aligned text table.

    Column order follows ``columns`` when given, else the first row's key
    order.  Missing cells render empty.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())
    cells: List[List[str]] = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def phase_breakdown(spans: Sequence[Span]) -> List[Dict[str, Any]]:
    """Aggregate spans into per-phase rows (count, total time, share).

    Phases are the span categories (``pipeline``/``job``/``map``/
    ``reduce``/``shuffle``/``driver``/``service``).  ``share`` is each
    phase's fraction of the summed *root*-span time — roots are the only
    spans whose durations don't double-count their children — and retried
    task attempts are reported separately (``map (retried)``) so
    fault-injection runs show the re-execution cost as its own row.
    Rows are ordered by first span start, the execution order.
    """
    rows: Dict[str, Dict[str, Any]] = {}
    root_total = sum(s.duration for s in spans if s.parent_id is None) or None
    for span in spans:
        label = span.phase or "(untagged)"
        if span.attrs.get("status") == "retried":
            label = f"{label} (retried)"
        row = rows.get(label)
        if row is None:
            row = rows[label] = {
                "phase": label,
                "spans": 0,
                "total_s": 0.0,
                "_first": span.start,
            }
        row["spans"] += 1
        row["total_s"] += span.duration
        row["_first"] = min(row["_first"], span.start)
    ordered = sorted(rows.values(), key=lambda row: row.pop("_first"))
    for row in ordered:
        row["mean_ms"] = row["total_s"] / row["spans"] * 1e3
        if root_total:
            row["share"] = f"{row['total_s'] / root_total:.1%}"
    return ordered


def format_phase_breakdown(
    spans: Sequence[Span], title: Optional[str] = "phase breakdown"
) -> str:
    """Render :func:`phase_breakdown` as an aligned table."""
    return format_table(phase_breakdown(spans), title=title)
