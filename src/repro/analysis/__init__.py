"""Measurement helpers for the paper's comparative claims.

* :mod:`repro.analysis.loadbalance` — reduce-load skew metrics (Table I's
  load-balancing column, Fig. 11's pivot comparison).
* :mod:`repro.analysis.duplication` — duplication factors (Table I's
  duplication-free column).
* :mod:`repro.analysis.report` — plain-text table rendering for benches.
"""

from repro.analysis.loadbalance import LoadBalanceReport, load_balance_report
from repro.analysis.duplication import DuplicationReport, duplication_report
from repro.analysis.explain import explain
from repro.analysis.figures import render_series
from repro.analysis.report import (
    format_phase_breakdown,
    format_table,
    phase_breakdown,
)

__all__ = [
    "LoadBalanceReport",
    "load_balance_report",
    "DuplicationReport",
    "duplication_report",
    "explain",
    "render_series",
    "format_table",
    "format_phase_breakdown",
    "phase_breakdown",
]
