"""The async multi-tenant gateway in front of the cluster router.

:class:`SimilarityGateway` is the front door the ROADMAP's
"millions of users" serving story needs: instead of paying one admission
slot, one scatter and one merge per probe, concurrent requests are pooled
in an asyncio request loop and served through the router's batched
fast path.  Four mechanisms, layered:

1. **Request coalescing** — identical in-flight ``(tokens, θ, func)``
   probes await one shared computation (an :class:`asyncio.Future` per
   distinct key) on top of a result LRU cache.  A hot-key storm of N
   identical probes costs one index probe, not N.
2. **Micro-batching** — queued probes are drained in bounded batches and
   dispatched through :meth:`ClusterRouter.search_batch`, which dedupes,
   admits once, and scatters each target shard one fragment-grouped
   columnar ``probe_batch`` call (claim rule preserved, results
   bit-identical to direct :meth:`ClusterRouter.search` calls).
3. **Per-tenant quotas and weighted fairness** — each tenant has a
   bounded number of outstanding requests (excess is shed with a typed
   :class:`~repro.errors.QuotaExceededError` before any cluster work)
   and a weight that sets how many of its queued probes each dispatch
   round takes, so a storming tenant cannot starve the others.
4. **Deadline-aware hedged scatter** — configured on the router
   (:class:`~repro.cluster.failover.HedgeConfig`): a shard leg still
   unanswered after the rolling leg-latency p95 races a backup replica
   probe and the first answer wins.  Replicas serve the same slice, so
   hedged answers are bit-identical and need no dedup.

Everything reports on the **router's injectable clock** (the one-clock
contract): per-tenant latency histograms, the gateway's own percentiles
and every deadline check read the same clock the chaos harness advances,
so injected latency is visible in exactly the numbers ``repro gateway
serve-sim`` prints.  Deadlines are enforced per request at the gateway —
a batch is never failed wholesale because one member ran out of budget.

The event loop is single-threaded and the dispatch order is a pure
function of the submission order (per-tenant FIFO queues, weighted
round-robin drain), so a seeded replay coalesces, batches and sheds
identically every run — the property ``run_gateway_scenario`` checks.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    QuotaExceededError,
    ReproError,
)
from repro.mapreduce.counters import Counters
from repro.observability.histogram import LatencyHistogram
from repro.observability.tracer import NOOP_TRACER, Tracer
from repro.service.cache import LRUCache
from repro.service.index import SearchHit
from repro.similarity.functions import SimilarityFunction

GATEWAY_GROUP = "gateway"
QUOTA_GROUP = "gateway.quota"

#: Coalescing key: (canonical token tuple, θ, func value) — the same
#: canonical form the service cache uses.
GatewayKey = Tuple[Tuple[str, ...], float, str]


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's fairness weight and admission quota.

    ``weight`` is how many queued probes a dispatch round drains from
    this tenant per round-robin pass; ``max_outstanding`` bounds the
    tenant's concurrently outstanding requests — the excess is shed with
    :class:`~repro.errors.QuotaExceededError` before touching the
    cluster.
    """

    weight: int = 1
    max_outstanding: int = 64

    def __post_init__(self) -> None:
        if self.weight < 1:
            raise ConfigError("tenant weight must be >= 1")
        if self.max_outstanding < 1:
            raise ConfigError("max_outstanding must be >= 1")


@dataclass(frozen=True)
class GatewayConfig:
    """Shape of one gateway: batching bounds, cache, tenant policies."""

    max_batch: int = 32
    """Most probes one dispatch round hands to the router batch path."""
    window: float = 0.0
    """Batching window in seconds of real time.  ``0`` batches exactly
    the probes enqueued by the current scheduling wave (deterministic —
    what the tests and chaos replays use); a positive window additionally
    lets late arrivals join the batch."""
    cache_size: int = 1024
    """Capacity of the gateway result LRU (0 disables caching).  Entries
    are tagged with the router's :attr:`~ClusterRouter.index_epoch` at
    dispatch time; a hit tagged with an older epoch (the index mutated
    via ``apply_batch`` or an ingest generation swap since) is treated
    as a miss and recomputed, so post-ingest probes never serve stale
    coalesced results."""
    adaptive_hedge: bool = False
    """Derive the hedge fire point from the dispatching tenants'
    latency-histogram p95 instead of the router's global rolling leg
    p95 (which remains the fallback below ``min_observations``).
    Hedging only picks which replica answers, so results stay
    bit-identical with or without this."""
    default_tenant: TenantConfig = field(default_factory=TenantConfig)
    tenants: Mapping[str, TenantConfig] = field(default_factory=dict)
    """Per-tenant overrides; unlisted tenants get ``default_tenant``."""

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigError("max_batch must be >= 1")
        if self.window < 0:
            raise ConfigError("window must be >= 0")
        if self.cache_size < 0:
            raise ConfigError("cache_size must be >= 0")

    def tenant(self, name: str) -> TenantConfig:
        return self.tenants.get(name, self.default_tenant)


@dataclass(frozen=True)
class GatewayRequest:
    """One probe in a replayable request schedule (see
    :meth:`SimilarityGateway.serve`)."""

    tokens: Tuple[str, ...]
    theta: float
    func: SimilarityFunction = SimilarityFunction.JACCARD
    tenant: str = "default"
    k: Optional[int] = None
    exclude: Optional[int] = None
    deadline: Optional[float] = None


@dataclass(frozen=True)
class GatewayResponse:
    """One request's outcome: hits, or the typed error that shed it."""

    hits: Optional[Tuple[SearchHit, ...]]
    error: Optional[str]
    tenant: str

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class _Pending:
    """One queued probe awaiting dispatch."""

    key: GatewayKey
    theta: float
    func: SimilarityFunction
    tenant: str = "default"


class SimilarityGateway:
    """Async multi-tenant front door over a :class:`ClusterRouter`."""

    def __init__(
        self,
        router,
        config: Optional[GatewayConfig] = None,
        tracer: Optional[Tracer] = None,
        clock=None,
    ) -> None:
        """``tracer`` defaults to the router's (one request tree across
        both layers); ``clock`` defaults to the router's clock — the
        one-clock contract that makes injected latency visible in every
        histogram a deadline decision reads."""
        self.router = router
        self.config = config if config is not None else GatewayConfig()
        self.tracer = tracer if tracer is not None else router.tracer
        self._clock = clock if clock is not None else router._clock
        self.metrics = Counters()
        self.latency = LatencyHistogram()
        self._tenant_latency: Dict[str, LatencyHistogram] = {}
        #: result LRU; values are ``(index_epoch, hits)`` — see
        #: :attr:`GatewayConfig.cache_size` for the invalidation rule.
        self._cache: LRUCache[Tuple[int, List[SearchHit]]] = LRUCache(
            self.config.cache_size
        )
        self._inflight: Dict[GatewayKey, asyncio.Future] = {}
        self._queues: Dict[str, Deque[_Pending]] = {}
        self._outstanding: Dict[str, int] = {}
        self._dispatcher: Optional[asyncio.Task] = None

    # -- the request path ----------------------------------------------
    async def search(
        self,
        tokens: Iterable[str],
        theta: float,
        k: Optional[int] = None,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        tenant: str = "default",
        exclude: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> List[SearchHit]:
        """One exact probe through the gateway; same result contract as
        :meth:`ClusterRouter.search`.

        The shared computation is keyed by ``(canonical tokens, θ,
        func)`` — ``k``/``exclude`` are per-caller views applied after
        it, so requests differing only in those still coalesce.
        ``deadline`` (seconds on the gateway clock) is enforced *per
        request*: an overrun raises a typed
        :class:`~repro.errors.DeadlineExceededError` for this caller
        only, never for the batch it rode in.
        """
        func = SimilarityFunction(func)
        started = self._clock()
        deadline_at = None if deadline is None else started + deadline
        self.metrics.increment(GATEWAY_GROUP, "requests")
        quota = self.config.tenant(tenant)
        if self._outstanding.get(tenant, 0) >= quota.max_outstanding:
            self.metrics.increment(GATEWAY_GROUP, "quota_shed")
            self.metrics.increment(QUOTA_GROUP, tenant)
            # Shed requests are load too: they hit the same histograms
            # the served ones do, so overload is visible in the numbers.
            elapsed = self._clock() - started
            self.latency.record(elapsed)
            self._tenant_histogram(tenant).record(elapsed)
            self._trace_request(tenant, "quota-shed")
            raise QuotaExceededError(
                f"tenant {tenant!r} at max outstanding "
                f"({quota.max_outstanding}); request shed"
            )
        self._outstanding[tenant] = self._outstanding.get(tenant, 0) + 1
        status = "ok"
        try:
            self._check_deadline(deadline_at)
            key = self._key(tokens, theta, func)
            hits = self._cache_get(key)
            if hits is not None:
                self.metrics.increment(GATEWAY_GROUP, "cache_hits")
                status = "cache-hit"
            else:
                future = self._inflight.get(key)
                if future is not None:
                    self.metrics.increment(GATEWAY_GROUP, "coalesced")
                    status = "coalesced"
                else:
                    future = asyncio.get_running_loop().create_future()
                    self._inflight[key] = future
                    self._enqueue(tenant, _Pending(key, float(theta), func,
                                                   tenant))
                hits = await future
            self._check_deadline(deadline_at)
            return _view(hits, k, exclude)
        except ReproError as exc:
            status = type(exc).__name__
            raise
        finally:
            self._outstanding[tenant] -= 1
            if not self._outstanding[tenant]:
                del self._outstanding[tenant]
            elapsed = self._clock() - started
            self.latency.record(elapsed)
            self._tenant_histogram(tenant).record(elapsed)
            self._trace_request(tenant, status)

    def serve(
        self, requests: Sequence[GatewayRequest]
    ) -> List[GatewayResponse]:
        """Replay a request schedule through one event loop, concurrently.

        All requests are submitted as one scheduling wave (the asyncio
        twin of a traffic burst): they coalesce, batch, and shed against
        each other exactly as concurrent clients would, and the outcomes
        — hits or the typed error that shed a request — come back aligned
        with ``requests``.  Submission order is the only scheduling
        input, so a seeded schedule replays bit-identically.
        """

        async def one(request: GatewayRequest) -> GatewayResponse:
            try:
                hits = await self.search(
                    request.tokens, request.theta, k=request.k,
                    func=request.func, tenant=request.tenant,
                    exclude=request.exclude, deadline=request.deadline,
                )
                return GatewayResponse(tuple(hits), None, request.tenant)
            except ReproError as exc:
                return GatewayResponse(None, type(exc).__name__,
                                       request.tenant)

        async def run() -> List[GatewayResponse]:
            return list(await asyncio.gather(*(one(r) for r in requests)))

        return asyncio.run(run())

    # -- the dispatch loop ---------------------------------------------
    def _enqueue(self, tenant: str, pending: _Pending) -> None:
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
        queue.append(pending)
        if self._dispatcher is None or self._dispatcher.done():
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )

    async def _dispatch_loop(self) -> None:
        """Drain queued probes in weighted-fair batches until idle."""
        while True:
            # Yield so every request of the current scheduling wave gets
            # to enqueue before the batch is cut; a positive window
            # additionally waits out late arrivals in real time.
            if self.config.window > 0:
                await asyncio.sleep(self.config.window)
            else:
                await asyncio.sleep(0)
            batch = self._drain()
            if not batch:
                self._dispatcher = None
                return
            self._dispatch(batch)

    def _drain(self) -> List[_Pending]:
        """Take up to ``max_batch`` probes, weighted round-robin across
        tenants (tenant order = first-seen order, so replays are exact)."""
        batch: List[_Pending] = []
        limit = self.config.max_batch
        progressed = True
        while progressed and len(batch) < limit:
            progressed = False
            for tenant, queue in self._queues.items():
                for _ in range(self.config.tenant(tenant).weight):
                    if not queue or len(batch) >= limit:
                        break
                    batch.append(queue.popleft())
                    progressed = True
        return batch

    def _dispatch(self, batch: List[_Pending]) -> None:
        """Send one drained batch through the router's batched scatter.

        Probes are grouped by ``(θ, func)`` (the router batch signature);
        within a group the router dedupes, admits once and
        fragment-groups the scatter.  Full, unviewed results resolve the
        shared futures and feed the gateway cache.
        """
        self.metrics.increment(GATEWAY_GROUP, "batches")
        self.metrics.increment(GATEWAY_GROUP, "dispatched", len(batch))
        with self.tracer.span(
            "gateway-dispatch", phase="gateway", batch=len(batch),
        ) as span:
            groups: Dict[Tuple[float, str], List[_Pending]] = {}
            for pending in batch:
                groups.setdefault(
                    (pending.theta, pending.func.value), []
                ).append(pending)
            span.attrs["groups"] = len(groups)
            for (theta, func_value), members in groups.items():
                queries = [list(pending.key[0]) for pending in members]
                # Epoch before the probe: a write landing mid-probe may
                # or may not be visible in these results, so tag them
                # with the older epoch and let the next get recompute.
                epoch = self._router_epoch()
                hedge_delay = (
                    self._adaptive_hedge_delay(
                        {pending.tenant for pending in members}
                    )
                    if self.config.adaptive_hedge else None
                )
                try:
                    results = self.router.search_batch(
                        queries, theta, func=SimilarityFunction(func_value),
                        hedge_delay=hedge_delay,
                    )
                except ReproError as exc:
                    for pending in members:
                        future = self._inflight.pop(pending.key, None)
                        if future is not None and not future.done():
                            future.set_exception(exc)
                    continue
                for pending, hits in zip(members, results):
                    self._cache.put(pending.key, (epoch, hits))
                    future = self._inflight.pop(pending.key, None)
                    if future is not None and not future.done():
                        future.set_result(hits)

    # -- introspection ---------------------------------------------------
    def latency_info(self) -> Dict:
        """Gateway request-latency percentiles (shared-clock histogram)."""
        return self.latency.snapshot()

    def tenant_latency_info(self) -> Dict[str, Dict]:
        """Per-tenant latency snapshots, tenant-name ordered."""
        return {
            tenant: histogram.snapshot()
            for tenant, histogram in sorted(self._tenant_latency.items())
        }

    def stats(self) -> Dict:
        """One JSON-safe snapshot: gateway counters, quota sheds by
        tenant, latency percentiles, and the router's route/hedge
        counters underneath."""
        return {
            "gateway": self.metrics.group(GATEWAY_GROUP),
            "quota_shed_by_tenant": self.metrics.group(QUOTA_GROUP),
            "latency": self.latency_info(),
            "tenants": self.tenant_latency_info(),
            "route": self.router.metrics.group("cluster.route"),
            "leg_latency": self.router.leg_latency.snapshot(),
        }

    # -- internals -------------------------------------------------------
    def _check_deadline(self, deadline_at: Optional[float]) -> None:
        if deadline_at is not None and self._clock() >= deadline_at:
            self.metrics.increment(GATEWAY_GROUP, "deadline_exceeded")
            raise DeadlineExceededError(
                "gateway request ran past its deadline; result abandoned"
            )

    @staticmethod
    def _key(
        tokens: Iterable[str], theta: float, func: SimilarityFunction
    ) -> GatewayKey:
        return (tuple(sorted(set(tokens))), float(theta), func.value)

    def _router_epoch(self) -> int:
        """The router's index epoch (0 for routers without one)."""
        return getattr(self.router, "index_epoch", 0)

    def _cache_get(self, key: GatewayKey) -> Optional[List[SearchHit]]:
        """A cached result, unless the index mutated since it was put —
        an epoch-stale entry counts as ``cache_invalidated`` and misses,
        so the probe recomputes against the current index."""
        entry = self._cache.get(key)
        if entry is None:
            return None
        epoch, hits = entry
        if epoch != self._router_epoch():
            self.metrics.increment(GATEWAY_GROUP, "cache_invalidated")
            return None
        return hits

    def _adaptive_hedge_delay(self, tenants) -> Optional[float]:
        """The per-tenant-class hedge fire point for one dispatch group.

        The most latency-sensitive tenant in the group wins: the lowest
        per-tenant latency-histogram p95, clamped to the hedge config's
        ``[min_delay, max_delay]``.  Tenants with fewer than
        ``min_observations`` recorded requests don't vote; if nobody
        votes this returns ``None`` and the router falls back to its
        global rolling leg p95.  Either way the hedge only picks which
        replica answers — the no-dedup race contract and bit-identical
        results are untouched.
        """
        hedge = getattr(self.router, "hedge", None)
        if hedge is None:
            return None
        best: Optional[float] = None
        for tenant in sorted(tenants):
            histogram = self._tenant_latency.get(tenant)
            if histogram is None or len(histogram) < hedge.min_observations:
                continue
            p95 = histogram.percentile(0.95)
            if best is None or p95 < best:
                best = p95
        if best is None:
            return None
        return min(hedge.max_delay, max(hedge.min_delay, best))

    def _tenant_histogram(self, tenant: str) -> LatencyHistogram:
        histogram = self._tenant_latency.get(tenant)
        if histogram is None:
            histogram = self._tenant_latency[tenant] = LatencyHistogram()
        return histogram

    def _trace_request(self, tenant: str, status: str) -> None:
        if self.tracer.enabled:
            self.tracer.add(
                f"gateway-request:{tenant}", "gateway",
                start=time.perf_counter(), duration=0.0,
                tenant=tenant, status=status,
            )


def _view(
    hits: List[SearchHit], k: Optional[int], exclude: Optional[int]
) -> List[SearchHit]:
    """The per-caller ``exclude``/``k`` view over a shared result."""
    if exclude is not None:
        hits = [hit for hit in hits if hit.rid != exclude]
    else:
        hits = list(hits)
    if k is not None:
        hits = hits[: max(k, 0)]
    return hits
