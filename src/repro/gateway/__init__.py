"""Async multi-tenant gateway fronting the serving cluster.

The pieces, front to back:

* :class:`SimilarityGateway` — the asyncio front door: request
  coalescing over an LRU result cache, weighted-fair micro-batching into
  :meth:`ClusterRouter.search_batch`, per-tenant quotas with typed
  sheds, per-request deadlines, all reported on the router's clock.
* :class:`GatewayConfig` / :class:`TenantConfig` — batching window,
  cache size, and each tenant's weight + outstanding-request quota.
* :class:`GatewayRequest` / :class:`GatewayResponse` — the replayable
  schedule format :meth:`SimilarityGateway.serve` consumes and returns.

Hedged scatter lives one layer down (``HedgeConfig`` on the router); the
gateway inherits it by dispatching through the batched probe path.
"""

from repro.gateway.gateway import (
    GatewayConfig,
    GatewayRequest,
    GatewayResponse,
    SimilarityGateway,
    TenantConfig,
)

__all__ = [
    "GatewayConfig",
    "GatewayRequest",
    "GatewayResponse",
    "SimilarityGateway",
    "TenantConfig",
]
