"""A bounded, thread-safe LRU cache for probe results.

The service keys entries by ``(canonical token tuple, θ, func)`` — the
full identity of an exact probe — and stores the *complete* hit list, so
one cached entry serves every ``k`` truncation and every ``exclude``
filter of the same query.  Capacity 0 disables caching (every ``get``
misses, ``put`` is a no-op), which the benchmarks use to measure cold
probes.

Every operation takes an internal lock: the service is probed from thread
fan-outs (``search_batch`` over the thread executor, callers serving
concurrent requests against one shared :class:`SimilarityService`), and an
unsynchronized ``OrderedDict`` corrupts under concurrent ``move_to_end``/
``popitem`` — ``tests/test_service_cache_stress.py`` hammers exactly that
pattern.  The lock is *internal* state and deliberately excluded from
pickling so cached services stay snapshot-friendly.

Hit/miss/eviction accounting lives in the service's
:class:`~repro.mapreduce.counters.Counters` (the cache itself stays a dumb
container so it can be unit-tested in isolation).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Generic, Hashable, Optional, Tuple, TypeVar

from repro.errors import ConfigError

V = TypeVar("V")


class LRUCache(Generic[V]):
    """Least-recently-used mapping with a fixed capacity (thread-safe)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ConfigError("cache capacity must be >= 0")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, V]" = OrderedDict()
        self._lock = threading.Lock()
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable) -> Optional[V]:
        """Return the cached value (refreshing its recency) or ``None``."""
        with self._lock:
            try:
                self._entries.move_to_end(key)
            except KeyError:
                return None
            return self._entries[key]

    def put(self, key: Hashable, value: V) -> None:
        """Insert/refresh ``key``; evicts the least recently used entry."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (index mutation invalidates all results)."""
        with self._lock:
            self._entries.clear()

    def keys(self) -> Tuple[Hashable, ...]:
        """Keys from least to most recently used (for tests)."""
        with self._lock:
            return tuple(self._entries)

    # -- pickling (locks are not picklable) ----------------------------
    def __getstate__(self):
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": list(self._entries.items()),
                "evictions": self.evictions,
            }

    def __setstate__(self, state) -> None:
        self.capacity = state["capacity"]
        self._entries = OrderedDict(state["entries"])
        self._lock = threading.Lock()
        self.evictions = state["evictions"]
