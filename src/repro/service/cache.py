"""A bounded LRU cache for probe results.

The service keys entries by ``(canonical token tuple, θ, func)`` — the
full identity of an exact probe — and stores the *complete* hit list, so
one cached entry serves every ``k`` truncation and every ``exclude``
filter of the same query.  Capacity 0 disables caching (every ``get``
misses, ``put`` is a no-op), which the benchmarks use to measure cold
probes.

Hit/miss/eviction accounting lives in the service's
:class:`~repro.mapreduce.counters.Counters` (the cache itself stays a dumb
container so it can be unit-tested in isolation).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Optional, Tuple, TypeVar

from repro.errors import ConfigError

V = TypeVar("V")


class LRUCache(Generic[V]):
    """Least-recently-used mapping with a fixed capacity."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ConfigError("cache capacity must be >= 0")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, V]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[V]:
        """Return the cached value (refreshing its recency) or ``None``."""
        try:
            self._entries.move_to_end(key)
        except KeyError:
            return None
        return self._entries[key]

    def put(self, key: Hashable, value: V) -> None:
        """Insert/refresh ``key``; evicts the least recently used entry."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (index mutation invalidates all results)."""
        self._entries.clear()

    def keys(self) -> Tuple[Hashable, ...]:
        """Keys from least to most recently used (for tests)."""
        return tuple(self._entries)
