"""Token interning for the columnar serving hot path.

:class:`TokenVocab` is the serving layer's view of the corpus vocabulary:
every token is interned to a dense integer id in **global frequency order**
(id 0 = rarest token), so prefix membership, position comparisons and
posting-list keys are all plain integer compares over
:class:`array.array` columns instead of string hashing.

The vocab is a thin façade over :class:`~repro.core.ordering.GlobalOrder`
— the same total order the offline FS-Join pipeline shuffles under — so an
index and the cluster router encode queries identically by construction.
Two invariants the property tests (``tests/test_service_vocab.py``) pin
down:

* **round trip** — ``decode(encode_record(tokens))`` returns the tokens
  (sorted by id, deduplicated);
* **id stability under growth** — :meth:`extend` (the ``apply_batch``
  hook) only ever *appends* ids: an interned token keeps its id forever,
  so encoded records, pivot cuts and posting columns built before a batch
  stay valid after it.
"""

from __future__ import annotations

from array import array
from typing import Iterable, List, Sequence, Tuple

from repro.core.ordering import GlobalOrder
from repro.errors import DataError

#: Array typecode for token-id columns (signed native long, ≥ 32 bits;
#: 64 bits on every mainstream platform we target).
ID_TYPECODE = "l"


class TokenVocab:
    """Dense, frequency-ordered token ids over a :class:`GlobalOrder`.

    The vocab *shares* the order object (it does not copy it), so extending
    the vocab extends the order and vice versa — index, service and router
    always agree on the interning.
    """

    __slots__ = ("order",)

    def __init__(self, order: GlobalOrder) -> None:
        self.order = order

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        return self.order.vocab_size

    @property
    def size(self) -> int:
        return self.order.vocab_size

    def knows(self, token: str) -> bool:
        return self.order.knows(token)

    def id_of(self, token: str) -> int:
        """Dense id of ``token``; :class:`DataError` if not interned."""
        return self.order.rank(token)

    def token_of(self, token_id: int) -> str:
        """Inverse lookup (id → token)."""
        return self.order.token(token_id)

    # -- encoding ------------------------------------------------------
    def encode_record(self, tokens: Iterable[str]) -> array:
        """Intern a record's tokens to a strictly increasing id column.

        Raises :class:`DataError` when a token is not interned — records
        must be admitted through :meth:`extend` (or the ordering job)
        first.
        """
        rank = self.order._rank
        try:
            ids = sorted(rank[token] for token in set(tokens))
        except KeyError as exc:
            raise DataError(
                f"token {exc.args[0]!r} not in the vocabulary"
            ) from None
        return array(ID_TYPECODE, ids)

    def encode_known(self, tokens: Iterable[str]) -> Tuple[List[int], int]:
        """Intern the known tokens of a probe; count the unknown ones.

        Returns ``(sorted known ids, n_unknown)`` — the raw material of an
        :class:`~repro.service.index.EncodedQuery`.  Unknown tokens can
        match nothing but still enlarge the query set, so the caller keeps
        the count for the size-dependent bounds.
        """
        rank = self.order._rank
        ids: List[int] = []
        unknown = 0
        for token in set(tokens):
            tid = rank.get(token)
            if tid is None:
                unknown += 1
            else:
                ids.append(tid)
        ids.sort()
        return ids, unknown

    def decode(self, token_ids: Sequence[int]) -> Tuple[str, ...]:
        """Ids back to tokens (debugging, ``tokens_of``, tests)."""
        return self.order.decode(token_ids)

    # -- growth --------------------------------------------------------
    def extend(self, frequencies: Sequence[Tuple[str, int]]) -> int:
        """Intern unseen tokens *after* every existing id; returns the count.

        Delegates to :meth:`GlobalOrder.extend`: new tokens are appended in
        ``(frequency, token)`` order among themselves, existing ids are
        never remapped.
        """
        return self.order.extend(frequencies)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TokenVocab(size={self.size})"
