"""The persistent segment index behind the online similarity service.

FS-Join's vertical-partitioning machinery (global ordering → pivots →
disjoint segments) is used offline as a *shuffle key*: fragments exist only
for the duration of one filter job.  :class:`SegmentIndex` turns the same
machinery into a *queryable index*:

* the corpus is rank-encoded under one :class:`~repro.core.ordering.GlobalOrder`
  and split at Even-TF pivots exactly as the filter job's map phase does;
* every segment is posted into its fragment's inverted lists —
  ``token rank → [(record id, position in segment), ...]`` — so a probe
  touches only the fragments and posting lists its own prefix tokens hit;
* each record keeps its full rank tuple and its per-fragment
  :class:`~repro.core.partitioning.Segment` objects (the ``segInfo``
  metadata of Definition 6), so the StrL/SegL/SegI/SegD lemmas of
  :mod:`repro.core.filters` apply to probe/candidate pairs verbatim.

A probe is exact: candidate generation uses the record-level prefix filter
(complete because the index stores *all* tokens while the probe scans only
its prefix — any pair with ``sim ≥ θ`` must collide on a probed token), the
fragment filters only discard pairs the lemmas prove dissimilar, and
survivors go through the same early-terminating merge + threshold rule as
:func:`repro.similarity.verify.verify_pair`.  ``tests/test_service_index.py``
property-tests that ``probe`` returns precisely the partner set
``FSJoin.run`` produces, for several θ and similarity functions.

The index is θ- and function-agnostic: both are probe-time arguments, so
one snapshot serves every threshold (this is what lets
:func:`repro.core.topk.topk_similar_pairs` reuse it across relaxation
rounds).
"""

from __future__ import annotations

import time
from collections import Counter as TokenCounter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import FilterConfig
from repro.core.filters import FragmentFilters
from repro.core.joins import bounded_merge_intersection
from repro.core.ordering import GlobalOrder, compute_global_ordering
from repro.core.partitioning import Segment, SegmentInfo, VerticalPartitioner
from repro.core.pivots import PivotMethod, select_pivots
from repro.data.records import Record, RecordCollection
from repro.errors import DataError
from repro.mapreduce.counters import Counters
from repro.mapreduce.runtime import SimulatedCluster
from repro.observability.tracer import NOOP_TRACER, Tracer
from repro.similarity.functions import SimilarityFunction
from repro.similarity.thresholds import (
    length_lower_bound,
    prefix_length,
    required_overlap,
)
from repro.similarity.verify import verify_overlap

#: Counter group for probe-side work (mirrors ``fsjoin.filter`` naming).
PROBE_GROUP = "service.probe"

#: A posting entry: (record id, token's position within that segment).
Posting = Tuple[int, int]

#: A candidate's first prefix collision: (fragment, query pos, segment pos).
FirstHit = Tuple[int, int, int]


@dataclass(frozen=True)
class SearchHit:
    """One search result: an indexed record and its exact similarity."""

    rid: int
    score: float


@dataclass(frozen=True)
class EncodedQuery:
    """A probe after rank encoding.

    ``ranks`` are the query tokens known to the index's global ordering
    (strictly increasing); ``n_unknown`` counts tokens outside it.  Unknown
    tokens can match nothing, but they still enlarge the query set, so they
    take part in every size-dependent bound.
    """

    ranks: Tuple[int, ...]
    n_unknown: int

    @property
    def size(self) -> int:
        return len(self.ranks) + self.n_unknown


class SegmentIndex:
    """Vertical-partitioned inverted index over a record collection.

    Build once with :meth:`build`, extend with :meth:`apply_batch`, persist
    with :mod:`repro.service.snapshot`.  Probing is read-only and safe to
    share across threads.
    """

    def __init__(
        self,
        order: GlobalOrder,
        partitioner: VerticalPartitioner,
        pivot_method: PivotMethod = PivotMethod.EVEN_TF,
    ) -> None:
        self.order = order
        self.partitioner = partitioner
        self.pivot_method = PivotMethod(pivot_method)
        #: rid → full rank tuple (strictly increasing).
        self._ranks: Dict[int, Tuple[int, ...]] = {}
        #: rid → {fragment id → segment} (``segInfo`` + tokens).
        self._segments: Dict[int, Dict[int, Segment]] = {}
        #: fragment id → token rank → postings.
        self._postings: List[Dict[int, List[Posting]]] = [
            {} for _ in range(partitioner.n_partitions)
        ]

    # -- construction --------------------------------------------------
    @classmethod
    def build(
        cls,
        records: RecordCollection,
        n_vertical: int = 30,
        pivot_method: PivotMethod = PivotMethod.EVEN_TF,
        pivot_seed: int = 0,
        cluster: Optional[SimulatedCluster] = None,
    ) -> "SegmentIndex":
        """Index a collection, reusing the ordering job and pivot selection."""
        cluster = cluster or SimulatedCluster()
        order, _ = compute_global_ordering(cluster, records)
        cuts = select_pivots(
            order.rank_frequencies, n_vertical, method=pivot_method, seed=pivot_seed
        )
        index = cls(order, VerticalPartitioner(cuts), pivot_method)
        for record in records:
            index._insert(record)
        return index

    def _insert(self, record: Record) -> None:
        if record.rid in self._ranks:
            raise DataError(f"record id {record.rid} already indexed")
        ranks = self.order.encode(record)
        self._ranks[record.rid] = ranks
        segments: Dict[int, Segment] = {}
        for v, segment in self.partitioner.split(record.rid, ranks):
            segments[v] = segment
            postings = self._postings[v]
            for pos, token in enumerate(segment.tokens):
                postings.setdefault(token, []).append((record.rid, pos))
        self._segments[record.rid] = segments

    def apply_batch(self, new_records: Iterable[Record]) -> int:
        """Extend the index with new records (the incremental-join hook).

        Mirrors :class:`repro.core.incremental.IncrementalSelfJoin`:
        duplicate record ids raise :class:`DataError` *before* anything is
        inserted, so a rejected batch leaves the index untouched.  Tokens
        outside the global ordering are appended after the existing ranks
        (ordered among themselves by batch frequency) via
        :meth:`GlobalOrder.extend`: existing ranks — and therefore the
        existing postings and pivot cuts — stay valid, at the price of the
        new tokens all landing in the last fragment.  Probe exactness only
        needs *a* fixed total order, not a frequency-fresh one, so results
        remain exact; rebuild periodically if fragment balance drifts.
        """
        batch = list(new_records)
        seen: set = set()
        for record in batch:
            if record.rid in self._ranks or record.rid in seen:
                raise DataError(f"record id {record.rid} already indexed")
            seen.add(record.rid)
        fresh = TokenCounter(
            token
            for record in batch
            for token in record.tokens
            if not self.order.knows(token)
        )
        self.order.extend(fresh.items())
        for record in batch:
            self._insert(record)
        return len(batch)

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        return len(self._ranks)

    def __contains__(self, rid: int) -> bool:
        return rid in self._ranks

    @property
    def n_fragments(self) -> int:
        return self.partitioner.n_partitions

    def rids(self) -> List[int]:
        """Indexed record ids, ascending."""
        return sorted(self._ranks)

    def tokens_of(self, rid: int) -> Tuple[str, ...]:
        """The indexed record's tokens (decoded, global-order sorted)."""
        try:
            ranks = self._ranks[rid]
        except KeyError:
            raise DataError(f"no record with id {rid} in the index") from None
        return self.order.decode(ranks)

    def fragment_loads(self) -> List[int]:
        """Posting entries per fragment — the placement weights of
        :func:`repro.cluster.plan.plan_shards` (and a direct view of how
        evenly the pivots split the corpus)."""
        return [
            sum(len(plist) for plist in frag.values()) for frag in self._postings
        ]

    def posting_stats(self) -> Dict[str, int]:
        """Aggregate index-shape numbers (for logs and benches)."""
        return {
            "records": len(self._ranks),
            "fragments": self.n_fragments,
            "vocab": self.order.vocab_size,
            "postings": sum(
                len(plist) for frag in self._postings for plist in frag.values()
            ),
        }

    # -- probing -------------------------------------------------------
    def encode_query(self, tokens: Iterable[str]) -> EncodedQuery:
        """Canonicalize probe tokens: dedupe, rank-encode, count unknowns."""
        unique = set(tokens)
        ranks: List[int] = []
        unknown = 0
        for token in unique:
            if self.order.knows(token):
                ranks.append(self.order.rank(token))
            else:
                unknown += 1
        ranks.sort()
        return EncodedQuery(tuple(ranks), unknown)

    def probe(
        self,
        tokens: Iterable[str],
        theta: float,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        filters: Optional[FilterConfig] = None,
        counters: Optional[Counters] = None,
        tracer: Optional[Tracer] = None,
    ) -> List[SearchHit]:
        """Exact similarity search: all indexed records with ``sim ≥ θ``.

        Results are sorted best first (ties by record id).  The query
        record itself — when indexed — appears like any other partner;
        callers that probe by an indexed record exclude its own id.
        """
        query = self.encode_query(tokens)
        return self.probe_encoded(query, theta, func, filters, counters, tracer)

    def probe_encoded(
        self,
        query: EncodedQuery,
        theta: float,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        filters: Optional[FilterConfig] = None,
        counters: Optional[Counters] = None,
        tracer: Optional[Tracer] = None,
    ) -> List[SearchHit]:
        """Probe with an already-encoded query (the cacheable inner path).

        ``tracer``, when enabled, records the probe stages as spans:
        ``prefix-filter`` (posting scans), then the per-stage accumulations
        of :meth:`_evaluate` (``positional-bound``, ``fragment-filters``,
        ``verification``).  Tracing never changes results.
        """
        func = SimilarityFunction(func)
        filters = filters if filters is not None else FilterConfig()
        tracer = tracer if tracer is not None else NOOP_TRACER
        with tracer.span("prefix-filter", phase="service") as span:
            candidates = self._candidates(query, theta, func, counters)
            span.attrs["candidates"] = len(candidates)
        return self._evaluate(
            query, candidates, theta, func, filters, counters, tracer
        )

    def probe_batch(
        self,
        queries: Sequence[EncodedQuery],
        theta: float,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        filters: Optional[FilterConfig] = None,
        counters: Optional[Counters] = None,
        tracer: Optional[Tracer] = None,
    ) -> List[List[SearchHit]]:
        """Probe many queries with fragment-grouped posting scans.

        Per fragment, the distinct probe tokens of *all* queries are looked
        up once and fanned out to every query that carries the token, so
        shared tokens cost one posting scan instead of one per query (the
        ``posting_lookups`` counter makes the saving measurable).
        Filtering/verification then runs per query, identical to
        :meth:`probe_encoded`.
        """
        func = SimilarityFunction(func)
        filters = filters if filters is not None else FilterConfig()
        tracer = tracer if tracer is not None else NOOP_TRACER
        with tracer.span("prefix-filter", phase="service", queries=len(queries)):
            # Fragment → token → (query index, token position in query).
            grouped: List[Dict[int, List[Tuple[int, int]]]] = [
                {} for _ in range(self.n_fragments)
            ]
            for qi, query in enumerate(queries):
                for v, token, qpos in self._probe_tokens(query, theta, func):
                    grouped[v].setdefault(token, []).append((qi, qpos))
            candidate_sets: List[Dict[int, FirstHit]] = [{} for _ in queries]
            for v, token_map in enumerate(grouped):
                postings = self._postings[v]
                for token, probes in token_map.items():
                    _bump(counters, "posting_lookups")
                    for rid, pos in postings.get(token, ()):
                        for qi, qpos in probes:
                            candidate_sets[qi].setdefault(rid, (v, qpos, pos))
        return [
            self._evaluate(
                query, candidate_sets[qi], theta, func, filters, counters, tracer
            )
            for qi, query in enumerate(queries)
        ]

    def self_join(
        self,
        theta: float,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        filters: Optional[FilterConfig] = None,
        counters: Optional[Counters] = None,
    ) -> Dict[Tuple[int, int], float]:
        """All indexed pairs with ``sim ≥ θ`` — the probe-side self-join.

        Returns the same ``(rid_small, rid_large) → score`` map as
        ``FSJoin.run(corpus).result_pairs`` over the indexed corpus; this
        is what lets :func:`repro.core.topk.topk_similar_pairs` relax the
        threshold without re-running the offline pipeline.
        """
        queries = [EncodedQuery(self._ranks[rid], 0) for rid in self.rids()]
        results = self.probe_batch(queries, theta, func, filters, counters)
        pairs: Dict[Tuple[int, int], float] = {}
        for rid, hits in zip(self.rids(), results):
            for hit in hits:
                if hit.rid == rid:
                    continue
                key = (rid, hit.rid) if rid < hit.rid else (hit.rid, rid)
                pairs[key] = hit.score
        return pairs

    # -- internals -----------------------------------------------------
    def _probe_tokens(
        self, query: EncodedQuery, theta: float, func: SimilarityFunction
    ):
        """Yield ``(fragment, token)`` for the query's prefix tokens.

        The record-level prefix filter: if ``sim(q, t) ≥ θ`` then
        ``|q ∩ t| ≥ τ_min(|q|)``, and at most ``τ_min − 1`` of those common
        tokens can sit beyond the first ``|q| − τ_min + 1`` positions — so
        probing the prefix against the *full-token* postings cannot miss a
        result.  Unknown tokens are modelled as ranks beyond the vocabulary
        (they sort last), so the probed prefix is the first
        ``min(P, known)`` known ranks.
        """
        if not query.ranks:
            return
        limit = min(prefix_length(func, theta, query.size), len(query.ranks))
        prefix = query.ranks[:limit]
        for v, segment in self.partitioner.split(-1, prefix):
            # ``ahead`` of a prefix segment equals the token's global
            # position in the full query (a prefix is itself a prefix of
            # every segment it touches).
            for offset, token in enumerate(segment.tokens):
                yield v, token, segment.info.ahead + offset

    def _candidates(
        self,
        query: EncodedQuery,
        theta: float,
        func: SimilarityFunction,
        counters: Optional[Counters],
    ) -> Dict[int, "FirstHit"]:
        """Candidates colliding with the probe prefix, with their first hit.

        The first collision's coordinates — fragment, position in the
        query, position in the indexed segment — feed the positional
        filter in :meth:`_evaluate`.
        """
        candidates: Dict[int, FirstHit] = {}
        for v, token, qpos in self._probe_tokens(query, theta, func):
            _bump(counters, "posting_lookups")
            for rid, pos in self._postings[v].get(token, ()):
                candidates.setdefault(rid, (v, qpos, pos))
        return candidates

    def _query_segments(self, query: EncodedQuery) -> List[Tuple[int, Segment]]:
        """Split the query like an indexed record, sizes counting unknowns.

        Unknown tokens are placed after every known rank, which makes them
        trailing members of the query's token sequence: every segment's
        ``str_len`` grows by ``n_unknown`` and every segment gains that
        many ``behind`` tokens, except that a segment in the *last*
        fragment would absorb them into itself — where the per-segment
        token list would no longer match the segment length the lemmas
        see.  The caller therefore disables the segment lemmas for
        unknown-token probes (see :meth:`_evaluate`); StrL only needs the
        corrected ``str_len``.
        """
        split = self.partitioner.split(-1, query.ranks)
        if not query.n_unknown:
            return split
        adjusted = []
        for v, segment in split:
            info = segment.info
            adjusted.append(
                (
                    v,
                    Segment(
                        SegmentInfo(
                            rid=info.rid,
                            str_len=info.str_len + query.n_unknown,
                            ahead=info.ahead,
                            behind=info.behind + query.n_unknown,
                        ),
                        segment.tokens,
                    ),
                )
            )
        return adjusted

    def _evaluate(
        self,
        query: EncodedQuery,
        candidates: Dict[int, "FirstHit"],
        theta: float,
        func: SimilarityFunction,
        filter_config: FilterConfig,
        counters: Optional[Counters],
        tracer: Tracer = NOOP_TRACER,
    ) -> List[SearchHit]:
        """Filter candidates fragment-wise, then verify survivors exactly.

        With an enabled tracer, the per-candidate stage costs are summed
        into three spans per probe — ``positional-bound``,
        ``fragment-filters`` and ``verification`` — because one span per
        candidate would dwarf the work being measured.
        """
        _bump(counters, "probes")
        if not candidates:
            return []
        traced = tracer.enabled
        positional_clock = _StageClock() if traced else None
        fragment_clock = _StageClock() if traced else None
        verify_clock = _StageClock() if traced else None
        if query.n_unknown:
            # The segment lemmas assume the segment token lists they see
            # are complete; unknown probe tokens break that for the last
            # fragment (see _query_segments), so fall back to StrL + the
            # early-terminating verify — still exact, just less pruning.
            filter_config = FilterConfig(
                strl=filter_config.strl, segl=False, segi=False, segd=False,
                early_verify=filter_config.early_verify,
            )
        filters = FragmentFilters(theta, func, filter_config)
        query_segments = self._query_segments(query)
        qseg_by_fragment = dict(query_segments)
        positional = filter_config.segi or filter_config.segd
        size_q = query.size
        min_partner = length_lower_bound(func, theta, size_q) if filter_config.strl else 0
        hits: List[SearchHit] = []
        for rid, first_hit in candidates.items():
            _bump(counters, "candidates")
            t_ranks = self._ranks[rid]
            size_t = len(t_ranks)
            # Record-level StrL (Lemma 1) before any segment work.
            if filter_config.strl:
                small, large = (size_q, size_t) if size_q <= size_t else (size_t, size_q)
                lower = min_partner if large == size_t else length_lower_bound(
                    func, theta, large
                )
                if small < lower:
                    _bump(counters, "pruned_strl")
                    continue
            if positional:
                if positional_clock:
                    positional_clock.start()
                pruned_positional = self._positional_prune(
                    first_hit, qseg_by_fragment, self._segments[rid], filters
                )
                if positional_clock:
                    positional_clock.stop()
                if pruned_positional:
                    _bump(counters, "pruned_positional")
                    continue
            if fragment_clock:
                fragment_clock.start()
            survives = self._survives_fragments(
                query_segments, self._segments[rid], filters, counters
            )
            if fragment_clock:
                fragment_clock.stop()
            if not survives:
                continue
            if verify_clock:
                verify_clock.start()
            hit = self._verify(query, t_ranks, size_t, theta, func,
                               filter_config.early_verify, counters)
            if verify_clock:
                verify_clock.stop()
            if hit is not None:
                hits.append(SearchHit(rid, hit))
                _bump(counters, "results")
        if traced:
            positional_clock.emit(tracer, "positional-bound")
            fragment_clock.emit(tracer, "fragment-filters")
            verify_clock.emit(tracer, "verification")
        hits.sort(key=lambda hit: (-hit.score, hit.rid))
        return hits

    @staticmethod
    def _positional_prune(
        first_hit: "FirstHit",
        qseg_by_fragment: Dict[int, Segment],
        t_segments: Dict[int, Segment],
        filters: FragmentFilters,
    ) -> bool:
        """PPJoin's positional filter, per fragment (postings carry positions).

        At the first collision — query-segment position ``i``, indexed
        segment position ``j`` — the fragment intersection is at most
        ``min(i, j) + 1 + min(remaining_q, remaining_t)`` (both segments
        are sorted by rank, so matches before/after the collision token
        are bounded by the shorter flank).  When even that upper bound is
        below the smallest intersection surviving SegI/SegD, the pair is
        provably dissimilar and no merge needs to run.
        """
        v, qpos, tpos = first_hit
        qseg = qseg_by_fragment[v]
        tseg = t_segments[v]
        i = qpos - qseg.info.ahead
        upper = (
            min(i, tpos)
            + 1
            + min(len(qseg) - i - 1, len(tseg) - tpos - 1)
        )
        return upper < filters.min_required_common(qseg, tseg)

    def _survives_fragments(
        self,
        query_segments: List[Tuple[int, Segment]],
        t_segments: Dict[int, Segment],
        filters: FragmentFilters,
        counters: Optional[Counters],
    ) -> bool:
        """Apply the SegL/SegI/SegD lemmas in every shared fragment.

        Each lemma is safe per fragment (its proof needs only one
        fragment's view), so a single pruning fragment is enough to
        discard the pair — exactly the suppression a reduce task performs
        in the offline filter job.
        """
        for v, qseg in query_segments:
            tseg = t_segments.get(v)
            if tseg is None:
                continue
            pruned = filters.pre_intersection(qseg, tseg)
            if pruned:
                _bump(counters, f"pruned_{pruned}")
                return False
            if not (filters.config.segi or filters.config.segd):
                continue
            required = (
                filters.min_required_common(qseg, tseg)
                if filters.early_termination
                else 1
            )
            common, comparisons, completed = bounded_merge_intersection(
                qseg.tokens, tseg.tokens, required
            )
            _bump(counters, "filter_token_comparisons", comparisons)
            if not completed:
                # The merge was abandoned because even a full remaining
                # suffix match could not satisfy SegI/SegD — the pair is
                # provably below threshold.
                _bump(counters, "pruned_overlap_bound")
                return False
            pruned = filters.post_intersection(qseg, tseg, common)
            if pruned:
                _bump(counters, f"pruned_{pruned}")
                return False
        return True

    def _verify(
        self,
        query: EncodedQuery,
        t_ranks: Tuple[int, ...],
        size_t: int,
        theta: float,
        func: SimilarityFunction,
        early_termination: bool,
        counters: Optional[Counters],
    ) -> Optional[float]:
        """Exact verification — ``verify_pair``'s early-terminating merge.

        Unknown query tokens intersect nothing, so the merge runs over the
        known ranks while the threshold rule sees the full query size;
        with no unknowns this is exactly
        ``verify_pair(q, t, θ, func, sorted_input=True)``.
        """
        size_q = query.size
        required = (
            required_overlap(func, theta, size_q, size_t)
            if early_termination
            else 1
        )
        common, comparisons, _completed = bounded_merge_intersection(
            query.ranks, t_ranks, required
        )
        _bump(counters, "verified_pairs")
        _bump(counters, "verify_token_comparisons", comparisons)
        return verify_overlap(func, theta, common, size_q, size_t)


class _StageClock:
    """Accumulates one probe stage's wall time across many candidates.

    Emitted as a single span whose ``start`` is the stage's first entry and
    whose ``duration`` is the summed in-stage time — per-candidate spans
    would cost more than the microseconds they measure.
    """

    __slots__ = ("first", "total", "calls", "_entered")

    def __init__(self) -> None:
        self.first: Optional[float] = None
        self.total = 0.0
        self.calls = 0
        self._entered = 0.0

    def start(self) -> None:
        self._entered = time.perf_counter()
        if self.first is None:
            self.first = self._entered

    def stop(self) -> None:
        self.total += time.perf_counter() - self._entered
        self.calls += 1

    def emit(self, tracer: Tracer, name: str) -> None:
        if self.first is not None:
            tracer.add(name, "service", self.first, self.total, calls=self.calls)


def _bump(counters: Optional[Counters], name: str, amount: int = 1) -> None:
    if counters is not None and amount:
        counters.increment(PROBE_GROUP, name, amount)
