"""The persistent segment index behind the online similarity service.

FS-Join's vertical-partitioning machinery (global ordering → pivots →
disjoint segments) is used offline as a *shuffle key*: fragments exist only
for the duration of one filter job.  :class:`SegmentIndex` turns the same
machinery into a *queryable index*:

* the corpus is interned under one :class:`~repro.service.vocab.TokenVocab`
  (dense integer ids in global frequency order) and split at Even-TF pivots
  exactly as the filter job's map phase does;
* every fragment's postings live in a :class:`~repro.service.columnar.
  FragmentPostings` — flat ``array`` columns mapping token id → a
  contiguous ``(rid, pos)`` run — so a probe batch scans each posting run
  with plain integer reads and zero per-entry allocations;
* each record keeps its full id column (``array('l')``) and its per-fragment
  segment *bounds* — flat ``(fragment, start, end)`` triples from which the
  ``segInfo`` of Definition 6 (``str_len``, ``ahead``, ``behind``) is two
  subtractions away — so the StrL/SegL/SegI/SegD lemmas of
  :mod:`repro.core.filters` apply to probe/candidate pairs as pure integer
  arithmetic.

A probe is exact: candidate generation uses the record-level prefix filter
(complete because the index stores *all* tokens while the probe scans only
its prefix — any pair with ``sim ≥ θ`` must collide on a probed token), the
fragment filters only discard pairs the lemmas prove dissimilar, and
survivors go through the same early-terminating merge + threshold rule as
:func:`repro.similarity.verify.verify_pair`.  ``tests/test_service_index.py``
property-tests that ``probe`` returns precisely the partner set
``FSJoin.run`` produces, for several θ and similarity functions.

Two probe paths share this contract and return bit-identical results:

* ``probe_path="columnar"`` (the default) — batched candidate generation
  over the flat posting columns, with the filter battery inlined and its
  threshold algebra (``required_overlap``/``length_lower_bound``) cached
  per partner size; this is the hot path.
* ``probe_path="legacy"`` — the original object-per-segment evaluator,
  kept as the reference the CI ``columnar-smoke`` job diffs against (it
  reads memoized dict/:class:`~repro.core.partitioning.Segment` views of
  the same columnar storage).

**Result-ordering contract**: every probe's hit list is sorted by
``(-score, rid)`` — descending score, ascending record id on ties — and
``probe_batch`` returns lists aligned with its input queries in input
order.  The order is deterministic on both probe paths and across the
serial, thread and process fan-outs of
:meth:`repro.service.service.SimilarityService.search_batch`
(``tests/test_service_columnar.py`` regression-tests this).

The index is θ- and function-agnostic: both are probe-time arguments, so
one snapshot serves every threshold (this is what lets
:func:`repro.core.topk.topk_similar_pairs` reuse it across relaxation
rounds).
"""

from __future__ import annotations

import time
from array import array
from collections import Counter as TokenCounter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import FilterConfig
from repro.core.filters import FragmentFilters
from repro.core.joins import bounded_merge_intersection
from repro.core.ordering import GlobalOrder, compute_global_ordering
from repro.core.partitioning import Segment, SegmentInfo, VerticalPartitioner
from repro.core.pivots import PivotMethod, select_pivots
from repro.data.records import Record, RecordCollection
from repro.errors import ConfigError, DataError
from repro.mapreduce.counters import Counters
from repro.mapreduce.runtime import SimulatedCluster
from repro.observability.tracer import NOOP_TRACER, Tracer
from repro.service.columnar import ID_TYPECODE, FragmentPostings
from repro.service.vocab import TokenVocab
from repro.similarity.functions import SimilarityFunction
from repro.similarity.thresholds import (
    length_lower_bound,
    prefix_length,
    required_overlap,
)
from repro.similarity.verify import verify_overlap

#: Counter group for probe-side work (mirrors ``fsjoin.filter`` naming).
PROBE_GROUP = "service.probe"

#: A posting entry: (record id, token's position within that segment).
Posting = Tuple[int, int]

#: A candidate's first prefix collision: (fragment, query pos, segment pos).
FirstHit = Tuple[int, int, int]

#: Valid values of :attr:`SegmentIndex.probe_path`.
PROBE_PATHS = ("columnar", "legacy")


@dataclass(frozen=True)
class SearchHit:
    """One search result: an indexed record and its exact similarity."""

    rid: int
    score: float


@dataclass(frozen=True)
class EncodedQuery:
    """A probe after interning.

    ``ranks`` are the query tokens known to the index's vocabulary
    (strictly increasing ids); ``n_unknown`` counts tokens outside it.
    Unknown tokens can match nothing, but they still enlarge the query
    set, so they take part in every size-dependent bound.

    ``ranks`` stays a plain tuple — it is hashed by the cluster router's
    deterministic retry backoff and compared by the dedup layers — while
    :attr:`ids` offers the same ids as a cached ``array('l')`` column for
    the kernels that want a buffer.
    """

    ranks: Tuple[int, ...]
    n_unknown: int

    @property
    def size(self) -> int:
        return len(self.ranks) + self.n_unknown

    @property
    def ids(self) -> array:
        """The query's id column (``array('l')`` view of ``ranks``, cached)."""
        cached = self.__dict__.get("_ids")
        if cached is None:
            cached = array(ID_TYPECODE, self.ranks)
            object.__setattr__(self, "_ids", cached)
        return cached


class SegmentIndex:
    """Vertical-partitioned inverted index over a record collection.

    Build once with :meth:`build`, extend with :meth:`apply_batch`, persist
    with :mod:`repro.service.snapshot`.  Probing is read-only and safe to
    share across threads.
    """

    def __init__(
        self,
        order: GlobalOrder,
        partitioner: VerticalPartitioner,
        pivot_method: PivotMethod = PivotMethod.EVEN_TF,
    ) -> None:
        self.order = order
        self.vocab = TokenVocab(order)
        self.partitioner = partitioner
        self.pivot_method = PivotMethod(pivot_method)
        #: which evaluator ``probe*`` uses: "columnar" (default) | "legacy".
        self.probe_path: str = "columnar"
        #: rid → full token-id column (strictly increasing ``array('l')``).
        self._ranks: Dict[int, array] = {}
        #: rid → flat ``(fragment, start, end)`` triples over the id column.
        self._segbounds: Dict[int, Tuple[int, ...]] = {}
        #: fragment id → columnar posting lists.
        self._postings: List[FragmentPostings] = [
            FragmentPostings() for _ in range(partitioner.n_partitions)
        ]
        #: memoized dict/Segment views for the legacy probe path.
        self._legacy_cache = None

    # -- construction --------------------------------------------------
    @classmethod
    def build(
        cls,
        records: RecordCollection,
        n_vertical: int = 30,
        pivot_method: PivotMethod = PivotMethod.EVEN_TF,
        pivot_seed: int = 0,
        cluster: Optional[SimulatedCluster] = None,
    ) -> "SegmentIndex":
        """Index a collection, reusing the ordering job and pivot selection."""
        cluster = cluster or SimulatedCluster()
        order, _ = compute_global_ordering(cluster, records)
        cuts = select_pivots(
            order.rank_frequencies, n_vertical, method=pivot_method, seed=pivot_seed
        )
        index = cls(order, VerticalPartitioner(cuts), pivot_method)
        for record in records:
            index._insert(record)
        index._seal()
        return index

    def _insert(self, record: Record) -> None:
        if record.rid in self._ranks:
            raise DataError(f"record id {record.rid} already indexed")
        if record.rid.bit_length() >= 63:
            raise DataError(
                f"record id {record.rid} does not fit the index's 64-bit "
                "posting columns"
            )
        try:
            ids = self.vocab.encode_record(record.tokens)
        except DataError as exc:
            raise DataError(f"record {record.rid}: {exc}") from None
        self._ranks[record.rid] = ids
        bounds = self.partitioner.split_bounds(ids)
        flat: List[int] = []
        for v, start, end in bounds:
            flat.extend((v, start, end))
            postings = self._postings[v]
            for pos in range(end - start):
                postings.add(ids[start + pos], record.rid, pos)
        self._segbounds[record.rid] = tuple(flat)
        self._legacy_cache = None

    def _seal(self) -> None:
        """Merge staged posting inserts into the flat columns."""
        for postings in self._postings:
            postings.seal()

    def apply_batch(self, new_records: Iterable[Record]) -> int:
        """Extend the index with new records (the incremental-join hook).

        Mirrors :class:`repro.core.incremental.IncrementalSelfJoin`:
        duplicate record ids raise :class:`DataError` *before* anything is
        inserted, so a rejected batch leaves the index untouched.  Tokens
        outside the vocabulary are interned after every existing id
        (ordered among themselves by batch frequency) via
        :meth:`TokenVocab.extend`: existing ids — and therefore the
        existing posting columns and pivot cuts — stay valid, at the price
        of the new tokens all landing in the last fragment.  Probe
        exactness only needs *a* fixed total order, not a frequency-fresh
        one, so results remain exact; rebuild periodically if fragment
        balance drifts.
        """
        batch = list(new_records)
        seen: set = set()
        for record in batch:
            if record.rid in self._ranks or record.rid in seen:
                raise DataError(f"record id {record.rid} already indexed")
            if record.rid.bit_length() >= 63:
                # Validate *before* any mutation: this check also lives in
                # _insert, but by then the vocab is extended and earlier
                # batch records are inserted — the batch must be all-or-
                # nothing for snapshot-during-write consistency.
                raise DataError(
                    f"record id {record.rid} does not fit the index's "
                    "64-bit posting columns"
                )
            seen.add(record.rid)
        fresh = TokenCounter(
            token
            for record in batch
            for token in record.tokens
            if not self.vocab.knows(token)
        )
        self.vocab.extend(fresh.items())
        for record in batch:
            self._insert(record)
        self._seal()
        return len(batch)

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        return len(self._ranks)

    def __contains__(self, rid: int) -> bool:
        return rid in self._ranks

    @property
    def n_fragments(self) -> int:
        return self.partitioner.n_partitions

    def rids(self) -> List[int]:
        """Indexed record ids, ascending."""
        return sorted(self._ranks)

    def tokens_of(self, rid: int) -> Tuple[str, ...]:
        """The indexed record's tokens (decoded, global-order sorted)."""
        try:
            ranks = self._ranks[rid]
        except KeyError:
            raise DataError(f"no record with id {rid} in the index") from None
        return self.vocab.decode(ranks)

    def fragment_loads(self) -> List[int]:
        """Posting entries per fragment — the placement weights of
        :func:`repro.cluster.plan.plan_shards` (and a direct view of how
        evenly the pivots split the corpus)."""
        return [len(postings) for postings in self._postings]

    def posting_stats(self) -> Dict[str, int]:
        """Aggregate index-shape numbers (for logs, benches and status).

        ``posting_bytes`` and ``record_bytes`` are *actual* columnar
        memory — summed ``array.buffer_info()[1] * itemsize`` over the
        posting columns and the per-record id columns — not estimates.
        """
        self._seal()
        return {
            "records": len(self._ranks),
            "fragments": self.n_fragments,
            "vocab": self.vocab.size,
            "postings": sum(len(postings) for postings in self._postings),
            "posting_bytes": sum(
                postings.nbytes() for postings in self._postings
            ),
            "record_bytes": sum(
                column.buffer_info()[1] * column.itemsize
                for column in self._ranks.values()
            ),
        }

    def fragment_digest(self, fragment: int) -> str:
        """Canonical sha256 of one fragment's *content*.

        Hashed over the fragment's posting runs in sorted token order plus
        the id column and segment bounds of every record posting in it —
        not over pickle bytes — so two indexes that answer identically
        digest identically, however they were built, and any silent
        mutation of a posting column, a rank array or the bounds flips the
        digest.  This is what the cluster's anti-entropy scrubber compares
        across replicas of a shard.
        """
        import hashlib

        postings = self._postings[fragment]
        if postings._pending:
            postings.seal()
        hasher = hashlib.sha256()
        runs = postings.to_dict()
        for token in sorted(runs):
            hasher.update(
                repr((token, sorted(runs[token]))).encode("utf-8")
            )
        for rid in sorted(set(postings.rids)):
            hasher.update(
                repr((rid, tuple(self._ranks[rid]),
                      tuple(self._segbounds[rid]))).encode("utf-8")
            )
        return hasher.hexdigest()

    def content_digests(self) -> Dict[int, str]:
        """Per-fragment content digests (see :meth:`fragment_digest`)."""
        return {v: self.fragment_digest(v) for v in range(self.n_fragments)}

    # -- probing -------------------------------------------------------
    def encode_query(self, tokens: Iterable[str]) -> EncodedQuery:
        """Canonicalize probe tokens: dedupe, intern, count unknowns."""
        ids, unknown = self.vocab.encode_known(tokens)
        return EncodedQuery(tuple(ids), unknown)

    def probe(
        self,
        tokens: Iterable[str],
        theta: float,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        filters: Optional[FilterConfig] = None,
        counters: Optional[Counters] = None,
        tracer: Optional[Tracer] = None,
    ) -> List[SearchHit]:
        """Exact similarity search: all indexed records with ``sim ≥ θ``.

        Results are sorted best first (ties by record id).  The query
        record itself — when indexed — appears like any other partner;
        callers that probe by an indexed record exclude its own id.
        """
        query = self.encode_query(tokens)
        return self.probe_encoded(query, theta, func, filters, counters, tracer)

    def probe_encoded(
        self,
        query: EncodedQuery,
        theta: float,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        filters: Optional[FilterConfig] = None,
        counters: Optional[Counters] = None,
        tracer: Optional[Tracer] = None,
    ) -> List[SearchHit]:
        """Probe with an already-encoded query (the cacheable inner path).

        ``tracer``, when enabled, records the probe stages as spans:
        ``prefix-filter`` (posting scans), then the per-stage accumulations
        of the evaluator (``positional-bound``, ``fragment-filters``,
        ``verification``).  Tracing never changes results, and both probe
        paths emit the same span names.
        """
        func = SimilarityFunction(func)
        filters = filters if filters is not None else FilterConfig()
        tracer = tracer if tracer is not None else NOOP_TRACER
        columnar = self._use_columnar()
        with tracer.span("prefix-filter", phase="service") as span:
            if columnar:
                candidates = self._candidates_columnar(query, theta, func,
                                                       counters)
            else:
                candidates = self._candidates(query, theta, func, counters)
            span.attrs["candidates"] = len(candidates)
        if columnar:
            return self._evaluate_columnar(
                query, candidates, theta, func, filters, counters, tracer
            )
        return self._evaluate(
            query, candidates, theta, func, filters, counters, tracer
        )

    def probe_batch(
        self,
        queries: Sequence[EncodedQuery],
        theta: float,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        filters: Optional[FilterConfig] = None,
        counters: Optional[Counters] = None,
        tracer: Optional[Tracer] = None,
    ) -> List[List[SearchHit]]:
        """Probe many queries with fragment-grouped posting scans.

        Per fragment, the distinct probe tokens of *all* queries are looked
        up once and fanned out to every query that carries the token, so
        shared tokens cost one posting scan instead of one per query (the
        ``posting_lookups`` counter makes the saving measurable).
        Filtering/verification then runs per query, identical to
        :meth:`probe_encoded`.

        The returned lists align with ``queries`` (input order) and each
        hit list follows the module's ``(-score, rid)`` ordering contract;
        on the columnar path the grouped tokens are additionally scanned
        in ascending id order, so each candidate's recorded first hit is
        the globally smallest common prefix token — exactly what the
        sequential probe records.
        """
        func = SimilarityFunction(func)
        filters = filters if filters is not None else FilterConfig()
        tracer = tracer if tracer is not None else NOOP_TRACER
        if self._use_columnar():
            with tracer.span("prefix-filter", phase="service",
                             queries=len(queries)):
                candidate_sets = self._batch_candidates_columnar(
                    queries, theta, func, counters
                )
            # One threshold-algebra memo for the whole batch: τ(|q|, |t|)
            # and the StrL lower bounds depend only on sizes, so queries
            # share every hit.
            tau_cache: Dict[Tuple[int, int], int] = {}
            lower_cache: Dict[int, int] = {}
            return [
                self._evaluate_columnar(
                    query, candidate_sets[qi], theta, func, filters, counters,
                    tracer, tau_cache, lower_cache,
                )
                for qi, query in enumerate(queries)
            ]
        with tracer.span("prefix-filter", phase="service", queries=len(queries)):
            # Fragment → token → (query index, token position in query).
            grouped: List[Dict[int, List[Tuple[int, int]]]] = [
                {} for _ in range(self.n_fragments)
            ]
            for qi, query in enumerate(queries):
                for v, token, qpos in self._probe_tokens(query, theta, func):
                    grouped[v].setdefault(token, []).append((qi, qpos))
            candidate_sets: List[Dict[int, FirstHit]] = [{} for _ in queries]
            postings_view = self._legacy_postings()
            for v, token_map in enumerate(grouped):
                postings = postings_view[v]
                for token, probes in token_map.items():
                    _bump(counters, "posting_lookups")
                    for rid, pos in postings.get(token, ()):
                        for qi, qpos in probes:
                            candidate_sets[qi].setdefault(rid, (v, qpos, pos))
        return [
            self._evaluate(
                query, candidate_sets[qi], theta, func, filters, counters, tracer
            )
            for qi, query in enumerate(queries)
        ]

    def self_join(
        self,
        theta: float,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        filters: Optional[FilterConfig] = None,
        counters: Optional[Counters] = None,
    ) -> Dict[Tuple[int, int], float]:
        """All indexed pairs with ``sim ≥ θ`` — the probe-side self-join.

        Returns the same ``(rid_small, rid_large) → score`` map as
        ``FSJoin.run(corpus).result_pairs`` over the indexed corpus; this
        is what lets :func:`repro.core.topk.topk_similar_pairs` relax the
        threshold without re-running the offline pipeline.
        """
        queries = [
            EncodedQuery(tuple(self._ranks[rid]), 0) for rid in self.rids()
        ]
        results = self.probe_batch(queries, theta, func, filters, counters)
        pairs: Dict[Tuple[int, int], float] = {}
        for rid, hits in zip(self.rids(), results):
            for hit in hits:
                if hit.rid == rid:
                    continue
                key = (rid, hit.rid) if rid < hit.rid else (hit.rid, rid)
                pairs[key] = hit.score
        return pairs

    # -- columnar hot path ---------------------------------------------
    def _use_columnar(self) -> bool:
        path = self.probe_path
        if path == "columnar":
            return True
        if path == "legacy":
            return False
        raise ConfigError(
            f"unknown probe_path {path!r}; expected one of {PROBE_PATHS}"
        )

    def _candidates_columnar(
        self,
        query: EncodedQuery,
        theta: float,
        func: SimilarityFunction,
        counters: Optional[Counters],
    ) -> Dict[int, FirstHit]:
        """Candidates colliding with the probe prefix, with their first hit.

        Prefix tokens are scanned in ascending id order (fragments are id
        ranges), so each candidate's recorded first hit is its globally
        smallest common prefix token — the coordinates the positional
        filter uses.
        """
        candidates: Dict[int, FirstHit] = {}
        q_ids = query.ranks
        lookups = 0
        if q_ids:
            limit = min(prefix_length(func, theta, query.size), len(q_ids))
            for v, start, end in self.partitioner.split_bounds(q_ids[:limit]):
                postings = self._postings[v]
                if postings._pending:
                    postings.seal()
                slots = postings._slots
                offsets = postings.offsets
                rids = postings.rids
                positions = postings.positions
                for qpos in range(start, end):
                    lookups += 1
                    slot = slots.get(q_ids[qpos])
                    if slot is None:
                        continue
                    for k in range(offsets[slot], offsets[slot + 1]):
                        rid = rids[k]
                        if rid not in candidates:
                            candidates[rid] = (v, qpos, positions[k])
        _bump(counters, "posting_lookups", lookups)
        return candidates

    def _batch_candidates_columnar(
        self,
        queries: Sequence[EncodedQuery],
        theta: float,
        func: SimilarityFunction,
        counters: Optional[Counters],
    ) -> List[Dict[int, FirstHit]]:
        """Drive the whole probe batch through each posting run in one pass.

        Stage 1 groups every query's prefix tokens per fragment; stage 2
        walks each fragment's probed tokens in ascending id order, scans
        the token's posting run *once*, and fans each ``(rid, pos)`` entry
        out to all probing queries.  Ascending order makes each query's
        first hit identical to the sequential probe's (smallest common
        prefix token), which keeps ``probe_batch == [probe_encoded...]``
        exact — including the positional filter's inputs.
        """
        grouped: List[Dict[int, List[Tuple[int, int]]]] = [
            {} for _ in range(self.n_fragments)
        ]
        plen_cache: Dict[int, int] = {}
        for qi, query in enumerate(queries):
            q_ids = query.ranks
            if not q_ids:
                continue
            size = query.size
            plen = plen_cache.get(size)
            if plen is None:
                plen = plen_cache[size] = prefix_length(func, theta, size)
            limit = min(plen, len(q_ids))
            for v, start, end in self.partitioner.split_bounds(q_ids[:limit]):
                token_map = grouped[v]
                for qpos in range(start, end):
                    token = q_ids[qpos]
                    probes = token_map.get(token)
                    if probes is None:
                        token_map[token] = probes = []
                    probes.append((qi, qpos))
        candidate_sets: List[Dict[int, FirstHit]] = [{} for _ in queries]
        lookups = 0
        for v, token_map in enumerate(grouped):
            if not token_map:
                continue
            postings = self._postings[v]
            if postings._pending:
                postings.seal()
            slots = postings._slots
            offsets = postings.offsets
            rids = postings.rids
            positions = postings.positions
            for token in sorted(token_map):
                lookups += 1
                slot = slots.get(token)
                if slot is None:
                    continue
                probes = token_map[token]
                for k in range(offsets[slot], offsets[slot + 1]):
                    rid = rids[k]
                    pos = positions[k]
                    for qi, qpos in probes:
                        candidates = candidate_sets[qi]
                        if rid not in candidates:
                            candidates[rid] = (v, qpos, pos)
        _bump(counters, "posting_lookups", lookups)
        return candidate_sets

    def _evaluate_columnar(
        self,
        query: EncodedQuery,
        candidates: Dict[int, FirstHit],
        theta: float,
        func: SimilarityFunction,
        filter_config: FilterConfig,
        counters: Optional[Counters],
        tracer: Tracer = NOOP_TRACER,
        tau_cache: Optional[Dict[Tuple[int, int], int]] = None,
        lower_cache: Optional[Dict[int, int]] = None,
    ) -> List[SearchHit]:
        """The inlined filter battery + verification over columnar storage.

        Decision-identical to the legacy :meth:`_evaluate` (same lemmas,
        same merge bounds, same comparison counts) but with the
        per-candidate overhead flattened:

        * ``required_overlap``/``length_lower_bound`` are memoized per
          size pair — one threshold-algebra call per distinct
          ``(|q|, |t|)`` instead of three per candidate-fragment
          (``probe_batch`` shares the memo across the whole batch);
        * ``segInfo`` is recovered from the flat ``(fragment, start, end)``
          bounds with integer subtraction — no Segment objects, no
          attribute chains;
        * counters accumulate in locals and flush once per probe.
        """
        if counters is not None:
            counters.increment(PROBE_GROUP, "probes")
        if not candidates:
            return []
        traced = tracer.enabled
        positional_clock = _StageClock() if traced else None
        fragment_clock = _StageClock() if traced else None
        verify_clock = _StageClock() if traced else None
        if query.n_unknown:
            # The segment lemmas assume the segment token lists they see
            # are complete; unknown probe tokens break that for the last
            # fragment (see _query_segments), so fall back to StrL + the
            # early-terminating verify — still exact, just less pruning.
            filter_config = FilterConfig(
                strl=filter_config.strl, segl=False, segi=False, segd=False,
                early_verify=filter_config.early_verify,
            )
        strl = filter_config.strl
        segl = filter_config.segl
        segi = filter_config.segi
        segd = filter_config.segd
        early = filter_config.early_verify
        positional = segi or segd
        q_ranks = query.ranks
        n_known = len(q_ranks)
        n_unknown = query.n_unknown
        size_q = query.size
        ranks_of = self._ranks
        bounds_of = self._segbounds
        merge = bounded_merge_intersection
        # Query fragment geometry: (fragment, start, end, behind) — ahead
        # is `start`; unknown tokens sort last, so they pad every `behind`.
        qgeo = [
            (v, start, end, n_known - end + n_unknown)
            for v, start, end in self.partitioner.split_bounds(q_ranks)
        ]
        qspan_by_v = {v: (start, end) for v, start, end, _behind in qgeo}
        # Threshold algebra, memoized per size pair: τ(|q|, |t|) and the
        # StrL lower bound of the larger side.
        if tau_cache is None:
            tau_cache = {}
        if lower_cache is None:
            lower_cache = {}
        hits: List[SearchHit] = []
        n_candidates = n_results = n_verified = 0
        n_pruned_strl = n_pruned_positional = n_pruned_overlap = 0
        n_pruned_segl = n_pruned_segi = n_pruned_segd = 0
        n_filter_cmp = n_verify_cmp = 0
        for rid, first_hit in candidates.items():
            n_candidates += 1
            t_ranks = ranks_of[rid]
            size_t = len(t_ranks)
            # Record-level StrL (Lemma 1) before any segment work.
            if strl:
                small, large = (
                    (size_q, size_t) if size_q <= size_t else (size_t, size_q)
                )
                lower = lower_cache.get(large)
                if lower is None:
                    lower = lower_cache[large] = length_lower_bound(
                        func, theta, large
                    )
                if small < lower:
                    n_pruned_strl += 1
                    continue
            tau = tau_cache.get((size_q, size_t))
            if tau is None:
                tau = tau_cache[(size_q, size_t)] = required_overlap(
                    func, theta, size_q, size_t
                )
            tb = bounds_of[rid]
            if positional:
                # PPJoin's positional filter at the first collision (see
                # the legacy _positional_prune for the derivation).
                if positional_clock:
                    positional_clock.start()
                v, qpos, tpos = first_hit
                qstart, qend = qspan_by_v[v]
                tstart = tend = 0
                for k in range(0, len(tb), 3):
                    if tb[k] == v:
                        tstart, tend = tb[k + 1], tb[k + 2]
                        break
                q_behind = n_known - qend + n_unknown
                t_behind = size_t - tend
                head = qstart if qstart <= tstart else tstart
                tail = q_behind if q_behind <= t_behind else t_behind
                required = 1
                if segi:
                    bound = tau - head - tail
                    if bound > required:
                        required = bound
                if segd:
                    d_head = qstart - tstart
                    if d_head < 0:
                        d_head = -d_head
                    d_tail = q_behind - t_behind
                    if d_tail < 0:
                        d_tail = -d_tail
                    budget = (size_q + size_t - 2 * tau) - d_head - d_tail
                    bound = -((budget - (qend - qstart) - (tend - tstart)) // 2)
                    if bound > required:
                        required = bound
                i = qpos - qstart
                upper = (
                    min(i, tpos)
                    + 1
                    + min((qend - qstart) - i - 1, (tend - tstart) - tpos - 1)
                )
                if positional_clock:
                    positional_clock.stop()
                if upper < required:
                    n_pruned_positional += 1
                    continue
            if segl or positional:
                # SegL/SegI/SegD per shared fragment: a two-pointer walk
                # over the (both ascending-by-fragment) bound lists.
                if fragment_clock:
                    fragment_clock.start()
                survives = True
                ti = 0
                n_tb = len(tb)
                for v, qstart, qend, q_behind in qgeo:
                    while ti < n_tb and tb[ti] < v:
                        ti += 3
                    if ti >= n_tb:
                        break
                    if tb[ti] != v:
                        continue
                    tstart, tend = tb[ti + 1], tb[ti + 2]
                    len_q_seg = qend - qstart
                    len_t_seg = tend - tstart
                    t_behind = size_t - tend
                    head = qstart if qstart <= tstart else tstart
                    tail = q_behind if q_behind <= t_behind else t_behind
                    if segl:
                        # Lemma 2: even full segment + head/tail overlap
                        # cannot reach τ.
                        budget = tau - head - tail
                        if (
                            len_q_seg if len_q_seg <= len_t_seg else len_t_seg
                        ) < budget:
                            n_pruned_segl += 1
                            survives = False
                            break
                    if not positional:
                        continue
                    required = 1
                    if segi:
                        bound = tau - head - tail
                        if bound > required:
                            required = bound
                    sd_budget = 0
                    if segd:
                        d_head = qstart - tstart
                        if d_head < 0:
                            d_head = -d_head
                        d_tail = q_behind - t_behind
                        if d_tail < 0:
                            d_tail = -d_tail
                        sd_budget = (
                            (size_q + size_t - 2 * tau) - d_head - d_tail
                        )
                        bound = -((sd_budget - len_q_seg - len_t_seg) // 2)
                        if bound > required:
                            required = bound
                    common, comparisons, completed = merge(
                        q_ranks[qstart:qend],
                        t_ranks[tstart:tend],
                        required if early else 1,
                    )
                    n_filter_cmp += comparisons
                    if not completed:
                        # The merge was abandoned because even a full
                        # remaining suffix match could not satisfy
                        # SegI/SegD — the pair is provably below threshold.
                        n_pruned_overlap += 1
                        survives = False
                        break
                    if segi and common < tau - head - tail:
                        n_pruned_segi += 1
                        survives = False
                        break
                    if segd and len_q_seg + len_t_seg - 2 * common > sd_budget:
                        n_pruned_segd += 1
                        survives = False
                        break
                if fragment_clock:
                    fragment_clock.stop()
                if not survives:
                    continue
            if verify_clock:
                verify_clock.start()
            common, comparisons, _completed = merge(
                q_ranks, t_ranks, tau if early else 1
            )
            n_verified += 1
            n_verify_cmp += comparisons
            if verify_clock:
                verify_clock.stop()
            score = verify_overlap(func, theta, common, size_q, size_t)
            if score is not None:
                hits.append(SearchHit(rid, score))
                n_results += 1
        if counters is not None:
            bump = counters.increment
            for name, amount in (
                ("candidates", n_candidates),
                ("pruned_strl", n_pruned_strl),
                ("pruned_positional", n_pruned_positional),
                ("pruned_segl", n_pruned_segl),
                ("pruned_segi", n_pruned_segi),
                ("pruned_segd", n_pruned_segd),
                ("pruned_overlap_bound", n_pruned_overlap),
                ("filter_token_comparisons", n_filter_cmp),
                ("verified_pairs", n_verified),
                ("verify_token_comparisons", n_verify_cmp),
                ("results", n_results),
            ):
                if amount:
                    bump(PROBE_GROUP, name, amount)
        if traced:
            positional_clock.emit(tracer, "positional-bound")
            fragment_clock.emit(tracer, "fragment-filters")
            verify_clock.emit(tracer, "verification")
        hits.sort(key=lambda hit: (-hit.score, hit.rid))
        return hits

    # -- legacy reference path -----------------------------------------
    def _legacy_postings(self) -> List[Dict[int, List[Posting]]]:
        """Memoized dict-of-lists views of the posting columns."""
        return self._legacy_views()[0]

    def _legacy_segments(self) -> Dict[int, Dict[int, Segment]]:
        """Memoized rid → {fragment → Segment} views of the bound triples."""
        return self._legacy_views()[1]

    def _legacy_views(self):
        cache = self._legacy_cache
        if cache is None:
            postings = [fp.to_dict() for fp in self._postings]
            segments = {
                rid: self._segment_map(rid) for rid in self._ranks
            }
            cache = self._legacy_cache = (postings, segments)
        return cache

    def _segment_map(self, rid: int) -> Dict[int, Segment]:
        """One record's ``{fragment → Segment}`` view (legacy shape)."""
        ranks = self._ranks[rid]
        total = len(ranks)
        bounds = self._segbounds[rid]
        return {
            bounds[k]: Segment(
                SegmentInfo(
                    rid=rid,
                    str_len=total,
                    ahead=bounds[k + 1],
                    behind=total - bounds[k + 2],
                ),
                tuple(ranks[bounds[k + 1]:bounds[k + 2]]),
            )
            for k in range(0, len(bounds), 3)
        }

    def _probe_tokens(
        self, query: EncodedQuery, theta: float, func: SimilarityFunction
    ):
        """Yield ``(fragment, token, qpos)`` for the query's prefix tokens.

        The record-level prefix filter: if ``sim(q, t) ≥ θ`` then
        ``|q ∩ t| ≥ τ_min(|q|)``, and at most ``τ_min − 1`` of those common
        tokens can sit beyond the first ``|q| − τ_min + 1`` positions — so
        probing the prefix against the *full-token* postings cannot miss a
        result.  Unknown tokens are modelled as ids beyond the vocabulary
        (they sort last), so the probed prefix is the first
        ``min(P, known)`` known ids.
        """
        if not query.ranks:
            return
        limit = min(prefix_length(func, theta, query.size), len(query.ranks))
        prefix = query.ranks[:limit]
        for v, start, end in self.partitioner.split_bounds(prefix):
            # ``ahead`` of a prefix segment equals the token's global
            # position in the full query (a prefix is itself a prefix of
            # every segment it touches).
            for qpos in range(start, end):
                yield v, prefix[qpos], qpos

    def _candidates(
        self,
        query: EncodedQuery,
        theta: float,
        func: SimilarityFunction,
        counters: Optional[Counters],
    ) -> Dict[int, FirstHit]:
        """Candidates colliding with the probe prefix, with their first hit.

        The first collision's coordinates — fragment, position in the
        query, position in the indexed segment — feed the positional
        filter in :meth:`_evaluate`.
        """
        candidates: Dict[int, FirstHit] = {}
        postings_view = self._legacy_postings()
        for v, token, qpos in self._probe_tokens(query, theta, func):
            _bump(counters, "posting_lookups")
            for rid, pos in postings_view[v].get(token, ()):
                candidates.setdefault(rid, (v, qpos, pos))
        return candidates

    def _query_segments(self, query: EncodedQuery) -> List[Tuple[int, Segment]]:
        """Split the query like an indexed record, sizes counting unknowns.

        Unknown tokens are placed after every known id, which makes them
        trailing members of the query's token sequence: every segment's
        ``str_len`` grows by ``n_unknown`` and every segment gains that
        many ``behind`` tokens, except that a segment in the *last*
        fragment would absorb them into itself — where the per-segment
        token list would no longer match the segment length the lemmas
        see.  The caller therefore disables the segment lemmas for
        unknown-token probes (see :meth:`_evaluate`); StrL only needs the
        corrected ``str_len``.
        """
        split = self.partitioner.split(-1, query.ranks)
        if not query.n_unknown:
            return split
        adjusted = []
        for v, segment in split:
            info = segment.info
            adjusted.append(
                (
                    v,
                    Segment(
                        SegmentInfo(
                            rid=info.rid,
                            str_len=info.str_len + query.n_unknown,
                            ahead=info.ahead,
                            behind=info.behind + query.n_unknown,
                        ),
                        segment.tokens,
                    ),
                )
            )
        return adjusted

    def _evaluate(
        self,
        query: EncodedQuery,
        candidates: Dict[int, FirstHit],
        theta: float,
        func: SimilarityFunction,
        filter_config: FilterConfig,
        counters: Optional[Counters],
        tracer: Tracer = NOOP_TRACER,
    ) -> List[SearchHit]:
        """Filter candidates fragment-wise, then verify survivors exactly.

        With an enabled tracer, the per-candidate stage costs are summed
        into three spans per probe — ``positional-bound``,
        ``fragment-filters`` and ``verification`` — because one span per
        candidate would dwarf the work being measured.
        """
        _bump(counters, "probes")
        if not candidates:
            return []
        traced = tracer.enabled
        positional_clock = _StageClock() if traced else None
        fragment_clock = _StageClock() if traced else None
        verify_clock = _StageClock() if traced else None
        if query.n_unknown:
            # The segment lemmas assume the segment token lists they see
            # are complete; unknown probe tokens break that for the last
            # fragment (see _query_segments), so fall back to StrL + the
            # early-terminating verify — still exact, just less pruning.
            filter_config = FilterConfig(
                strl=filter_config.strl, segl=False, segi=False, segd=False,
                early_verify=filter_config.early_verify,
            )
        filters = FragmentFilters(theta, func, filter_config)
        query_segments = self._query_segments(query)
        qseg_by_fragment = dict(query_segments)
        positional = filter_config.segi or filter_config.segd
        size_q = query.size
        segments_view = self._legacy_segments()
        hits: List[SearchHit] = []
        for rid, first_hit in candidates.items():
            _bump(counters, "candidates")
            t_ranks = self._ranks[rid]
            size_t = len(t_ranks)
            # Record-level StrL (Lemma 1) before any segment work: the
            # *larger* side fixes the lower bound the smaller must meet.
            if filter_config.strl:
                small, large = (
                    (size_q, size_t) if size_q <= size_t else (size_t, size_q)
                )
                if small < length_lower_bound(func, theta, large):
                    _bump(counters, "pruned_strl")
                    continue
            if positional:
                if positional_clock:
                    positional_clock.start()
                pruned_positional = self._positional_prune(
                    first_hit, qseg_by_fragment, segments_view[rid], filters
                )
                if positional_clock:
                    positional_clock.stop()
                if pruned_positional:
                    _bump(counters, "pruned_positional")
                    continue
            if fragment_clock:
                fragment_clock.start()
            survives = self._survives_fragments(
                query_segments, segments_view[rid], filters, counters
            )
            if fragment_clock:
                fragment_clock.stop()
            if not survives:
                continue
            if verify_clock:
                verify_clock.start()
            hit = self._verify(query, t_ranks, size_t, theta, func,
                               filter_config.early_verify, counters)
            if verify_clock:
                verify_clock.stop()
            if hit is not None:
                hits.append(SearchHit(rid, hit))
                _bump(counters, "results")
        if traced:
            positional_clock.emit(tracer, "positional-bound")
            fragment_clock.emit(tracer, "fragment-filters")
            verify_clock.emit(tracer, "verification")
        hits.sort(key=lambda hit: (-hit.score, hit.rid))
        return hits

    @staticmethod
    def _positional_prune(
        first_hit: FirstHit,
        qseg_by_fragment: Dict[int, Segment],
        t_segments: Dict[int, Segment],
        filters: FragmentFilters,
    ) -> bool:
        """PPJoin's positional filter, per fragment (postings carry positions).

        At the first collision — query-segment position ``i``, indexed
        segment position ``j`` — the fragment intersection is at most
        ``min(i, j) + 1 + min(remaining_q, remaining_t)`` (both segments
        are sorted by rank, so matches before/after the collision token
        are bounded by the shorter flank).  When even that upper bound is
        below the smallest intersection surviving SegI/SegD, the pair is
        provably dissimilar and no merge needs to run.
        """
        v, qpos, tpos = first_hit
        qseg = qseg_by_fragment[v]
        tseg = t_segments[v]
        i = qpos - qseg.info.ahead
        upper = (
            min(i, tpos)
            + 1
            + min(len(qseg) - i - 1, len(tseg) - tpos - 1)
        )
        return upper < filters.min_required_common(qseg, tseg)

    def _survives_fragments(
        self,
        query_segments: List[Tuple[int, Segment]],
        t_segments: Dict[int, Segment],
        filters: FragmentFilters,
        counters: Optional[Counters],
    ) -> bool:
        """Apply the SegL/SegI/SegD lemmas in every shared fragment.

        Each lemma is safe per fragment (its proof needs only one
        fragment's view), so a single pruning fragment is enough to
        discard the pair — exactly the suppression a reduce task performs
        in the offline filter job.
        """
        for v, qseg in query_segments:
            tseg = t_segments.get(v)
            if tseg is None:
                continue
            pruned = filters.pre_intersection(qseg, tseg)
            if pruned:
                _bump(counters, f"pruned_{pruned}")
                return False
            if not (filters.config.segi or filters.config.segd):
                continue
            required = (
                filters.min_required_common(qseg, tseg)
                if filters.early_termination
                else 1
            )
            common, comparisons, completed = bounded_merge_intersection(
                qseg.tokens, tseg.tokens, required
            )
            _bump(counters, "filter_token_comparisons", comparisons)
            if not completed:
                # The merge was abandoned because even a full remaining
                # suffix match could not satisfy SegI/SegD — the pair is
                # provably below threshold.
                _bump(counters, "pruned_overlap_bound")
                return False
            pruned = filters.post_intersection(qseg, tseg, common)
            if pruned:
                _bump(counters, f"pruned_{pruned}")
                return False
        return True

    def _verify(
        self,
        query: EncodedQuery,
        t_ranks: Sequence[int],
        size_t: int,
        theta: float,
        func: SimilarityFunction,
        early_termination: bool,
        counters: Optional[Counters],
    ) -> Optional[float]:
        """Exact verification — ``verify_pair``'s early-terminating merge.

        Unknown query tokens intersect nothing, so the merge runs over the
        known ids while the threshold rule sees the full query size; with
        no unknowns this is exactly
        ``verify_pair(q, t, θ, func, sorted_input=True)``.
        """
        size_q = query.size
        required = (
            required_overlap(func, theta, size_q, size_t)
            if early_termination
            else 1
        )
        common, comparisons, _completed = bounded_merge_intersection(
            query.ranks, t_ranks, required
        )
        _bump(counters, "verified_pairs")
        _bump(counters, "verify_token_comparisons", comparisons)
        return verify_overlap(func, theta, common, size_q, size_t)

    # -- persistence (snapshot v3 payload) ------------------------------
    def __getstate__(self):
        self._seal()
        state = dict(self.__dict__)
        # Rebuilt on load: the vocab shares the order object, the legacy
        # views are derived caches.
        state.pop("vocab", None)
        state.pop("_legacy_cache", None)
        return state

    def __setstate__(self, state) -> None:
        state.setdefault("probe_path", "columnar")
        if "_segments" in state:
            # Snapshot v2 payload: dict-of-Segment metadata, dict-of-list
            # postings, tuple rank encodings.  Convert to the columnar
            # layout; results are identical by construction.
            segments = state.pop("_segments")
            state["_ranks"] = {
                rid: array(ID_TYPECODE, ranks)
                for rid, ranks in state["_ranks"].items()
            }
            state["_segbounds"] = {
                rid: _bounds_from_segments(segmap)
                for rid, segmap in segments.items()
            }
            state["_postings"] = [
                FragmentPostings.from_dict(fragment)
                for fragment in state["_postings"]
            ]
        self.__dict__.update(state)
        self.vocab = TokenVocab(self.order)
        self._legacy_cache = None


def _bounds_from_segments(segmap: Dict[int, Segment]) -> Tuple[int, ...]:
    """Flat ``(fragment, start, end)`` triples from a legacy segment map."""
    flat: List[int] = []
    for v in sorted(segmap):
        info = segmap[v].info
        start = info.ahead
        flat.extend((v, start, start + len(segmap[v].tokens)))
    return tuple(flat)


class _StageClock:
    """Accumulates one probe stage's wall time across many candidates.

    Emitted as a single span whose ``start`` is the stage's first entry and
    whose ``duration`` is the summed in-stage time — per-candidate spans
    would cost more than the microseconds they measure.
    """

    __slots__ = ("first", "total", "calls", "_entered")

    def __init__(self) -> None:
        self.first: Optional[float] = None
        self.total = 0.0
        self.calls = 0
        self._entered = 0.0

    def start(self) -> None:
        self._entered = time.perf_counter()
        if self.first is None:
            self.first = self._entered

    def stop(self) -> None:
        self.total += time.perf_counter() - self._entered
        self.calls += 1

    def emit(self, tracer: Tracer, name: str) -> None:
        if self.first is not None:
            tracer.add(name, "service", self.first, self.total, calls=self.calls)


def _bump(counters: Optional[Counters], name: str, amount: int = 1) -> None:
    if counters is not None and amount:
        counters.increment(PROBE_GROUP, name, amount)
