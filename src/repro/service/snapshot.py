"""Index persistence: versioned snapshots with write-then-swap discipline.

A snapshot is a pickle of ``{"format", "version", "stats", "index"}``.
The header is checked *before* the index is handed to the caller, so a
foreign or stale file fails with a clear :class:`~repro.errors.SnapshotError`
instead of an attribute error deep inside a probe.

Writes go to a temporary sibling file first and are atomically swapped
into place with :func:`os.replace` — the same write-then-swap convention
:meth:`repro.mapreduce.hdfs.InMemoryDFS.write` follows for overwrites — so
a crash mid-save can never leave a truncated snapshot under the target
name.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Union

from repro.errors import SnapshotError
from repro.service.index import SegmentIndex

SNAPSHOT_FORMAT = "repro-segment-index"
SNAPSHOT_VERSION = 1


def save_index(index: SegmentIndex, path: Union[str, Path]) -> int:
    """Persist ``index`` at ``path`` atomically; returns the byte size."""
    path = Path(path)
    payload = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "stats": index.posting_stats(),
        "index": index,
    }
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as handle:
        handle.write(data)
    os.replace(tmp, path)
    return len(data)


def load_index(path: Union[str, Path]) -> SegmentIndex:
    """Load a snapshot, validating its format header and version."""
    path = Path(path)
    try:
        with path.open("rb") as handle:
            payload = pickle.load(handle)
    except FileNotFoundError:
        raise SnapshotError(f"no snapshot at {path}") from None
    except (pickle.UnpicklingError, EOFError, AttributeError, ImportError,
            IndexError) as exc:
        raise SnapshotError(f"{path} is not a readable index snapshot: {exc}") from None
    if not isinstance(payload, dict) or payload.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{path} is not a {SNAPSHOT_FORMAT!r} snapshot"
        )
    version = payload.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version mismatch at {path}: file has {version!r}, "
            f"this build reads {SNAPSHOT_VERSION} — rebuild the index with "
            "'repro index'"
        )
    index = payload.get("index")
    if not isinstance(index, SegmentIndex):
        raise SnapshotError(f"snapshot at {path} carries no index payload")
    return index
