"""Index persistence: versioned, integrity-checked snapshots.

A snapshot is a pickle of ``{"format", "version", "stats", "digest",
"index_bytes"}``: the index itself is pickled separately into
``index_bytes`` and its sha256 digest stored alongside, so a bit-flipped or
otherwise corrupted payload fails the digest check with a clear
:class:`~repro.errors.SnapshotError` *before* the payload is unpickled —
never a pickle crash deep inside ``loads`` and never a silently wrong
index.  A truncated file fails the outer header parse the same way.
Version-1 snapshots (no digest) still load, with a ``RuntimeWarning``
recommending a re-save.

Version 3 (current) pickles the columnar index — flat ``array`` posting
and rank columns — which serializes as machine bytes and is smaller than
the version-2 dict-of-objects payload for the same corpus.  Version-2
snapshots load transparently: the index's ``__setstate__`` detects the old
layout and converts it on the fly (results identical by construction);
re-save to upgrade.

Writes go to a temporary sibling file first and are atomically swapped
into place with :func:`os.replace` — the same write-then-swap convention
:meth:`repro.mapreduce.hdfs.InMemoryDFS.write` follows for overwrites — so
a crash mid-save can never leave a truncated snapshot under the target
name.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import warnings
from pathlib import Path
from typing import Union

from repro.errors import SnapshotError
from repro.service.index import SegmentIndex

SNAPSHOT_FORMAT = "repro-segment-index"
#: v3: the columnar index payload (flat array posting/rank columns).  The
#: envelope is unchanged since v2 — same digest check, same keys.
SNAPSHOT_VERSION = 3
#: The dict-of-Segment payload written before the columnar rewrite; loads
#: transparently (``SegmentIndex.__setstate__`` converts the old layout).
SNAPSHOT_VERSION_V2 = 2
#: The digest-less layout still accepted (with a warning) by `load_index`.
SNAPSHOT_VERSION_LEGACY = 1

_PICKLE_ERRORS = (
    pickle.UnpicklingError, EOFError, AttributeError, ImportError, IndexError,
    KeyError, TypeError, ValueError,
)


def save_index(index: SegmentIndex, path: Union[str, Path]) -> int:
    """Persist ``index`` at ``path`` atomically; returns the byte size."""
    path = Path(path)
    body = pickle.dumps(index, protocol=pickle.HIGHEST_PROTOCOL)
    payload = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "stats": index.posting_stats(),
        "digest": hashlib.sha256(body).hexdigest(),
        "index_bytes": body,
    }
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as handle:
        handle.write(data)
    os.replace(tmp, path)
    return len(data)


def load_index(path: Union[str, Path]) -> SegmentIndex:
    """Load a snapshot, validating format, version and integrity digest."""
    path = Path(path)
    try:
        with path.open("rb") as handle:
            payload = pickle.load(handle)
    except FileNotFoundError:
        raise SnapshotError(f"no snapshot at {path}") from None
    except _PICKLE_ERRORS as exc:
        raise SnapshotError(
            f"{path} is not a readable index snapshot: {exc}"
        ) from None
    if not isinstance(payload, dict) or payload.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{path} is not a {SNAPSHOT_FORMAT!r} snapshot"
        )
    version = payload.get("version")
    if version == SNAPSHOT_VERSION_LEGACY:
        warnings.warn(
            f"snapshot at {path} is version {SNAPSHOT_VERSION_LEGACY} and "
            "carries no integrity digest; re-save it (service.save / "
            "'repro index') to upgrade",
            RuntimeWarning,
            stacklevel=2,
        )
        index = payload.get("index")
    elif version in (SNAPSHOT_VERSION, SNAPSHOT_VERSION_V2):
        body = payload.get("index_bytes")
        if not isinstance(body, bytes):
            raise SnapshotError(f"snapshot at {path} carries no index payload")
        digest = hashlib.sha256(body).hexdigest()
        if digest != payload.get("digest"):
            raise SnapshotError(
                f"snapshot at {path} failed its integrity check "
                f"(sha256 {digest[:12]}… != recorded "
                f"{str(payload.get('digest'))[:12]}…) — the file is "
                "corrupted; rebuild the index with 'repro index'"
            )
        try:
            index = pickle.loads(body)
        except _PICKLE_ERRORS as exc:
            raise SnapshotError(
                f"snapshot payload at {path} is unreadable despite a valid "
                f"digest (written by an incompatible build?): {exc}"
            ) from None
    else:
        raise SnapshotError(
            f"snapshot version mismatch at {path}: file has {version!r}, "
            f"this build reads {SNAPSHOT_VERSION_V2}–{SNAPSHOT_VERSION} — "
            "rebuild the index with 'repro index'"
        )
    if not isinstance(index, SegmentIndex):
        raise SnapshotError(f"snapshot at {path} carries no index payload")
    return index
