"""The online similarity service: cached, batched probes over a SegmentIndex.

:class:`SimilarityService` is the serving-layer entry point:

* ``search(tokens, theta, k=None)`` — one exact probe, LRU-cached by
  ``(canonical token tuple, θ, func)``;
* ``search_batch(queries, theta, ...)`` — deduplicates the batch, serves
  repeats from one computation, and probes the distinct misses with
  fragment-grouped posting scans (optionally fanned out over the
  executor backends of :mod:`repro.mapreduce.executors`);
* ``apply_batch(new_records)`` — extends the index in place (and
  invalidates the cache), the online twin of
  :class:`~repro.core.incremental.IncrementalSelfJoin`;
* ``save``/``load`` — versioned snapshot round-trip via
  :mod:`repro.service.snapshot`.

All work is accounted in ``service.metrics`` (a
:class:`~repro.mapreduce.counters.Counters`): ``service.cache`` tracks
hits/misses/evictions/invalidations, ``service.probe`` tracks posting
lookups, candidates, per-lemma prunes and token comparisons — the
quantities ``benchmarks/bench_ext_query_service.py`` asserts on.  On top
of the counters, every request feeds a :class:`LatencyHistogram`
(``latency_info()`` → p50/p95/p99) and, when the service is built with an
enabled :class:`~repro.observability.tracer.Tracer`, per-probe spans
covering cache lookup, prefix filter, positional bound and verification.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.config import FilterConfig
from repro.data.records import Record, RecordCollection
from repro.errors import DataError, DeadlineExceededError
from repro.mapreduce.counters import Counters
from repro.mapreduce.executors import ExecutorKind, TaskExecutor, create_executor
from repro.observability.histogram import LatencyHistogram
from repro.observability.tracer import NOOP_TRACER, Tracer
from repro.service.cache import LRUCache
from repro.service.index import EncodedQuery, SearchHit, SegmentIndex
from repro.service.snapshot import load_index, save_index
from repro.similarity.functions import SimilarityFunction

CACHE_GROUP = "service.cache"

#: Cache key: (canonical token tuple, θ, func value).
CacheKey = Tuple[Tuple[str, ...], float, str]


class SimilarityService:
    """Serve exact similarity-search queries over an indexed corpus."""

    def __init__(
        self,
        index: SegmentIndex,
        filters: Optional[FilterConfig] = None,
        cache_size: int = 1024,
        executor: Union[ExecutorKind, str, TaskExecutor, None] = None,
        tracer: Optional[Tracer] = None,
        clock=time.monotonic,
        probe_path: Optional[str] = None,
    ) -> None:
        """``executor`` sets the default backend for :meth:`search_batch`
        (``None`` = in-process, fragment-grouped only); ``cache_size=0``
        disables the result cache.  ``tracer`` (default: the free no-op
        tracer) records one ``probe``/``batch`` span per request with
        ``cache-lookup``, ``prefix-filter``, ``positional-bound``,
        ``fragment-filters`` and ``verification`` children; results are
        bit-identical with tracing on or off.  ``probe_path`` overrides
        the index's evaluator — ``"columnar"`` (the default hot path) or
        ``"legacy"`` (the reference path); results are bit-identical on
        both."""
        if probe_path is not None:
            index.probe_path = probe_path
        self.index = index
        self.filters = filters if filters is not None else FilterConfig()
        self.metrics = Counters()
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.latency = LatencyHistogram()
        self._cache: LRUCache[List[SearchHit]] = LRUCache(cache_size)
        self._executor = executor
        #: injectable so deadline tests (and chaos replays) control time.
        self._clock = clock

    # -- single probe --------------------------------------------------
    def search(
        self,
        tokens: Iterable[str],
        theta: float,
        k: Optional[int] = None,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        exclude: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> List[SearchHit]:
        """All indexed records with ``sim(query, record) ≥ θ``, best first.

        ``k`` truncates the (fully computed and cached) result list;
        ``exclude`` drops one record id — pass the query's own id when
        probing by an indexed record.  ``deadline`` bounds the request in
        seconds on the service clock: a probe that runs past it raises a
        typed :class:`DeadlineExceededError` (the answer is discarded — a
        client that stopped waiting must not receive a late result, and
        the overrun is visible in ``service.deadline`` counters).
        """
        func = SimilarityFunction(func)
        # Latency is recorded on the same injectable clock the deadline
        # checks read — one clock per service — so injected (chaos)
        # latency shows up in ``latency_info()``, and a request that is
        # abandoned at its deadline is still an observation (overload
        # percentiles must include the requests that failed).
        started = self._clock()
        deadline_at = None if deadline is None else started + deadline
        try:
            self._check_deadline(deadline_at)
            key = self._cache_key(tokens, theta, func)
            with self.tracer.span(
                "probe", phase="service", theta=theta, func=func.value,
                query_size=len(key[0]),
            ) as span:
                with self.tracer.span("cache-lookup", phase="service"):
                    hits = self._cache.get(key)
                if hits is None:
                    self.metrics.increment(CACHE_GROUP, "misses")
                    span.attrs["cache"] = "miss"
                    hits = self.index.probe(
                        key[0], theta, func, self.filters, self.metrics,
                        tracer=self.tracer,
                    )
                    self._put(key, hits)
                else:
                    self.metrics.increment(CACHE_GROUP, "hits")
                    span.attrs["cache"] = "hit"
                span.attrs["hits"] = len(hits)
            self._check_deadline(deadline_at)
        finally:
            self.latency.record(self._clock() - started)
        return _finish(hits, k, exclude)

    def search_rid(
        self,
        rid: int,
        theta: float,
        k: Optional[int] = None,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
    ) -> List[SearchHit]:
        """Partners of an already-indexed record (itself excluded)."""
        return self.search(
            self.index.tokens_of(rid), theta, k=k, func=func, exclude=rid
        )

    # -- batched probes ------------------------------------------------
    def search_batch(
        self,
        queries: Sequence[Iterable[str]],
        theta: float,
        k: Optional[int] = None,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        executor: Union[ExecutorKind, str, TaskExecutor, None] = None,
        exclude: Optional[Sequence[Optional[int]]] = None,
        deadline: Optional[float] = None,
    ) -> List[List[SearchHit]]:
        """Probe many queries at once; results align with ``queries``.

        The batch is canonicalized and deduplicated first (repeated
        queries — the common case under real traffic — are computed once),
        then cache-checked, and only the distinct misses hit the index,
        with posting scans grouped per fragment.  ``executor`` (or the
        service default) fans the misses out over a
        :mod:`repro.mapreduce.executors` backend; results are identical on
        every backend.  ``exclude`` is a per-query sequence of record ids
        to drop from the corresponding result (``None`` entries skip) —
        the batched twin of :meth:`search`'s ``exclude``, applied after
        the shared computation so duplicates still coalesce.
        """
        func = SimilarityFunction(func)
        if exclude is not None and len(exclude) != len(queries):
            raise DataError(
                f"exclude must align with queries: got {len(exclude)} "
                f"entries for {len(queries)} queries"
            )
        started = self._clock()
        deadline_at = None if deadline is None else started + deadline
        try:
            self._check_deadline(deadline_at)
            self.metrics.increment("service.batch", "batches")
            self.metrics.increment("service.batch", "queries", len(queries))
            with self.tracer.span(
                "batch", phase="service", theta=theta, func=func.value,
                queries=len(queries),
            ) as span:
                keys = [self._cache_key(tokens, theta, func)
                        for tokens in queries]
                resolved: Dict[CacheKey, List[SearchHit]] = {}
                misses: List[CacheKey] = []
                with self.tracer.span("cache-lookup", phase="service"):
                    for key in keys:
                        if key in resolved:
                            continue
                        hits = self._cache.get(key)
                        if hits is None:
                            self.metrics.increment(CACHE_GROUP, "misses")
                            misses.append(key)
                            resolved[key] = []  # placeholder; filled below
                        else:
                            self.metrics.increment(CACHE_GROUP, "hits")
                            resolved[key] = hits
                self.metrics.increment("service.batch", "unique_misses",
                                       len(misses))
                span.attrs["unique_misses"] = len(misses)
                if misses:
                    for key, hits in zip(misses,
                                         self._probe_misses(misses, theta,
                                                            func, executor)):
                        resolved[key] = hits
                        self._put(key, hits)
            self._check_deadline(deadline_at)
        finally:
            self.latency.record(self._clock() - started)
        return [
            _finish(resolved[key], k,
                    exclude[i] if exclude is not None else None)
            for i, key in enumerate(keys)
        ]

    def _probe_misses(
        self,
        misses: List[CacheKey],
        theta: float,
        func: SimilarityFunction,
        executor: Union[ExecutorKind, str, TaskExecutor, None],
    ) -> List[List[SearchHit]]:
        encoded = [self.index.encode_query(key[0]) for key in misses]
        backend = executor if executor is not None else self._executor
        if backend is None or len(misses) <= 1:
            return self.index.probe_batch(
                encoded, theta, func, self.filters, self.metrics,
                tracer=self.tracer,
            )
        executor_obj = create_executor(backend)
        chunks = _chunk(encoded, getattr(executor_obj, "max_workers", 1))
        traced = self.tracer.enabled
        outputs = executor_obj.run_tasks(
            _probe_chunk_task,
            [
                (self.index, chunk, theta, func, self.filters, traced)
                for chunk in chunks
            ],
        )
        results: List[List[SearchHit]] = []
        # Merged in chunk order, like the runtime's task-index-order commit,
        # so counters and adopted spans are deterministic per backend.
        for chunk_hits, counters, spans in outputs:
            results.extend(chunk_hits)
            self.metrics.merge(counters)
            self.tracer.adopt(spans)
        return results

    # -- maintenance ---------------------------------------------------
    def apply_batch(
        self, new_records: Union[RecordCollection, Iterable[Record]]
    ) -> int:
        """Extend the index with new records; invalidates the result cache.

        Raises :class:`~repro.errors.DataError` on duplicate record ids
        (before any mutation), exactly like
        ``IncrementalSelfJoin.add_batch``.
        """
        added = self.index.apply_batch(new_records)
        if len(self._cache):
            self.metrics.increment(CACHE_GROUP, "invalidations", len(self._cache))
        self._cache.clear()
        return added

    # -- persistence ---------------------------------------------------
    def save(self, path: Union[str, Path]) -> int:
        """Snapshot the underlying index (cache and metrics are ephemeral).

        A streaming index (:class:`~repro.ingest.streaming.StreamingIndex`)
        is materialized to a single union ``SegmentIndex`` first — its own
        durability lives in the WAL + manifest, and a snapshot must stay
        loadable by plain ``repro search``.
        """
        index = self.index
        if hasattr(index, "to_segment_index"):
            index = index.to_segment_index()
        return save_index(index, path)

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        filters: Optional[FilterConfig] = None,
        cache_size: int = 1024,
        executor: Union[ExecutorKind, str, TaskExecutor, None] = None,
        tracer: Optional[Tracer] = None,
        probe_path: Optional[str] = None,
    ) -> "SimilarityService":
        """Build a service over a snapshot written by :meth:`save`."""
        return cls(load_index(path), filters=filters, cache_size=cache_size,
                   executor=executor, tracer=tracer, probe_path=probe_path)

    # -- introspection -------------------------------------------------
    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/size/capacity snapshot of the result cache."""
        cache_counters = self.metrics.group(CACHE_GROUP)
        return {
            "hits": cache_counters.get("hits", 0),
            "misses": cache_counters.get("misses", 0),
            "evictions": self._cache.evictions,
            "size": len(self._cache),
            "capacity": self._cache.capacity,
        }

    def latency_info(self) -> Dict[str, Union[int, float]]:
        """Request-latency percentiles (one observation per ``search`` or
        ``search_batch`` call, cache hits included), ``cache_info``-style."""
        return self.latency.snapshot()

    # -- internals -----------------------------------------------------
    def _check_deadline(self, deadline_at: Optional[float]) -> None:
        if deadline_at is not None and self._clock() >= deadline_at:
            self.metrics.increment("service.deadline", "exceeded")
            raise DeadlineExceededError(
                "service request ran past its deadline; result abandoned"
            )

    @staticmethod
    def _cache_key(
        tokens: Iterable[str], theta: float, func: SimilarityFunction
    ) -> CacheKey:
        return (tuple(sorted(set(tokens))), float(theta), func.value)

    def _put(self, key: CacheKey, hits: List[SearchHit]) -> None:
        before = self._cache.evictions
        self._cache.put(key, hits)
        evicted = self._cache.evictions - before
        if evicted:
            self.metrics.increment(CACHE_GROUP, "evictions", evicted)


def _finish(
    hits: List[SearchHit], k: Optional[int], exclude: Optional[int]
) -> List[SearchHit]:
    """Apply the per-call ``exclude``/``k`` view over a cached result."""
    if exclude is not None:
        hits = [hit for hit in hits if hit.rid != exclude]
    else:
        hits = list(hits)
    if k is not None:
        hits = hits[: max(k, 0)]
    return hits


def _chunk(items: Sequence, workers: int) -> List[List]:
    """Split items into at most ``workers`` contiguous chunks."""
    n_chunks = max(1, min(workers, len(items)))
    size, extra = divmod(len(items), n_chunks)
    chunks, start = [], 0
    for i in range(n_chunks):
        end = start + size + (1 if i < extra else 0)
        chunks.append(list(items[start:end]))
        start = end
    return chunks


def _probe_chunk_task(payload):
    """Module-level task body so the process backend can pickle it.

    Returns ``(hits, counters, spans)``: spans are recorded in a
    chunk-local tracer (workers cannot reach the service's) and adopted by
    the coordinator in chunk order.
    """
    index, chunk, theta, func, filters, traced = payload
    counters = Counters()
    tracer = Tracer() if traced else NOOP_TRACER
    with tracer.span("probe-chunk", phase="service", queries=len(chunk)):
        hits = index.probe_batch(chunk, theta, func, filters, counters, tracer)
    return hits, counters, tracer.spans()
