"""The online similarity service: cached, batched probes over a SegmentIndex.

:class:`SimilarityService` is the serving-layer entry point:

* ``search(tokens, theta, k=None)`` — one exact probe, LRU-cached by
  ``(canonical token tuple, θ, func)``;
* ``search_batch(queries, theta, ...)`` — deduplicates the batch, serves
  repeats from one computation, and probes the distinct misses with
  fragment-grouped posting scans (optionally fanned out over the
  executor backends of :mod:`repro.mapreduce.executors`);
* ``apply_batch(new_records)`` — extends the index in place (and
  invalidates the cache), the online twin of
  :class:`~repro.core.incremental.IncrementalSelfJoin`;
* ``save``/``load`` — versioned snapshot round-trip via
  :mod:`repro.service.snapshot`.

All work is accounted in ``service.metrics`` (a
:class:`~repro.mapreduce.counters.Counters`): ``service.cache`` tracks
hits/misses/evictions/invalidations, ``service.probe`` tracks posting
lookups, candidates, per-lemma prunes and token comparisons — the
quantities ``benchmarks/bench_ext_query_service.py`` asserts on.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.config import FilterConfig
from repro.data.records import Record, RecordCollection
from repro.mapreduce.counters import Counters
from repro.mapreduce.executors import ExecutorKind, TaskExecutor, create_executor
from repro.service.cache import LRUCache
from repro.service.index import EncodedQuery, SearchHit, SegmentIndex
from repro.service.snapshot import load_index, save_index
from repro.similarity.functions import SimilarityFunction

CACHE_GROUP = "service.cache"

#: Cache key: (canonical token tuple, θ, func value).
CacheKey = Tuple[Tuple[str, ...], float, str]


class SimilarityService:
    """Serve exact similarity-search queries over an indexed corpus."""

    def __init__(
        self,
        index: SegmentIndex,
        filters: Optional[FilterConfig] = None,
        cache_size: int = 1024,
        executor: Union[ExecutorKind, str, TaskExecutor, None] = None,
    ) -> None:
        """``executor`` sets the default backend for :meth:`search_batch`
        (``None`` = in-process, fragment-grouped only); ``cache_size=0``
        disables the result cache."""
        self.index = index
        self.filters = filters if filters is not None else FilterConfig()
        self.metrics = Counters()
        self._cache: LRUCache[List[SearchHit]] = LRUCache(cache_size)
        self._executor = executor

    # -- single probe --------------------------------------------------
    def search(
        self,
        tokens: Iterable[str],
        theta: float,
        k: Optional[int] = None,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        exclude: Optional[int] = None,
    ) -> List[SearchHit]:
        """All indexed records with ``sim(query, record) ≥ θ``, best first.

        ``k`` truncates the (fully computed and cached) result list;
        ``exclude`` drops one record id — pass the query's own id when
        probing by an indexed record.
        """
        func = SimilarityFunction(func)
        key = self._cache_key(tokens, theta, func)
        hits = self._cache.get(key)
        if hits is None:
            self.metrics.increment(CACHE_GROUP, "misses")
            hits = self.index.probe(
                key[0], theta, func, self.filters, self.metrics
            )
            self._put(key, hits)
        else:
            self.metrics.increment(CACHE_GROUP, "hits")
        return _finish(hits, k, exclude)

    def search_rid(
        self,
        rid: int,
        theta: float,
        k: Optional[int] = None,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
    ) -> List[SearchHit]:
        """Partners of an already-indexed record (itself excluded)."""
        return self.search(
            self.index.tokens_of(rid), theta, k=k, func=func, exclude=rid
        )

    # -- batched probes ------------------------------------------------
    def search_batch(
        self,
        queries: Sequence[Iterable[str]],
        theta: float,
        k: Optional[int] = None,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        executor: Union[ExecutorKind, str, TaskExecutor, None] = None,
    ) -> List[List[SearchHit]]:
        """Probe many queries at once; results align with ``queries``.

        The batch is canonicalized and deduplicated first (repeated
        queries — the common case under real traffic — are computed once),
        then cache-checked, and only the distinct misses hit the index,
        with posting scans grouped per fragment.  ``executor`` (or the
        service default) fans the misses out over a
        :mod:`repro.mapreduce.executors` backend; results are identical on
        every backend.
        """
        func = SimilarityFunction(func)
        self.metrics.increment("service.batch", "batches")
        self.metrics.increment("service.batch", "queries", len(queries))
        keys = [self._cache_key(tokens, theta, func) for tokens in queries]
        resolved: Dict[CacheKey, List[SearchHit]] = {}
        misses: List[CacheKey] = []
        for key in keys:
            if key in resolved:
                continue
            hits = self._cache.get(key)
            if hits is None:
                self.metrics.increment(CACHE_GROUP, "misses")
                misses.append(key)
                resolved[key] = []  # placeholder; filled below
            else:
                self.metrics.increment(CACHE_GROUP, "hits")
                resolved[key] = hits
        self.metrics.increment("service.batch", "unique_misses", len(misses))
        if misses:
            for key, hits in zip(misses, self._probe_misses(misses, theta, func,
                                                            executor)):
                resolved[key] = hits
                self._put(key, hits)
        return [_finish(resolved[key], k, None) for key in keys]

    def _probe_misses(
        self,
        misses: List[CacheKey],
        theta: float,
        func: SimilarityFunction,
        executor: Union[ExecutorKind, str, TaskExecutor, None],
    ) -> List[List[SearchHit]]:
        encoded = [self.index.encode_query(key[0]) for key in misses]
        backend = executor if executor is not None else self._executor
        if backend is None or len(misses) <= 1:
            return self.index.probe_batch(
                encoded, theta, func, self.filters, self.metrics
            )
        executor_obj = create_executor(backend)
        chunks = _chunk(encoded, getattr(executor_obj, "max_workers", 1))
        outputs = executor_obj.run_tasks(
            _probe_chunk_task,
            [(self.index, chunk, theta, func, self.filters) for chunk in chunks],
        )
        results: List[List[SearchHit]] = []
        for chunk_hits, counters in outputs:
            results.extend(chunk_hits)
            self.metrics.merge(counters)
        return results

    # -- maintenance ---------------------------------------------------
    def apply_batch(
        self, new_records: Union[RecordCollection, Iterable[Record]]
    ) -> int:
        """Extend the index with new records; invalidates the result cache.

        Raises :class:`~repro.errors.DataError` on duplicate record ids
        (before any mutation), exactly like
        ``IncrementalSelfJoin.add_batch``.
        """
        added = self.index.apply_batch(new_records)
        if len(self._cache):
            self.metrics.increment(CACHE_GROUP, "invalidations", len(self._cache))
        self._cache.clear()
        return added

    # -- persistence ---------------------------------------------------
    def save(self, path: Union[str, Path]) -> int:
        """Snapshot the underlying index (cache and metrics are ephemeral)."""
        return save_index(self.index, path)

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        filters: Optional[FilterConfig] = None,
        cache_size: int = 1024,
        executor: Union[ExecutorKind, str, TaskExecutor, None] = None,
    ) -> "SimilarityService":
        """Build a service over a snapshot written by :meth:`save`."""
        return cls(load_index(path), filters=filters, cache_size=cache_size,
                   executor=executor)

    # -- introspection -------------------------------------------------
    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/size/capacity snapshot of the result cache."""
        cache_counters = self.metrics.group(CACHE_GROUP)
        return {
            "hits": cache_counters.get("hits", 0),
            "misses": cache_counters.get("misses", 0),
            "evictions": self._cache.evictions,
            "size": len(self._cache),
            "capacity": self._cache.capacity,
        }

    # -- internals -----------------------------------------------------
    @staticmethod
    def _cache_key(
        tokens: Iterable[str], theta: float, func: SimilarityFunction
    ) -> CacheKey:
        return (tuple(sorted(set(tokens))), float(theta), func.value)

    def _put(self, key: CacheKey, hits: List[SearchHit]) -> None:
        before = self._cache.evictions
        self._cache.put(key, hits)
        evicted = self._cache.evictions - before
        if evicted:
            self.metrics.increment(CACHE_GROUP, "evictions", evicted)


def _finish(
    hits: List[SearchHit], k: Optional[int], exclude: Optional[int]
) -> List[SearchHit]:
    """Apply the per-call ``exclude``/``k`` view over a cached result."""
    if exclude is not None:
        hits = [hit for hit in hits if hit.rid != exclude]
    else:
        hits = list(hits)
    if k is not None:
        hits = hits[: max(k, 0)]
    return hits


def _chunk(items: Sequence, workers: int) -> List[List]:
    """Split items into at most ``workers`` contiguous chunks."""
    n_chunks = max(1, min(workers, len(items)))
    size, extra = divmod(len(items), n_chunks)
    chunks, start = [], 0
    for i in range(n_chunks):
        end = start + size + (1 if i < extra else 0)
        chunks.append(list(items[start:end]))
        start = end
    return chunks


def _probe_chunk_task(payload) -> Tuple[List[List[SearchHit]], Counters]:
    """Module-level task body so the process backend can pickle it."""
    index, chunk, theta, func, filters = payload
    counters = Counters()
    hits = index.probe_batch(chunk, theta, func, filters, counters)
    return hits, counters
