"""Array-backed columnar storage for the serving hot path.

:class:`FragmentPostings` is one fragment's inverted index laid out as four
flat :class:`array.array` columns instead of a dict of lists of tuples::

    tokens:    [t0, t1, t2, ...]          sorted distinct token ids
    offsets:   [o0, o1, o2, ..., oN]      offsets[k] .. offsets[k+1] is
    rids:      [r, r, r, r, r, ...]       token k's contiguous (rid, pos)
    positions: [p, p, p, p, p, ...]       run in the two entry columns

The win over the dict layout is threefold: a posting entry costs 12 bytes
(8 + 4) instead of a ~60-byte tuple-in-list, a probe batch scans each run
with two array reads per entry and zero allocations, and the whole
structure pickles as machine bytes — which is what makes snapshot v3
smaller than v2 for the same index.

Mutation is staged: :meth:`add` appends into a small pending dict and
:meth:`seal` merges the stage into the flat columns (new entries of an
existing token append *after* its old run, preserving the dict layout's
insertion order).  Build/ingest paths seal once per batch; probing assumes
a sealed structure and is read-only, so sealed postings are safe to share
across threads and processes.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, Iterator, List, Tuple

#: Typecodes: token ids / record ids / offsets are native longs, positions
#: (a token's index inside one segment) always fit a signed 32-bit int.
ID_TYPECODE = "l"
POS_TYPECODE = "i"

#: A posting entry in the legacy dict layout: (record id, position).
Posting = Tuple[int, int]


class FragmentPostings:
    """One fragment's token-id → (rid, pos)-run inverted lists."""

    __slots__ = ("tokens", "offsets", "rids", "positions", "_slots", "_pending")

    def __init__(self) -> None:
        self.tokens = array(ID_TYPECODE)
        self.offsets = array(ID_TYPECODE, [0])
        self.rids = array(ID_TYPECODE)
        self.positions = array(POS_TYPECODE)
        #: token id → slot in ``tokens`` (rebuilt by :meth:`seal`).
        self._slots: Dict[int, int] = {}
        #: staged inserts: token id → ([rids], [positions]).
        self._pending: Dict[int, Tuple[List[int], List[int]]] = {}

    # -- mutation ------------------------------------------------------
    def add(self, token: int, rid: int, pos: int) -> None:
        """Stage one posting entry (visible to probes after :meth:`seal`)."""
        entry = self._pending.get(token)
        if entry is None:
            entry = ([], [])
            self._pending[token] = entry
        entry[0].append(rid)
        entry[1].append(pos)

    def seal(self) -> None:
        """Merge staged entries into the flat columns (idempotent)."""
        if not self._pending:
            return
        pending = self._pending
        old_tokens, old_offsets = self.tokens, self.offsets
        old_rids, old_positions = self.rids, self.positions
        merged = sorted(set(old_tokens) | pending.keys())
        tokens = array(ID_TYPECODE, merged)
        offsets = array(ID_TYPECODE, [0])
        rids = array(ID_TYPECODE)
        positions = array(POS_TYPECODE)
        slots: Dict[int, int] = {}
        for slot, token in enumerate(merged):
            old_slot = self._slots.get(token)
            if old_slot is not None:
                lo, hi = old_offsets[old_slot], old_offsets[old_slot + 1]
                rids.extend(old_rids[lo:hi])
                positions.extend(old_positions[lo:hi])
            staged = pending.get(token)
            if staged is not None:
                rids.extend(staged[0])
                positions.extend(staged[1])
            offsets.append(len(rids))
            slots[token] = slot
        self.tokens, self.offsets = tokens, offsets
        self.rids, self.positions = rids, positions
        self._slots = slots
        self._pending = {}

    # -- lookup --------------------------------------------------------
    def run(self, token: int) -> Tuple[int, int]:
        """Half-open ``(lo, hi)`` run of ``token`` in the entry columns.

        ``(0, 0)`` when the token has no postings.  Requires a sealed
        structure (probe paths seal at build/ingest time).
        """
        slot = self._slots.get(token)
        if slot is None:
            return 0, 0
        return self.offsets[slot], self.offsets[slot + 1]

    def postings_of(self, token: int) -> List[Posting]:
        """One token's postings in the legacy ``[(rid, pos), ...]`` shape."""
        lo, hi = self.run(token)
        return list(zip(self.rids[lo:hi], self.positions[lo:hi]))

    def items(self) -> Iterator[Tuple[int, List[Posting]]]:
        """Iterate ``(token, [(rid, pos), ...])`` — compat/debugging view."""
        self.seal()
        for slot, token in enumerate(self.tokens):
            lo, hi = self.offsets[slot], self.offsets[slot + 1]
            yield token, list(zip(self.rids[lo:hi], self.positions[lo:hi]))

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        """Total posting entries (staged entries included)."""
        return len(self.rids) + sum(
            len(entry[0]) for entry in self._pending.values()
        )

    @property
    def n_tokens(self) -> int:
        return len(self.tokens) + sum(
            1 for token in self._pending if token not in self._slots
        )

    def nbytes(self) -> int:
        """Actual bytes held by the four columns (buffer × itemsize)."""
        return sum(
            column.buffer_info()[1] * column.itemsize
            for column in (self.tokens, self.offsets, self.rids, self.positions)
        )

    # -- bulk ops ------------------------------------------------------
    def copy(self) -> "FragmentPostings":
        """Deep copy of the sealed columns (fragment carve/migration)."""
        self.seal()
        dup = FragmentPostings()
        dup.tokens = array(ID_TYPECODE, self.tokens)
        dup.offsets = array(ID_TYPECODE, self.offsets)
        dup.rids = array(ID_TYPECODE, self.rids)
        dup.positions = array(POS_TYPECODE, self.positions)
        dup._slots = dict(self._slots)
        return dup

    @classmethod
    def from_dict(cls, postings: Dict[int, List[Posting]]) -> "FragmentPostings":
        """Build from the legacy dict-of-lists layout (snapshot v2 load)."""
        built = cls()
        for token, plist in postings.items():
            for rid, pos in plist:
                built.add(token, rid, pos)
        built.seal()
        return built

    def to_dict(self) -> Dict[int, List[Posting]]:
        """Export to the legacy dict-of-lists layout (tests, migration)."""
        return {token: plist for token, plist in self.items()}

    # -- pickling (snapshot v3 payload) --------------------------------
    def __getstate__(self):
        self.seal()
        return (self.tokens, self.offsets, self.rids, self.positions)

    def __setstate__(self, state) -> None:
        self.tokens, self.offsets, self.rids, self.positions = state
        self._slots = {token: slot for slot, token in enumerate(self.tokens)}
        self._pending = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FragmentPostings(tokens={self.n_tokens}, entries={len(self)}, "
            f"bytes={self.nbytes()})"
        )


def bisect_contains(column, value: int) -> bool:
    """Membership test on a strictly increasing id column (binary search)."""
    i = bisect_left(column, value)
    return i < len(column) and column[i] == value
