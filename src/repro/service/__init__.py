"""The serving layer: online similarity search over a persistent index.

Everything the offline pipeline computes per join — global ordering,
Even-TF pivots, vertical segments, the filter lemmas — is reusable as a
standing index.  This package builds that index once
(:class:`~repro.service.index.SegmentIndex`), serves exact probe queries
over it with caching and batching
(:class:`~repro.service.service.SimilarityService`), and persists it with
versioned, atomically-swapped snapshots (:mod:`repro.service.snapshot`).

Example:
    >>> from repro.data import make_corpus
    >>> from repro.service import SegmentIndex, SimilarityService
    >>> records = make_corpus("wiki", 100, seed=7)
    >>> service = SimilarityService(SegmentIndex.build(records, n_vertical=8))
    >>> hits = service.search(records[0].tokens, theta=0.9)
    >>> hits[0].rid == records[0].rid  # the record itself, score 1.0
    True
"""

from repro.service.cache import LRUCache
from repro.service.columnar import FragmentPostings
from repro.service.index import EncodedQuery, SearchHit, SegmentIndex
from repro.service.service import SimilarityService
from repro.service.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    load_index,
    save_index,
)
from repro.service.vocab import TokenVocab

__all__ = [
    "EncodedQuery",
    "FragmentPostings",
    "LRUCache",
    "SearchHit",
    "SegmentIndex",
    "SimilarityService",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "TokenVocab",
    "load_index",
    "save_index",
]
