"""V-Smart-Join, Online-Aggregation variant [Metwally & Faloutsos — ref 13].

Two phases, as described in Section II-C of the paper:

* **Join** — map emits *every* token of every record as a key (building,
  in effect, a full inverted index on the cluster); each reducer
  enumerates all pairs in its token's posting list and emits partial
  counts.  No filtering is applied anywhere.
* **Similarity** — aggregate the per-token partial counts of each pair and
  apply the threshold only at the very end (which is why the paper observes
  its runtime is insensitive to ``θ``).

The pair enumeration is quadratic in each token's frequency, so frequent
tokens blow the intermediate output up; the paper reports it "cannot run
completely" on the large datasets.  ``max_intermediate_pairs`` reproduces
that behaviour: the driver estimates the enumeration volume up front and
raises :class:`~repro.errors.ExecutionError` when it exceeds the budget
(benches report this as DNF).
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Tuple

from repro.data.records import Record, RecordCollection
from repro.errors import ExecutionError
from repro.mapreduce.job import JobContext, MapReduceJob
from repro.mapreduce.pipeline import PipelineResult
from repro.mapreduce.runtime import SimulatedCluster
from repro.similarity.functions import SimilarityFunction
from repro.similarity.thresholds import passes_threshold, similarity_from_overlap

Posting = Tuple[int, int]  # (rid, record size)


class _JoinPhaseJob(MapReduceJob):
    """Token → posting list → all-pairs partial counts."""

    name = "vsmart-join"

    def map(self, key: int, value: Record, emit, context: JobContext) -> None:
        size = value.size
        for token in value.tokens:
            emit(token, (value.rid, size))

    def reduce(
        self, key: str, values: List[Posting], emit, context: JobContext
    ) -> None:
        values = sorted(values)
        for i, (rid_a, size_a) in enumerate(values):
            for rid_b, size_b in values[i + 1 :]:
                emit((rid_a, rid_b), (1, size_a, size_b))
        context.increment(
            "vsmart.join", "pairs_enumerated", len(values) * (len(values) - 1) // 2
        )


class _SimilarityPhaseJob(MapReduceJob):
    """Aggregate counts per pair; threshold applied only here."""

    name = "vsmart-similarity"

    def __init__(self, theta: float, func: SimilarityFunction) -> None:
        self.theta = theta
        self.func = SimilarityFunction(func)

    def combine(self, key, values, context: JobContext):
        if len(values) == 1:
            return None
        total = sum(common for common, _, _ in values)
        _, size_a, size_b = values[0]
        return [(key, (total, size_a, size_b))]

    def reduce(self, key, values, emit, context: JobContext) -> None:
        total = sum(common for common, _, _ in values)
        _, size_a, size_b = values[0]
        if passes_threshold(self.func, self.theta, total, size_a, size_b):
            emit(key, similarity_from_overlap(self.func, total, size_a, size_b))


class VSmartJoin:
    """Driver for the two-phase V-Smart-Join (Online-Aggregation)."""

    algorithm_name = "V-Smart-Join"

    def __init__(
        self,
        theta: float,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        cluster: Optional[SimulatedCluster] = None,
        max_intermediate_pairs: Optional[int] = 50_000_000,
    ) -> None:
        self.theta = theta
        self.func = SimilarityFunction(func)
        self.cluster = cluster or SimulatedCluster()
        self.max_intermediate_pairs = max_intermediate_pairs

    def estimated_intermediate_pairs(self, records: RecordCollection) -> int:
        """Exact size of the Join phase's output: ``Σ_token C(freq, 2)``."""
        frequencies: Counter = Counter()
        for record in records:
            frequencies.update(record.tokens)
        return sum(freq * (freq - 1) // 2 for freq in frequencies.values())

    def run(self, records: RecordCollection) -> PipelineResult:
        """Self-join ``records``; raises ExecutionError when over budget."""
        if self.max_intermediate_pairs is not None:
            estimate = self.estimated_intermediate_pairs(records)
            if estimate > self.max_intermediate_pairs:
                raise ExecutionError(
                    f"V-Smart-Join would enumerate {estimate} intermediate "
                    f"pairs (budget {self.max_intermediate_pairs}); "
                    "it does not finish on this dataset"
                )
        join_result = self.cluster.run_job(
            _JoinPhaseJob(), [(record.rid, record) for record in records]
        )
        similarity_result = self.cluster.run_job(
            _SimilarityPhaseJob(self.theta, self.func), join_result.output
        )
        return PipelineResult(
            algorithm=self.algorithm_name,
            pairs=similarity_result.output,
            job_results=[join_result, similarity_result],
        )
