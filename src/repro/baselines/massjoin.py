"""MassJoin [Deng et al. — ref 4], Merge and Merge+Light variants.

MassJoin generates partition-based signatures so that any similar pair is
guaranteed to share one signature.  No public code exists; this is a
faithful-in-spirit reconstruction (DESIGN.md §1/§4.5) built on the Hamming
pigeonhole:

    if ``sim(s, t) ≥ θ`` then ``H(s, t) = |s Δ t| = |s| + |t| − 2·|s ∩ t|``
    is at most ``|s| + |t| − 2τ``; splitting the globally ordered token
    universe into ``m(a, b) = a + b − 2τ(a, b) + 1`` ranges therefore leaves
    at least one range on which the two records have *identical* content.

Signature keys are ``(a, b, j, content)``: the indexed side ``s`` (size
``a``) enumerates every admissible partner size ``b ∈ [a, ub(a)]``, the
probe side ``t`` (size ``b``) enumerates ``a' ∈ [lb(b), b]`` — the paper's
"for each integer from 80 to 125, string t will generate signatures
separately" behaviour, and the reason MassJoin's intermediate output dwarfs
its input (105 GB from 1.65 GB in the paper's measurements).

* **Merge** — the scheme above, one key per exact partner length.
* **Merge+Light** — the paper's "light filtering by token grouping":
  partner lengths are grouped into buckets of ``light_group_size`` and the
  partition count is computed conservatively at the bucket maximum, cutting
  the signature count by roughly the bucket size while remaining exact.

Pipeline: ordering → signatures/candidates → dedup → verification (against
the broadcast record data, as MassJoin's final job does).
``max_signatures`` reproduces the paper's DNF behaviour on large inputs.
"""

from __future__ import annotations

import bisect
from typing import Dict, Optional, Tuple

from repro.core.ordering import GlobalOrder, compute_global_ordering
from repro.data.records import Record, RecordCollection
from repro.errors import ConfigError, ExecutionError
from repro.mapreduce.job import JobContext, MapReduceJob
from repro.mapreduce.pipeline import PipelineResult
from repro.mapreduce.runtime import SimulatedCluster
from repro.similarity.functions import SimilarityFunction
from repro.similarity.thresholds import (
    length_lower_bound,
    length_upper_bound,
    required_overlap,
)
from repro.similarity.verify import verify_pair


def partition_count(
    func: SimilarityFunction, theta: float, size_a: int, size_b: int
) -> int:
    """``m(a, b)``: one more than the Hamming budget of a similar pair."""
    tau = required_overlap(func, theta, size_a, size_b)
    return max(1, size_a + size_b - 2 * tau + 1)


def domain_slice(
    ranks: Tuple[int, ...], vocab: int, j: int, m: int
) -> Tuple[int, ...]:
    """The record's content on the ``j``-th of ``m`` even universe ranges."""
    low = j * vocab // m
    high = (j + 1) * vocab // m
    return ranks[bisect.bisect_left(ranks, low) : bisect.bisect_left(ranks, high)]


class _SignatureJob(MapReduceJob):
    """Emit indexed/probe signatures; reduce to candidate pairs."""

    name = "massjoin-signatures"

    def __init__(
        self,
        theta: float,
        func: SimilarityFunction,
        order: GlobalOrder,
        light_group_size: int,
    ) -> None:
        self.theta = theta
        self.func = SimilarityFunction(func)
        self.order = order
        self.group = light_group_size

    # -- signature generation -------------------------------------------
    def _bucket(self, length: int) -> int:
        return length // self.group

    def _bucket_partition_count(self, size: int, bucket: int) -> int:
        """Conservative ``m`` for a partner-length bucket.

        ``m(a, b)`` is not monotone in ``b`` (the ceil inside the required
        overlap can jump), so the safe bucket-wide partition count is the
        *maximum* over the bucket's lengths — any smaller ``m`` could fall
        below a pair's Hamming budget and break the pigeonhole guarantee.
        """
        low = bucket * self.group
        return max(
            partition_count(self.func, self.theta, size, partner)
            for partner in range(low, low + self.group)
        )

    def map(self, key: int, value: Record, emit, context: JobContext) -> None:
        ranks = self.order.encode(value)
        a = len(ranks)
        if a == 0:
            return
        vocab = self.order.vocab_size
        rid = value.rid
        emitted = 0
        # Indexed side: partner is at least as long.
        upper = length_upper_bound(self.func, self.theta, a)
        for bucket in range(self._bucket(a), self._bucket(upper) + 1):
            m = self._bucket_partition_count(a, bucket)
            for j in range(m):
                content = domain_slice(ranks, vocab, j, m)
                emit((a, bucket, j, content), ("S", rid))
                emitted += 1
        # Probe side: partner is at most as long.
        lower = max(1, length_lower_bound(self.func, self.theta, a))
        my_bucket = self._bucket(a)
        for partner in range(lower, a + 1):
            m = self._bucket_partition_count(partner, my_bucket)
            for j in range(m):
                content = domain_slice(ranks, vocab, j, m)
                emit((partner, my_bucket, j, content), ("L", rid))
                emitted += 1
        context.increment("massjoin.map", "signatures", emitted)

    # -- candidate generation -------------------------------------------
    def reduce(self, key, values, emit, context: JobContext) -> None:
        smalls = [rid for side, rid in values if side == "S"]
        larges = [rid for side, rid in values if side == "L"]
        if not smalls or not larges:
            return
        seen = set()
        for rid_s in smalls:
            for rid_t in larges:
                if rid_s == rid_t:
                    continue
                pair = (rid_s, rid_t) if rid_s < rid_t else (rid_t, rid_s)
                if pair not in seen:
                    seen.add(pair)
                    emit(pair, 1)
        context.increment("massjoin.reduce", "candidates", len(seen))


class _DedupJob(MapReduceJob):
    """A pair matches on many signature keys; keep it once."""

    name = "massjoin-dedup"

    def combine(self, key, values, context: JobContext):
        return [(key, 1)]

    def reduce(self, key, values, emit, context: JobContext) -> None:
        emit(key, 1)


class _VerifyJob(MapReduceJob):
    """Verify candidates against the broadcast record data."""

    name = "massjoin-verify"

    def __init__(
        self,
        theta: float,
        func: SimilarityFunction,
        encoded: Dict[int, Tuple[int, ...]],
    ) -> None:
        self.theta = theta
        self.func = SimilarityFunction(func)
        self.encoded = encoded

    def reduce(self, key, values, emit, context: JobContext) -> None:
        rid_s, rid_t = key
        tokens_s = self.encoded[rid_s]
        tokens_t = self.encoded[rid_t]
        context.increment("massjoin.verify", "candidates")
        score = verify_pair(
            tokens_s, tokens_t, self.theta, self.func, sorted_input=True
        )
        if score is not None:
            emit(key, score)


class MassJoin:
    """Driver for the four-job MassJoin pipeline.

    ``variant`` is ``"merge"`` (exact partner lengths) or ``"merge+light"``
    (length buckets of ``light_group_size``).
    """

    def __init__(
        self,
        theta: float,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        cluster: Optional[SimulatedCluster] = None,
        variant: str = "merge",
        light_group_size: int = 4,
        max_signatures: Optional[int] = 20_000_000,
    ) -> None:
        if variant not in ("merge", "merge+light"):
            raise ConfigError(f"unknown MassJoin variant {variant!r}")
        if light_group_size < 1:
            raise ConfigError("light_group_size must be >= 1")
        self.theta = theta
        self.func = SimilarityFunction(func)
        self.cluster = cluster or SimulatedCluster()
        self.variant = variant
        self.group = 1 if variant == "merge" else light_group_size
        self.max_signatures = max_signatures

    @property
    def algorithm_name(self) -> str:
        return "MassJoin-Merge" if self.variant == "merge" else "MassJoin-Merge+Light"

    def estimated_signatures(self, records: RecordCollection) -> int:
        """Driver-side estimate of the signature job's map output records."""

        def bucket_m(size: int, bucket: int) -> int:
            low = bucket * self.group
            return max(
                partition_count(self.func, self.theta, size, partner)
                for partner in range(low, low + self.group)
            )

        total = 0
        for record in records:
            a = record.size
            if a == 0:
                continue
            upper = length_upper_bound(self.func, self.theta, a)
            for bucket in range(a // self.group, upper // self.group + 1):
                total += bucket_m(a, bucket)
            lower = max(1, length_lower_bound(self.func, self.theta, a))
            for partner in range(lower, a + 1):
                total += bucket_m(partner, a // self.group)
        return total

    def run(self, records: RecordCollection) -> PipelineResult:
        """Self-join ``records``; raises ExecutionError when over budget."""
        if self.max_signatures is not None:
            estimate = self.estimated_signatures(records)
            if estimate > self.max_signatures:
                raise ExecutionError(
                    f"{self.algorithm_name} would emit {estimate} signatures "
                    f"(budget {self.max_signatures}); it does not finish on "
                    "this dataset"
                )
        order, ordering_result = compute_global_ordering(self.cluster, records)
        signature_job = _SignatureJob(self.theta, self.func, order, self.group)
        signature_result = self.cluster.run_job(
            signature_job, [(record.rid, record) for record in records]
        )
        dedup_result = self.cluster.run_job(_DedupJob(), signature_result.output)
        encoded = {record.rid: order.encode(record) for record in records}
        verify_result = self.cluster.run_job(
            _VerifyJob(self.theta, self.func, encoded), dedup_result.output
        )
        return PipelineResult(
            algorithm=self.algorithm_name,
            pairs=verify_result.output,
            job_results=[
                ordering_result,
                signature_result,
                dedup_result,
                verify_result,
            ],
        )
