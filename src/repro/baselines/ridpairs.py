"""RIDPairsPPJoin [Vernica, Carey, Li — ref 18 in the paper].

The token-keyed, signature-based MapReduce join FS-Join is primarily
compared against.  Pipeline:

1. **Ordering** — token frequencies (shared with FS-Join).
2. **Kernel** — map: emit ``(prefix_token, (rid, ranks))`` for every token
   in the record's prefix (this is where the duplication happens: a record
   is replicated once per prefix token); reduce: run in-memory PPJoin over
   each token group and emit verified pairs.
3. **Dedup** — a pair sharing several prefix tokens is found in several
   groups; one aggregation job keeps each pair once.

The duplication factor and the skewed reduce groups (frequent prefix
tokens attract huge value lists) are the two weaknesses the paper's
Table I attributes to this algorithm; both are visible in this
implementation's job metrics.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.baselines.ppjoin import ppjoin
from repro.core.ordering import GlobalOrder, compute_global_ordering
from repro.data.records import Record, RecordCollection
from repro.mapreduce.job import JobContext, MapReduceJob
from repro.mapreduce.pipeline import PipelineResult
from repro.mapreduce.runtime import SimulatedCluster
from repro.similarity.functions import SimilarityFunction
from repro.similarity.thresholds import prefix_length

EncodedValue = Tuple[int, Tuple[int, ...]]  # (rid, ranks)


class _KernelJob(MapReduceJob):
    """Prefix-token keys → per-group PPJoin."""

    name = "ridpairs-kernel"

    def __init__(
        self, theta: float, func: SimilarityFunction, order: GlobalOrder
    ) -> None:
        self.theta = theta
        self.func = SimilarityFunction(func)
        self.order = order

    def map(self, key: int, value: Record, emit, context: JobContext) -> None:
        ranks = self.order.encode(value)
        if not ranks:
            return
        prefix = min(len(ranks), prefix_length(self.func, self.theta, len(ranks)))
        for token in ranks[:prefix]:
            emit(token, (value.rid, ranks))
        context.increment("ridpairs.map", "records")
        context.increment("ridpairs.map", "replicas", prefix)

    def reduce(
        self, key: int, values: List[EncodedValue], emit, context: JobContext
    ) -> None:
        context.increment("ridpairs.reduce", "groups")
        context.increment("ridpairs.reduce", "group_records", len(values))
        if len(values) < 2:
            return
        for pair, score in ppjoin(values, self.theta, self.func).items():
            emit(pair, score)


class _DedupJob(MapReduceJob):
    """Keep each verified pair exactly once."""

    name = "ridpairs-dedup"

    def combine(self, key, values: List[float], context: JobContext):
        return [(key, values[0])]

    def reduce(self, key, values: List[float], emit, context: JobContext) -> None:
        context.increment("ridpairs.dedup", "duplicates_removed", len(values) - 1)
        emit(key, values[0])


class RIDPairsPPJoin:
    """Driver for the three-job RIDPairsPPJoin pipeline."""

    algorithm_name = "RIDPairsPPJoin"

    def __init__(
        self,
        theta: float,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        cluster: Optional[SimulatedCluster] = None,
    ) -> None:
        self.theta = theta
        self.func = SimilarityFunction(func)
        self.cluster = cluster or SimulatedCluster()

    def run(self, records: RecordCollection) -> PipelineResult:
        """Self-join ``records``; same result format as FS-Join."""
        order, ordering_result = compute_global_ordering(self.cluster, records)
        kernel = _KernelJob(self.theta, self.func, order)
        kernel_result = self.cluster.run_job(
            kernel, [(record.rid, record) for record in records]
        )
        dedup_result = self.cluster.run_job(_DedupJob(), kernel_result.output)
        return PipelineResult(
            algorithm=self.algorithm_name,
            pairs=dedup_result.output,
            job_results=[ordering_result, kernel_result, dedup_result],
        )
