"""In-memory AllPairs [Bayardo, Ma, Srikant].

The ancestor of PPJoin: prefix index plus length filter, but *no*
positional and no suffix filtering — every prefix collision between
length-compatible records becomes a candidate and is verified.  Included as
the weakest member of the in-memory family so the filter lineage
(AllPairs → PPJoin → PPJoin+) can be measured (``bench_ext_inmemory``).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.baselines.ppjoin import EncodedRecord, JoinStats, encode_by_frequency
from repro.data.records import RecordCollection
from repro.similarity.functions import SimilarityFunction
from repro.similarity.thresholds import length_lower_bound, prefix_length
from repro.similarity.verify import verify_pair


def allpairs(
    encoded: Sequence[EncodedRecord],
    theta: float,
    func: SimilarityFunction = SimilarityFunction.JACCARD,
    stats: Optional[JoinStats] = None,
) -> Dict[Tuple[int, int], float]:
    """AllPairs self-join over rank-encoded records."""
    func = SimilarityFunction(func)
    items = sorted(encoded, key=lambda item: (len(item[1]), item[0]))
    index: Dict[int, list] = {}
    results: Dict[Tuple[int, int], float] = {}
    for item_index, (rid, tokens) in enumerate(items):
        size = len(tokens)
        if size == 0:
            continue
        probe_len = min(size, prefix_length(func, theta, size))
        min_partner = length_lower_bound(func, theta, size)
        candidates = set()
        for position in range(probe_len):
            for other_index in index.get(tokens[position], ()):
                if stats is not None:
                    stats.probe_hits += 1
                candidates.add(other_index)
        for other_index in candidates:
            other_rid, other_tokens = items[other_index]
            other_size = len(other_tokens)
            if other_size < min_partner:
                continue
            if stats is not None:
                stats.candidates += 1
                stats.verifications += 1
            score = verify_pair(tokens, other_tokens, theta, func, sorted_input=True)
            if score is not None:
                key = (rid, other_rid) if rid < other_rid else (other_rid, rid)
                results[key] = score
                if stats is not None:
                    stats.results += 1
        for position in range(probe_len):
            index.setdefault(tokens[position], []).append(item_index)
    return results


def allpairs_self_join(
    records: RecordCollection,
    theta: float,
    func: SimilarityFunction = SimilarityFunction.JACCARD,
) -> Dict[Tuple[int, int], float]:
    """Convenience wrapper: frequency-encode then AllPairs."""
    return allpairs(encode_by_frequency(records), theta, func)
