"""Exact all-pairs self-join — the test oracle.

Quadratic and intentionally simple: every pair's similarity is computed
directly from the token sets.  Used by the test suite (and nothing else) to
validate every distributed algorithm's result set.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.data.records import RecordCollection
from repro.similarity.functions import SimilarityFunction, get_similarity_function
from repro.similarity.thresholds import EPS


def naive_self_join(
    records: RecordCollection,
    theta: float,
    func: SimilarityFunction = SimilarityFunction.JACCARD,
) -> Dict[Tuple[int, int], float]:
    """All similar pairs ``(rid_small, rid_large) → score`` with ``score ≥ θ``."""
    similarity = get_similarity_function(func)
    token_sets = [(record.rid, record.token_set()) for record in records]
    results: Dict[Tuple[int, int], float] = {}
    for i, (rid_a, set_a) in enumerate(token_sets):
        for rid_b, set_b in token_sets[i + 1 :]:
            score = similarity(set_a, set_b)
            if score + EPS >= theta:
                key = (rid_a, rid_b) if rid_a < rid_b else (rid_b, rid_a)
                results[key] = score
    return results


def naive_rs_join(
    left: RecordCollection,
    right: RecordCollection,
    theta: float,
    func: SimilarityFunction = SimilarityFunction.JACCARD,
) -> Dict[Tuple[int, int], float]:
    """All cross-collection pairs ``(rid_left, rid_right) → score ≥ θ``."""
    similarity = get_similarity_function(func)
    right_sets = [(record.rid, record.token_set()) for record in right]
    results: Dict[Tuple[int, int], float] = {}
    for record in left:
        set_l = record.token_set()
        for rid_r, set_r in right_sets:
            score = similarity(set_l, set_r)
            if score + EPS >= theta:
                results[(record.rid, rid_r)] = score
    return results
