"""In-memory PPJoin and PPJoin+ (prefix + length + positional + suffix filtering).

PPJoin [Xiao et al.] is the centralized kernel RIDPairsPPJoin runs inside
its reducers, and an independent oracle for the test suite.  Records are
processed in ascending size order; each record probes an inverted index
over the *prefixes* of previously seen records, with the positional filter
pruning candidates whose best-case remaining overlap cannot reach the
required overlap ``τ``.

PPJoin+ adds the *suffix filter*: before verifying a candidate pair it
computes a cheap lower bound on the pair's Hamming distance by recursively
partitioning the token arrays around probe tokens; candidates whose bound
exceeds the budget ``|x| + |y| − 2τ`` are provably dissimilar and skipped
without a full intersection.
"""

from __future__ import annotations

import bisect
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.records import RecordCollection
from repro.similarity.functions import SimilarityFunction
from repro.similarity.thresholds import (
    length_lower_bound,
    prefix_length,
    required_overlap,
)
from repro.similarity.verify import verify_pair

EncodedRecord = Tuple[int, Tuple[int, ...]]  # (rid, strictly increasing ranks)


@dataclass
class JoinStats:
    """Work counters of one in-memory join (for the filter-power bench)."""

    probe_hits: int = 0
    candidates: int = 0
    suffix_pruned: int = 0
    verifications: int = 0
    results: int = 0


def encode_by_frequency(records: RecordCollection) -> List[EncodedRecord]:
    """Rank-encode records by ascending token frequency (rarest = rank 0)."""
    frequencies: Counter = Counter()
    for record in records:
        frequencies.update(record.tokens)
    rank = {
        token: index
        for index, (token, _) in enumerate(
            sorted(frequencies.items(), key=lambda item: (item[1], item[0]))
        )
    }
    return [
        (record.rid, tuple(sorted(rank[token] for token in record.tokens)))
        for record in records
    ]


#: Recursion cutoff for the suffix filter (as in the PPJoin+ paper, shallow
#: depths already remove most false candidates).
_SUFFIX_MAX_DEPTH = 3


def suffix_hamming_lower_bound(
    x: Sequence[int], y: Sequence[int], budget: int, depth: int = 0
) -> int:
    """Lower bound on the Hamming distance ``|x Δ y|`` of two sorted arrays.

    Recursively partitions both arrays around ``y``'s middle token: tokens
    of one side can only match tokens of the same side, so the distances of
    the halves add (plus one if the probe token is missing from ``x``).
    Returns early once the bound exceeds ``budget``.  Never overestimates,
    so pruning on it is safe.
    """
    if not x or not y or depth >= _SUFFIX_MAX_DEPTH:
        return abs(len(x) - len(y))
    mid = len(y) // 2
    token = y[mid]
    y_left, y_right = y[:mid], y[mid + 1 :]
    position = bisect.bisect_left(x, token)
    found = position < len(x) and x[position] == token
    x_left = x[:position]
    x_right = x[position + 1 :] if found else x[position:]
    miss = 0 if found else 1
    bound = abs(len(x_left) - len(y_left)) + abs(len(x_right) - len(y_right)) + miss
    if bound > budget:
        return bound
    left = suffix_hamming_lower_bound(
        x_left, y_left, budget - abs(len(x_right) - len(y_right)) - miss, depth + 1
    )
    bound = left + abs(len(x_right) - len(y_right)) + miss
    if bound > budget:
        return bound
    right = suffix_hamming_lower_bound(
        x_right, y_right, budget - left - miss, depth + 1
    )
    return left + right + miss


def ppjoin(
    encoded: Sequence[EncodedRecord],
    theta: float,
    func: SimilarityFunction = SimilarityFunction.JACCARD,
    use_suffix_filter: bool = False,
    stats: Optional[JoinStats] = None,
) -> Dict[Tuple[int, int], float]:
    """PPJoin (or PPJoin+ with ``use_suffix_filter``) self-join.

    Returns ``(rid_small, rid_large) → score`` for every pair with
    ``sim ≥ θ``.  The encoding must be shared (one global ordering) and
    each record's ranks strictly increasing.  ``stats`` collects work
    counters when provided.
    """
    func = SimilarityFunction(func)
    items = sorted(encoded, key=lambda item: (len(item[1]), item[0]))
    # token -> list of (item index, position in that record's prefix)
    index: Dict[int, List[Tuple[int, int]]] = {}
    results: Dict[Tuple[int, int], float] = {}
    for item_index, (rid, tokens) in enumerate(items):
        size = len(tokens)
        if size == 0:
            continue
        probe_len = min(size, prefix_length(func, theta, size))
        min_partner = length_lower_bound(func, theta, size)
        overlaps: Dict[int, int] = {}
        pruned: set = set()
        for position in range(probe_len):
            token = tokens[position]
            for other_index, other_position in index.get(token, ()):
                if other_index in pruned:
                    continue
                if stats is not None:
                    stats.probe_hits += 1
                other_rid, other_tokens = items[other_index]
                other_size = len(other_tokens)
                if other_size < min_partner:
                    continue
                tau = required_overlap(func, theta, size, other_size)
                current = overlaps.get(other_index, 0)
                # Positional filter: best case = matches so far + this match
                # + everything after both positions.
                best_case = current + 1 + min(
                    size - position - 1, other_size - other_position - 1
                )
                if best_case >= tau:
                    overlaps[other_index] = current + 1
                else:
                    pruned.add(other_index)
                    overlaps.pop(other_index, None)
        for other_index in overlaps:
            other_rid, other_tokens = items[other_index]
            other_size = len(other_tokens)
            if stats is not None:
                stats.candidates += 1
            if use_suffix_filter:
                tau = required_overlap(func, theta, size, other_size)
                budget = size + other_size - 2 * tau
                if suffix_hamming_lower_bound(tokens, other_tokens, budget) > budget:
                    if stats is not None:
                        stats.suffix_pruned += 1
                    continue
            if stats is not None:
                stats.verifications += 1
            score = verify_pair(tokens, other_tokens, theta, func, sorted_input=True)
            if score is not None:
                key = (rid, other_rid) if rid < other_rid else (other_rid, rid)
                results[key] = score
                if stats is not None:
                    stats.results += 1
        for position in range(probe_len):
            index.setdefault(tokens[position], []).append((item_index, position))
    return results


def ppjoin_plus(
    encoded: Sequence[EncodedRecord],
    theta: float,
    func: SimilarityFunction = SimilarityFunction.JACCARD,
    stats: Optional[JoinStats] = None,
) -> Dict[Tuple[int, int], float]:
    """PPJoin+ : PPJoin with the suffix filter enabled."""
    return ppjoin(encoded, theta, func, use_suffix_filter=True, stats=stats)


def ppjoin_self_join(
    records: RecordCollection,
    theta: float,
    func: SimilarityFunction = SimilarityFunction.JACCARD,
) -> Dict[Tuple[int, int], float]:
    """Convenience wrapper: frequency-encode then PPJoin."""
    return ppjoin(encode_by_frequency(records), theta, func)
