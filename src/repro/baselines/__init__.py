"""Baseline algorithms the paper compares FS-Join against.

* :mod:`repro.baselines.naive` — exact all-pairs join (test oracle only).
* :mod:`repro.baselines.ppjoin` — in-memory PPJoin (prefix + length +
  positional filtering); both a second oracle and the verification kernel
  inside RIDPairsPPJoin's reducers.
* :mod:`repro.baselines.ridpairs` — RIDPairsPPJoin [Vernica et al., 18].
* :mod:`repro.baselines.vsmart` — V-Smart-Join Online-Aggregation [13].
* :mod:`repro.baselines.massjoin` — MassJoin Merge / Merge+Light [4].

Every MapReduce baseline exposes ``run(records) -> PipelineResult`` with the
same result format as FS-Join, so benches and tests treat all algorithms
uniformly.
"""

from repro.baselines.naive import naive_rs_join, naive_self_join
from repro.baselines.allpairs import allpairs, allpairs_self_join
from repro.baselines.ppjoin import ppjoin, ppjoin_plus, ppjoin_self_join
from repro.baselines.ridpairs import RIDPairsPPJoin
from repro.baselines.vsmart import VSmartJoin
from repro.baselines.massjoin import MassJoin

__all__ = [
    "naive_self_join",
    "naive_rs_join",
    "allpairs",
    "allpairs_self_join",
    "ppjoin",
    "ppjoin_plus",
    "ppjoin_self_join",
    "RIDPairsPPJoin",
    "VSmartJoin",
    "MassJoin",
]
