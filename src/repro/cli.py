"""Command-line interface.

Subcommands:

* ``generate`` — write a synthetic corpus (email/pubmed/wiki shaped);
* ``stats`` — print Table-III-style statistics of a corpus file;
* ``join`` — self-join (or R-S join with ``--right``) a corpus file with a
  chosen algorithm and print the similar pairs as TSV;
* ``topk`` — print the k most similar pairs;
* ``estimate`` — sampling-based estimate of the join's result count;
* ``index`` — build a persistent similarity-search index (serving layer);
* ``search`` — probe an index file and print the exact hits as JSON;
* ``ingest`` — stream a corpus through the WAL + memtable + compaction
  write path and print ingest statistics; ``--verify`` checks the streamed
  index is bit-identical to an offline build, ``--snapshot`` saves it for
  ``repro search``;
* ``cluster`` — sharded, replicated serving: ``build`` a cluster directory,
  ``search`` it scatter-gather (with ``--fail-shard`` failure injection),
  inspect ``status``, or replay skewed traffic with ``serve-sim``
  (optionally rebalancing hot fragments);
* ``gateway`` — async multi-tenant gateway over a cluster directory:
  ``serve-sim`` replays multi-tenant Zipf traffic through request
  coalescing, micro-batched scatter, per-tenant quotas and (with
  ``--hedge``) hedged backup probes, printing shared-clock p50/p95/p99
  per tenant; ``--verify`` diffs every answer against a direct router;
* ``serve`` — the real TCP front door: load a cluster directory, stand a
  :class:`~repro.gateway.gateway.SimilarityGateway` behind an asyncio
  socket server, and serve length-prefixed JSON frames until SIGTERM /
  SIGINT triggers a graceful drain (final stats printed as JSON);
* ``query`` — client end of the same wire: ``--connect HOST:PORT`` and
  probe a running server (``--query`` / ``--query-file`` / ``--status``
  / ``--drain``), printing the same JSON documents ``cluster search``
  prints so the two paths diff cleanly;
* ``chaos`` — seeded chaos drill: inject faults (task deaths, stragglers,
  a driver kill, checkpoint corruption, replica flaps, hot-key storms,
  snapshot bit-flips, torn frames and killed connections) across the
  pipeline, cluster, service, gateway and network layers and print a
  JSON recovery report; exits 1 unless every scenario recovered to
  bit-identical output or a typed error;
* ``trace`` — summarize/convert a trace written with ``--trace``.

``join`` and ``search`` accept ``--trace PATH``: the run records one span
per pipeline phase, job, map/reduce wave and task attempt (or per probe
stage) and writes them as JSONL to ``PATH`` plus a Chrome
``trace_event`` JSON twin (open in ``chrome://tracing`` or
https://ui.perfetto.dev).  Results are bit-identical with or without
``--trace``.

Examples::

    python -m repro generate --corpus wiki --records 500 --output wiki.txt
    python -m repro stats wiki.txt
    python -m repro join wiki.txt --theta 0.8 --algorithm fsjoin
    python -m repro join left.txt --right right.txt --theta 0.8
    python -m repro join wiki.txt --theta 0.8 --trace run.jsonl
    python -m repro topk wiki.txt -k 10
    python -m repro index wiki.txt --output wiki.idx
    python -m repro search wiki.idx --query "w007 w012 w040" --theta 0.6
    python -m repro search wiki.idx --rid 17 --theta 0.8 -k 5
    python -m repro cluster build wiki.txt --output wiki.cluster \\
        --shards 4 --replication 2
    python -m repro cluster search wiki.cluster --rid 17 --theta 0.8 \\
        --fail-shard 1
    python -m repro cluster serve-sim wiki.cluster --probes 500 --zipf 1.2 \\
        --rebalance
    python -m repro gateway serve-sim wiki.cluster --probes 400 --zipf 1.2 \\
        --tenants 3 --storm 32 --hedge --slow-replica 0.02 --verify
    python -m repro ingest wiki.txt --base 100 --batch-size 32 --verify
    python -m repro serve wiki.cluster --port 7777 &
    python -m repro query --connect 127.0.0.1:7777 \\
        --query "w007 w012 w040" --theta 0.6
    python -m repro query --connect 127.0.0.1:7777 --drain
    python -m repro chaos --seed 7 --scenario net
    python -m repro chaos --seed 7 --scenario gateway
    python -m repro chaos --seed 7 --scenario ingest
    python -m repro chaos --seed 7
    python -m repro chaos --seed 7 --scenario join --trace chaos.jsonl
    python -m repro trace run.jsonl --chrome run.chrome.json
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.baselines import MassJoin, RIDPairsPPJoin, VSmartJoin
from repro.core import FSJoin, FSJoinConfig, PivotMethod
from repro.core.rsjoin import FSJoinRS
from repro.core.topk import topk_similar_pairs
from repro.data import dataset_stats, load_records, make_corpus, save_records
from repro.errors import ReproError
from repro.mapreduce.executors import ExecutorKind
from repro.mapreduce.runtime import ClusterSpec, SimulatedCluster
from repro.observability import (
    NOOP_TRACER,
    Tracer,
    chrome_path_for,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.similarity.functions import SimilarityFunction

ALGORITHMS = (
    "fsjoin",
    "fsjoin-v",
    "ridpairs",
    "vsmart",
    "massjoin",
    "massjoin-light",
    "lsh",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FS-Join reproduction: distributed set similarity joins.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="write a synthetic corpus")
    generate.add_argument("--corpus", choices=("email", "pubmed", "wiki"),
                          default="wiki")
    generate.add_argument("--records", type=int, default=500)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True)

    stats = sub.add_parser("stats", help="dataset statistics (Table III)")
    stats.add_argument("input")

    join = sub.add_parser("join", help="similarity self-join or R-S join")
    join.add_argument("input")
    join.add_argument("--right", help="second collection (R-S join)")
    join.add_argument("--theta", type=float, default=0.8)
    join.add_argument("--func", choices=[f.value for f in SimilarityFunction],
                      default="jaccard")
    join.add_argument("--algorithm", choices=ALGORITHMS, default="fsjoin")
    join.add_argument("--workers", type=int, default=10)
    join.add_argument("--vertical", type=int, default=30)
    join.add_argument("--horizontal", type=int, default=10)
    join.add_argument("--executor", choices=[k.value for k in ExecutorKind],
                      default="serial",
                      help="task-execution backend: serial (default, "
                           "deterministic single process), thread, or "
                           "process (real cores)")
    join.add_argument("--quiet", action="store_true",
                      help="suppress the metrics summary on stderr")
    join.add_argument("--trace", metavar="PATH",
                      help="record spans for every pipeline phase, job and "
                           "task attempt; writes JSONL to PATH plus a Chrome "
                           "trace_event JSON twin (results are unchanged)")

    topk = sub.add_parser("topk", help="k most similar pairs")
    topk.add_argument("input")
    topk.add_argument("-k", type=int, default=10)
    topk.add_argument("--func", choices=[f.value for f in SimilarityFunction],
                      default="jaccard")
    topk.add_argument("--workers", type=int, default=10)
    topk.add_argument("--executor", choices=[k.value for k in ExecutorKind],
                      default="serial")

    index = sub.add_parser(
        "index", help="build a persistent similarity-search index"
    )
    index.add_argument("input")
    index.add_argument("--output", required=True,
                       help="snapshot file the index is written to")
    index.add_argument("--vertical", type=int, default=30)
    index.add_argument("--pivot-method",
                       choices=[m.value for m in PivotMethod],
                       default=PivotMethod.EVEN_TF.value)
    index.add_argument("--pivot-seed", type=int, default=0)

    search = sub.add_parser(
        "search", help="probe a similarity-search index (JSON output)"
    )
    search.add_argument("index", help="snapshot written by 'repro index'")
    search.add_argument("--theta", type=float, default=0.8)
    search.add_argument("--func", choices=[f.value for f in SimilarityFunction],
                        default="jaccard")
    search.add_argument("-k", type=int, default=None,
                        help="return at most k hits per query")
    what = search.add_mutually_exclusive_group(required=True)
    what.add_argument("--query", help="probe tokens (whitespace-separated)")
    what.add_argument("--rid", type=int,
                      help="probe an indexed record by id (itself excluded)")
    what.add_argument("--query-file",
                      help="batch probe: one record per line, corpus format")
    search.add_argument("--executor", choices=[k.value for k in ExecutorKind],
                        default="serial",
                        help="fan batched probes out over this backend")
    search.add_argument("--trace", metavar="PATH",
                        help="record per-probe spans (cache lookup, prefix "
                             "filter, positional bound, verification); "
                             "writes JSONL to PATH plus a Chrome trace twin")
    search.add_argument("--probe-path", choices=["columnar", "legacy"],
                        default="columnar",
                        help="evaluator: columnar hot path (default) or the "
                             "legacy reference path; results are identical")

    cluster = sub.add_parser(
        "cluster", help="sharded, replicated serving cluster (build/search/"
                        "status/serve-sim)"
    )
    csub = cluster.add_subparsers(dest="cluster_command", required=True)

    cbuild = csub.add_parser(
        "build", help="shard a corpus into a cluster directory"
    )
    cbuild.add_argument("input", help="corpus file to index and shard")
    cbuild.add_argument("--output", required=True,
                        help="cluster directory (manifest + shard snapshots)")
    cbuild.add_argument("--shards", type=int, default=4)
    cbuild.add_argument("--replication", type=int, default=1)
    cbuild.add_argument("--vertical", type=int, default=30)
    cbuild.add_argument("--pivot-method",
                        choices=[m.value for m in PivotMethod],
                        default=PivotMethod.EVEN_TF.value)
    cbuild.add_argument("--pivot-seed", type=int, default=0)

    csearch = csub.add_parser(
        "search", help="scatter-gather probe of a cluster (JSON output)"
    )
    csearch.add_argument("cluster_dir",
                         help="directory written by 'repro cluster build'")
    csearch.add_argument("--theta", type=float, default=0.8)
    csearch.add_argument("--func",
                         choices=[f.value for f in SimilarityFunction],
                         default="jaccard")
    csearch.add_argument("-k", type=int, default=None,
                         help="return at most k hits per query")
    cwhat = csearch.add_mutually_exclusive_group(required=True)
    cwhat.add_argument("--query", help="probe tokens (whitespace-separated)")
    cwhat.add_argument("--rid", type=int,
                       help="probe an indexed record by id (itself excluded)")
    cwhat.add_argument("--query-file",
                       help="batch probe: one record per line, corpus format")
    csearch.add_argument("--fail-shard", type=int, metavar="SHARD",
                         help="inject a failure: kill replica 0 of this shard "
                              "before searching (exercises failover)")
    csearch.add_argument("--executor", choices=("serial", "thread"),
                         default="serial",
                         help="scatter legs run serially or on threads")
    csearch.add_argument("--trace", metavar="PATH",
                         help="record the cross-shard request tree (route, "
                              "per-shard probes, merge); writes JSONL to PATH "
                              "plus a Chrome trace twin")

    cstatus = csub.add_parser(
        "status", help="plan, health, heat and balance of a cluster (JSON)"
    )
    cstatus.add_argument("cluster_dir")

    cserve = csub.add_parser(
        "serve-sim", help="replay simulated traffic against a cluster"
    )
    cserve.add_argument("cluster_dir")
    cserve.add_argument("--probes", type=int, default=200)
    cserve.add_argument("--zipf", type=float, default=1.1,
                        help="query-popularity skew exponent (0 = uniform)")
    cserve.add_argument("--seed", type=int, default=0)
    cserve.add_argument("--theta", type=float, default=0.7)
    cserve.add_argument("--func",
                        choices=[f.value for f in SimilarityFunction],
                        default="jaccard")
    cserve.add_argument("--rebalance", action="store_true",
                        help="after the traffic, migrate hot fragments and "
                             "replay to show the before/after balance")
    cserve.add_argument("--skew-threshold", type=float, default=1.5)
    cserve.add_argument("--fail-shard", type=int, metavar="SHARD",
                        help="kill replica 0 of this shard before the replay")
    cserve.add_argument("--ingest-records", type=int, default=0,
                        metavar="N",
                        help="attach a streaming ingest tier and write N "
                             "fresh records mid-replay (probes keep "
                             "answering exactly while writes land)")
    cserve.add_argument("--ingest-batch", type=int, default=16,
                        metavar="M", help="ingest batch size (default 16)")

    ingest = sub.add_parser(
        "ingest",
        help="stream a corpus through the WAL + memtable + compaction "
             "write path and print ingest statistics",
    )
    ingest.add_argument("input", help="corpus file to stream in")
    ingest.add_argument("--base", type=int, default=0, metavar="N",
                        help="records bootstrapped offline as generation 0 "
                             "(the rest stream through the WAL; default 0)")
    ingest.add_argument("--batch-size", type=int, default=32)
    ingest.add_argument("--memtable-limit", type=int, default=64,
                        help="records the memtable absorbs before an "
                             "automatic flush (default 64)")
    ingest.add_argument("--fanout", type=int, default=4,
                        help="leveled-compaction fanout (default 4)")
    ingest.add_argument("--vertical", type=int, default=30)
    ingest.add_argument("--theta", type=float, default=0.6,
                        help="threshold for the --verify probe sweep")
    ingest.add_argument("--verify", action="store_true",
                        help="after the stream: major-compact and check the "
                             "result is bit-identical to a fresh offline "
                             "index over the same records (both probe paths)")
    ingest.add_argument("--snapshot", metavar="PATH",
                        help="save the final index as a regular snapshot "
                             "loadable by 'repro search'")
    ingest.add_argument("--executor", choices=[k.value for k in ExecutorKind],
                        default="serial",
                        help="executor compaction merges run on")
    ingest.add_argument("--trace", metavar="PATH",
                        help="record ingest spans (wal-append, "
                             "memtable-apply, flush, compaction) as JSONL "
                             "plus a Chrome trace twin")

    gateway = sub.add_parser(
        "gateway",
        help="async multi-tenant gateway over a cluster directory",
    )
    gsub = gateway.add_subparsers(dest="gateway_command", required=True)
    gserve = gsub.add_parser(
        "serve-sim",
        help="replay multi-tenant Zipf traffic through the gateway "
             "(coalescing, micro-batching, quotas, hedging)",
    )
    gserve.add_argument("cluster_dir")
    gserve.add_argument("--probes", type=int, default=400)
    gserve.add_argument("--zipf", type=float, default=1.2,
                        help="query-popularity skew exponent (0 = uniform)")
    gserve.add_argument("--seed", type=int, default=0)
    gserve.add_argument("--theta", type=float, default=0.7)
    gserve.add_argument("--func",
                        choices=[f.value for f in SimilarityFunction],
                        default="jaccard")
    gserve.add_argument("--tenants", type=int, default=3, metavar="N",
                        help="simulated tenants t0..t(N-1); t0 has weight 3, "
                             "the rest weight 1 (default 3)")
    gserve.add_argument("--concurrency", type=int, default=32,
                        help="concurrent requests per scheduling wave "
                             "(default 32)")
    gserve.add_argument("--max-outstanding", type=int, default=16,
                        help="per-tenant outstanding-request quota; waves "
                             "larger than the quota shed typed (default 16)")
    gserve.add_argument("--max-batch", type=int, default=32,
                        help="largest micro-batch one dispatch round hands "
                             "the router (default 32)")
    gserve.add_argument("--cache-size", type=int, default=256,
                        help="gateway result-cache capacity (default 256)")
    gserve.add_argument("--storm", type=int, default=0, metavar="N",
                        help="prepend a hot-key storm: N identical probes "
                             "of the hottest record in one wave")
    gserve.add_argument("--hedge", action="store_true",
                        help="enable deadline-aware hedged scatter on the "
                             "router's batched probe path")
    gserve.add_argument("--flap-shard", type=int, metavar="SHARD",
                        help="replica 0 of this shard fails its next 3 "
                             "probe batches, then recovers (flapping node)")
    gserve.add_argument("--slow-replica", type=float, metavar="SECONDS",
                        help="stall one replica of a hot-path shard this "
                             "many seconds "
                             "per probe batch (with --hedge: drives backup "
                             "probes and hedge wins)")
    gserve.add_argument("--verify", action="store_true",
                        help="check every gateway answer bit-identical to a "
                             "direct router.search on a clean replica of "
                             "the cluster; exit 1 on any diff")
    gserve.add_argument("--trace", metavar="PATH",
                        help="record gateway-dispatch and scatter spans as "
                             "JSONL plus a Chrome trace twin")

    serve = sub.add_parser(
        "serve", help="TCP server: the gateway over a cluster directory "
                      "behind real sockets (SIGTERM drains gracefully)"
    )
    serve.add_argument("cluster_dir",
                       help="directory written by 'repro cluster build'")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7777,
                       help="TCP port; 0 binds an ephemeral port and prints "
                            "the actual one (default 7777)")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="largest micro-batch one gateway dispatch round "
                            "hands the router (default 32)")
    serve.add_argument("--cache-size", type=int, default=256,
                       help="gateway result-cache capacity (default 256)")
    serve.add_argument("--max-inflight", type=int, default=32,
                       help="per-connection outstanding-request bound; past "
                            "it the reader stops reading and backpressure "
                            "reaches the peer as TCP flow control")
    serve.add_argument("--frame-timeout", type=float, default=30.0,
                       help="seconds a half-sent frame may stall before the "
                            "connection is dropped (default 30)")
    serve.add_argument("--drain-grace", type=float, default=5.0,
                       help="seconds a drain waits for peers to hang up "
                            "before closing their sockets (default 5)")
    serve.add_argument("--hedge", action="store_true",
                       help="enable hedged backup probes on the router")
    serve.add_argument("--adaptive-hedge", action="store_true",
                       help="hedge with a per-tenant-p95-derived delay "
                            "(implies --hedge)")
    serve.add_argument("--ingest", action="store_true",
                       help="attach a streaming ingest tier so ingest-append "
                            "frames land (otherwise appends fail typed)")
    serve.add_argument("--heal", action="store_true",
                       help="attach the self-healing control plane: failure "
                            "detection, anti-entropy scrubbing and automatic "
                            "replica rebuild; repair events are logged as "
                            "one-line typed messages")
    serve.add_argument("--heal-interval", type=float, default=1.0,
                       help="seconds between control-plane ticks when --heal "
                            "is on (default 1.0)")
    serve.add_argument("--trace", metavar="PATH",
                       help="on exit, write the server's phase=\"net\" spans "
                            "(one per connection and request) as JSONL plus "
                            "a Chrome trace twin")

    query = sub.add_parser(
        "query", help="query a running 'repro serve' over TCP"
    )
    query.add_argument("--connect", required=True, metavar="HOST:PORT",
                       help="address of the running server")
    qwhat = query.add_mutually_exclusive_group(required=True)
    qwhat.add_argument("--query", help="probe tokens (whitespace-separated)")
    qwhat.add_argument("--query-file",
                       help="batch probe: one record per line, corpus "
                            "format; sent as a single search_batch frame")
    qwhat.add_argument("--status", action="store_true",
                       help="print the server's status JSON instead")
    qwhat.add_argument("--drain", action="store_true",
                       help="ask the server to drain gracefully and exit")
    query.add_argument("--theta", type=float, default=0.8)
    query.add_argument("--func",
                       choices=[f.value for f in SimilarityFunction],
                       default="jaccard")
    query.add_argument("-k", type=int, default=None,
                       help="return at most k hits per query")
    query.add_argument("--tenant", default="default",
                       help="tenant name sent in the handshake (quotas and "
                            "per-tenant latency follow it)")
    query.add_argument("--timeout", type=float, default=5.0,
                       help="per-call socket timeout in seconds (default 5)")

    chaos = sub.add_parser(
        "chaos", help="seeded chaos drill: inject faults, verify recovery"
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="chaos seed; the same seed injects exactly the "
                            "same faults on every run")
    chaos.add_argument("--scenario", choices=("join", "search", "cluster",
                                              "ingest", "gateway", "net",
                                              "heal", "all"),
                       default="all",
                       help="which layer to drill (default: all)")
    chaos.add_argument("--theta", type=float, default=0.7)
    chaos.add_argument("--func",
                       choices=[f.value for f in SimilarityFunction],
                       default="jaccard")
    chaos.add_argument("--executor", choices=[k.value for k in ExecutorKind],
                       default="serial",
                       help="executor the join scenario runs on")
    chaos.add_argument("--trace", metavar="PATH",
                       help="record the drill's spans — every injected "
                            "fault (phase=\"fault\") next to every recovery "
                            "action (phase=\"recovery\") — as JSONL plus a "
                            "Chrome trace twin")

    trace = sub.add_parser(
        "trace", help="summarize/convert a JSONL trace written with --trace"
    )
    trace.add_argument("input", help="JSONL trace file")
    trace.add_argument("--chrome", metavar="PATH",
                       help="also write a Chrome trace_event JSON for "
                            "chrome://tracing / Perfetto")

    estimate = sub.add_parser(
        "estimate", help="sampling-based result-count estimate"
    )
    estimate.add_argument("input")
    estimate.add_argument("--theta", type=float, default=0.8)
    estimate.add_argument("--func", choices=[f.value for f in SimilarityFunction],
                          default="jaccard")
    estimate.add_argument("--sample-size", type=int, default=None)
    estimate.add_argument("--trials", type=int, default=3)
    estimate.add_argument("--seed", type=int, default=0)

    return parser


def _make_algorithm(args, cluster):
    theta, func = args.theta, SimilarityFunction(args.func)
    if args.algorithm == "fsjoin":
        return FSJoin(
            FSJoinConfig(theta=theta, func=func, n_vertical=args.vertical,
                         n_horizontal=args.horizontal),
            cluster,
        )
    if args.algorithm == "fsjoin-v":
        return FSJoin(
            FSJoinConfig(theta=theta, func=func, n_vertical=args.vertical),
            cluster,
        )
    if args.algorithm == "ridpairs":
        return RIDPairsPPJoin(theta, func, cluster)
    if args.algorithm == "vsmart":
        return VSmartJoin(theta, func, cluster)
    if args.algorithm == "massjoin":
        return MassJoin(theta, func, cluster)
    if args.algorithm == "massjoin-light":
        return MassJoin(theta, func, cluster, variant="merge+light")
    from repro.approx.distributed import DistributedLSHJoin

    return DistributedLSHJoin(theta, func, cluster)


def _cmd_generate(args) -> int:
    records = make_corpus(args.corpus, args.records, seed=args.seed)
    save_records(records, args.output)
    print(f"wrote {len(records)} records to {args.output}", file=sys.stderr)
    return 0


def _cmd_stats(args) -> int:
    stats = dataset_stats(load_records(args.input))
    for key, value in stats.as_row().items():
        print(f"{key}\t{value}")
    return 0


def _export_trace(tracer: Tracer, path: str) -> None:
    """Write a tracer's spans as JSONL plus the Chrome-trace JSON twin."""
    spans = tracer.spans()
    write_jsonl(spans, path)
    chrome = chrome_path_for(path)
    write_chrome_trace(spans, chrome)
    print(
        f"trace: {len(spans)} spans -> {path} (+ {chrome} for "
        "chrome://tracing / Perfetto)",
        file=sys.stderr,
    )


def _print_phase_breakdown(tracer: Tracer) -> None:
    from repro.analysis.report import format_phase_breakdown

    print(format_phase_breakdown(tracer.spans()), file=sys.stderr)


def _cmd_join(args) -> int:
    tracer = Tracer() if args.trace else NOOP_TRACER
    cluster = SimulatedCluster(
        ClusterSpec(workers=args.workers, executor=args.executor),
        tracer=tracer,
    )
    left = load_records(args.input)
    started = time.perf_counter()
    if args.right:
        if args.algorithm not in ("fsjoin", "fsjoin-v"):
            print("R-S joins are supported by the fsjoin algorithms only",
                  file=sys.stderr)
            return 2
        config = FSJoinConfig(
            theta=args.theta, func=SimilarityFunction(args.func),
            n_vertical=args.vertical,
            n_horizontal=args.horizontal if args.algorithm == "fsjoin" else 1,
        )
        result = FSJoinRS(config, cluster).run(left, load_records(args.right))
    else:
        result = _make_algorithm(args, cluster).run(left)
    wall = time.perf_counter() - started

    for (rid_a, rid_b), score in sorted(result.result_pairs.items()):
        print(f"{rid_a}\t{rid_b}\t{score:.6f}")
    if not args.quiet:
        times = result.simulated_time(cluster.spec)
        print(
            f"{result.algorithm}: {len(result.pairs)} pairs, "
            f"wall {wall:.2f}s, shuffle {result.total_shuffle_bytes()/1e6:.2f} MB, "
            f"simulated {times.total_s:.1f}s on {args.workers} workers",
            file=sys.stderr,
        )
    if args.trace:
        _export_trace(tracer, args.trace)
        if not args.quiet:
            _print_phase_breakdown(tracer)
    return 0


def _cmd_topk(args) -> int:
    cluster = SimulatedCluster(
        ClusterSpec(workers=args.workers, executor=args.executor)
    )
    records = load_records(args.input)
    pairs = topk_similar_pairs(
        records, args.k, func=SimilarityFunction(args.func), cluster=cluster
    )
    for (rid_a, rid_b), score in pairs:
        print(f"{rid_a}\t{rid_b}\t{score:.6f}")
    return 0


def _cmd_estimate(args) -> int:
    from repro.similarity.selectivity import estimate_result_count

    records = load_records(args.input)
    estimate = estimate_result_count(
        records,
        args.theta,
        func=SimilarityFunction(args.func),
        sample_size=args.sample_size,
        trials=args.trials,
        seed=args.seed,
    )
    print(f"estimated_pairs\t{estimate.estimated_pairs:.1f}")
    print(f"sample_size\t{estimate.sample_size}")
    print(f"trials\t{estimate.trials}")
    return 0


def _cmd_index(args) -> int:
    from repro.service import SegmentIndex, save_index

    records = load_records(args.input)
    started = time.perf_counter()
    index = SegmentIndex.build(
        records,
        n_vertical=args.vertical,
        pivot_method=args.pivot_method,
        pivot_seed=args.pivot_seed,
    )
    size = save_index(index, args.output)
    wall = time.perf_counter() - started
    stats = index.posting_stats()
    columnar_mb = (stats["posting_bytes"] + stats["record_bytes"]) / 1e6
    print(
        f"indexed {stats['records']} records into {stats['fragments']} "
        f"fragments ({stats['postings']} postings, vocab {stats['vocab']}, "
        f"{columnar_mb:.2f} MB columnar) "
        f"in {wall:.2f}s -> {args.output} ({size/1e6:.2f} MB)",
        file=sys.stderr,
    )
    return 0


def _hit_rows(hits):
    return [{"rid": hit.rid, "score": round(hit.score, 6)} for hit in hits]


def _read_query_file(path):
    """Load a query file, turning I/O and encoding failures into clear
    :class:`~repro.errors.DataError` messages (exit 1, never a traceback)."""
    from repro.errors import DataError

    try:
        return load_records(path)
    except OSError as exc:
        reason = exc.strerror or str(exc)
        raise DataError(f"cannot read query file {path}: {reason}") from None
    except UnicodeDecodeError as exc:
        raise DataError(
            f"query file {path} is not readable UTF-8 text: {exc}"
        ) from None


def _rid_tokens(backend, rid):
    """An indexed record's tokens, with a CLI-clear unknown-rid message."""
    from repro.errors import DataError

    try:
        return list(backend.tokens_of(rid))
    except DataError:
        raise DataError(
            f"unknown --rid {rid}: no such record in the index "
            "(probe by --query instead, or re-index)"
        ) from None


def _cmd_search(args) -> int:
    import json

    from repro.service import SimilarityService

    tracer = Tracer() if args.trace else NOOP_TRACER
    service = SimilarityService.load(args.index, tracer=tracer,
                                     probe_path=args.probe_path)
    func = SimilarityFunction(args.func)

    if args.query_file:
        queries = [record.tokens for record in _read_query_file(args.query_file)]
        results = service.search_batch(
            queries, args.theta, k=args.k, func=func, executor=args.executor
        )
        document = {
            "theta": args.theta,
            "func": func.value,
            "results": [
                {"query": list(tokens), "hits": _hit_rows(hits)}
                for tokens, hits in zip(queries, results)
            ],
        }
    else:
        if args.rid is not None:
            tokens = _rid_tokens(service.index, args.rid)
            hits = service.search_rid(args.rid, args.theta, k=args.k, func=func)
        else:
            tokens = args.query.split()
            hits = service.search(tokens, args.theta, k=args.k, func=func)
        document = {
            "query": tokens,
            "theta": args.theta,
            "func": func.value,
            "hits": _hit_rows(hits),
        }
    if args.trace:
        document["latency"] = service.latency_info()
        _export_trace(tracer, args.trace)
        _print_phase_breakdown(tracer)
    print(json.dumps(document))
    return 0


def _fail_replica(router, shard) -> None:
    """Apply the ``--fail-shard`` chaos switch (replica 0 of one shard)."""
    from repro.errors import ClusterError

    if not 0 <= shard < router.n_shards:
        raise ClusterError(
            f"--fail-shard {shard} out of range (cluster has "
            f"{router.n_shards} shards)"
        )
    router.replica(shard, 0).fail()
    print(f"injected failure: shard {shard} replica 0 is down", file=sys.stderr)


def _cmd_cluster_build(args) -> int:
    from repro.cluster import build_cluster, save_cluster

    records = load_records(args.input)
    started = time.perf_counter()
    router = build_cluster(
        records,
        n_shards=args.shards,
        replication=args.replication,
        n_vertical=args.vertical,
        pivot_method=args.pivot_method,
        pivot_seed=args.pivot_seed,
    )
    size = save_cluster(router, args.output)
    wall = time.perf_counter() - started
    report = router.plan.balance_report()
    print(
        f"sharded {len(records)} records into {router.n_shards} shards × "
        f"{router.replication} replicas ({router.plan.n_fragments} fragments, "
        f"planned-load cv {report.cv:.3f}) in {wall:.2f}s -> {args.output} "
        f"({size / 1e6:.2f} MB)",
        file=sys.stderr,
    )
    return 0


def _cmd_cluster_search(args) -> int:
    import json

    from repro.cluster import load_cluster

    tracer = Tracer() if args.trace else NOOP_TRACER
    router = load_cluster(
        args.cluster_dir,
        tracer=tracer,
        executor=None if args.executor == "serial" else args.executor,
    )
    func = SimilarityFunction(args.func)
    if args.fail_shard is not None:
        _fail_replica(router, args.fail_shard)

    if args.query_file:
        queries = [record.tokens for record in _read_query_file(args.query_file)]
        results = router.search_batch(queries, args.theta, k=args.k, func=func)
        document = {
            "theta": args.theta,
            "func": func.value,
            "results": [
                {"query": list(tokens), "hits": _hit_rows(hits)}
                for tokens, hits in zip(queries, results)
            ],
        }
    else:
        if args.rid is not None:
            tokens = _rid_tokens(router, args.rid)
            hits = router.search_rid(args.rid, args.theta, k=args.k, func=func)
        else:
            tokens = args.query.split()
            hits = router.search(tokens, args.theta, k=args.k, func=func)
        document = {
            "query": tokens,
            "theta": args.theta,
            "func": func.value,
            "hits": _hit_rows(hits),
        }
    if args.trace:
        document["latency"] = router.latency.snapshot()
        _export_trace(tracer, args.trace)
        _print_phase_breakdown(tracer)
    print(json.dumps(document))
    return 0


def _cmd_cluster_status(args) -> int:
    import json

    from repro.cluster import load_cluster

    router = load_cluster(args.cluster_dir)
    document = router.status()
    document["records"] = len(router.rids())
    print(json.dumps(document, indent=2))
    return 0


def _cmd_cluster_serve_sim(args) -> int:
    import json
    import random

    from repro.cluster import load_cluster

    router = load_cluster(args.cluster_dir)
    if args.fail_shard is not None:
        _fail_replica(router, args.fail_shard)
    func = SimilarityFunction(args.func)
    rids = router.rids()
    rng = random.Random(args.seed)
    weights = [1.0 / (i + 1) ** args.zipf for i in range(len(rids))]
    probe_rids = rng.choices(rids, weights=weights, k=args.probes)
    tokens = {rid: router.tokens_of(rid) for rid in set(probe_rids)}

    # --ingest-records: a streaming write tier joins the cluster and the
    # replay interleaves its batches with the probes — writes land while
    # reads keep flowing, which is the whole point of the ingest path.
    ingest_batches = []
    if args.ingest_records:
        from repro.data import Record, make_corpus
        from repro.ingest import StreamingIndex
        from repro.mapreduce.hdfs import InMemoryDFS

        floor = max(rids) + 1 if rids else 0
        fresh = [
            Record(floor + record.rid, record.tokens)
            for record in make_corpus(
                "wiki", args.ingest_records, seed=args.seed + 1
            )
        ]
        streaming = StreamingIndex.attach(
            InMemoryDFS(), "ingest", router.order, router.partitioner
        )
        router.attach_ingest(streaming)
        ingest_batches = [
            fresh[i:i + args.ingest_batch]
            for i in range(0, len(fresh), args.ingest_batch)
        ]

    def replay() -> float:
        batches = list(ingest_batches)
        every = max(1, len(probe_rids) // (len(batches) or 1))
        started = time.perf_counter()
        for i, rid in enumerate(probe_rids):
            if batches and i % every == 0:
                router.apply_batch(batches.pop(0))
            router.search(tokens[rid], args.theta, func=func)
        while batches:
            router.apply_batch(batches.pop(0))
        return time.perf_counter() - started

    wall = replay()
    ingest_batches = []  # the writes are in; a --rebalance replay is read-only
    before = router.heat_report()
    document = {
        "probes": args.probes,
        "distinct_queries": len(tokens),
        "zipf": args.zipf,
        "wall_s": round(wall, 4),
        "throughput_qps": round(args.probes / wall, 1) if wall else None,
        "latency": router.latency.snapshot(),
        "shard_heat": router.shard_heat(),
        "heat_cv": round(before.cv, 4),
        "heat_max_over_mean": round(before.max_over_mean, 4),
        "route": router.metrics.group("cluster.route"),
    }
    if args.ingest_records:
        status = router.status()["ingest"]
        document["ingest"] = {
            "records": status["records"],
            "flushes": status["flushes"],
            "compactions": status["compactions"],
            "manifest_version": status["manifest_version"],
        }
    if args.rebalance:
        moves = router.rebalance(skew_threshold=args.skew_threshold)
        router.reset_heat()
        replay()
        after = router.heat_report()
        document["rebalance"] = {
            "migrations": [
                {"fragment": m.fragment, "src": m.src, "dst": m.dst,
                 "heat": m.heat}
                for m in moves
            ],
            "shard_heat_after": router.shard_heat(),
            "heat_cv_after": round(after.cv, 4),
            "heat_max_over_mean_after": round(after.max_over_mean, 4),
        }
    print(json.dumps(document))
    return 0


def _cmd_ingest(args) -> int:
    import json
    import pickle

    from repro.data import RecordCollection
    from repro.errors import ConfigError
    from repro.ingest import IngestConfig, StreamingIndex
    from repro.mapreduce.hdfs import InMemoryDFS
    from repro.service import save_index

    records = load_records(args.input)
    if not 0 <= args.base <= len(records):
        raise ConfigError(
            f"--base {args.base} out of range (corpus has "
            f"{len(records)} records)"
        )
    base = RecordCollection(records[:args.base])
    stream = records[args.base:]

    tracer = Tracer() if args.trace else NOOP_TRACER
    config = IngestConfig(
        memtable_limit=args.memtable_limit,
        fanout=args.fanout,
        executor=args.executor,
    )
    streaming = StreamingIndex.create(
        InMemoryDFS(),
        records=base if len(base) else None,
        n_vertical=args.vertical,
        config=config,
        tracer=tracer,
    )
    started = time.perf_counter()
    for i in range(0, len(stream), args.batch_size):
        streaming.apply_batch(stream[i:i + args.batch_size])
    wall = time.perf_counter() - started

    status = streaming.status()
    document = {
        "records": status["records"],
        "base": len(base),
        "streamed": len(stream),
        "batches": -(-len(stream) // args.batch_size) if stream else 0,
        "wall_s": round(wall, 4),
        "write_throughput_rps": round(len(stream) / wall, 1) if wall else None,
        "flushes": status["flushes"],
        "compactions": status["compactions"],
        "generations": status["generations"],
        "memtable": status["memtable"],
        "pivot_epoch": status["pivot_epoch"],
        "manifest_version": status["manifest_version"],
        "wal": status["wal"],
    }

    if args.verify:
        from repro.service.index import PROBE_PATHS

        streaming.compact(major=True)
        offline = streaming.to_segment_index()
        structural = pickle.dumps(
            streaming.generations[0].index
        ) == pickle.dumps(offline)
        probe_mismatches = 0
        sample = records[::max(1, len(records) // 50)]
        for path in PROBE_PATHS:
            streaming.probe_path = path
            offline.probe_path = path
            for record in sample:
                if streaming.probe(record.tokens, args.theta) != offline.probe(
                    record.tokens, args.theta
                ):
                    probe_mismatches += 1
        document["verify"] = {
            "structural_identical": structural,
            "probes": len(sample) * len(PROBE_PATHS),
            "probe_mismatches": probe_mismatches,
            "ok": structural and probe_mismatches == 0,
        }
        if not document["verify"]["ok"]:
            print(json.dumps(document))
            print("error: ingest verification failed — streamed index "
                  "diverges from the offline build", file=sys.stderr)
            return 1

    if args.snapshot:
        size = save_index(streaming.to_segment_index(), args.snapshot)
        document["snapshot"] = {"path": args.snapshot,
                                "bytes": size}
    if args.trace:
        _export_trace(tracer, args.trace)
        _print_phase_breakdown(tracer)
    print(json.dumps(document))
    return 0


_CLUSTER_COMMANDS = {
    "build": _cmd_cluster_build,
    "search": _cmd_cluster_search,
    "status": _cmd_cluster_status,
    "serve-sim": _cmd_cluster_serve_sim,
}


def _cmd_cluster(args) -> int:
    return _CLUSTER_COMMANDS[args.cluster_command](args)


def _cmd_gateway_serve_sim(args) -> int:
    import json
    import random

    from repro.cluster import HedgeConfig, load_cluster
    from repro.errors import ShardDownError
    from repro.gateway import (
        GatewayConfig,
        GatewayRequest,
        SimilarityGateway,
        TenantConfig,
    )

    tracer = Tracer() if args.trace else NOOP_TRACER
    hedge = None
    if args.hedge:
        # min_observations pins the timer at min_delay: with a
        # deliberately stalled replica in the mix the rolling leg p95
        # would grow to the stall itself and the hedge would never fire.
        hedge = HedgeConfig(min_delay=0.002, max_delay=0.1,
                            min_observations=10_000)
    router = load_cluster(args.cluster_dir, tracer=tracer, hedge=hedge)

    # Optional chaos switches: a flapping replica (fails its next few
    # probe batches, then serves again) and a slow replica (stalls in
    # real time, which is what the hedge timer races).
    if args.flap_shard is not None:
        flapping = router.replica(args.flap_shard, 0)
        flap_state = {"left": 3}

        def flap_hook(target) -> None:
            if flap_state["left"] > 0:
                flap_state["left"] -= 1
                raise ShardDownError(f"{target.name}: injected flap")

        flapping.fault_hook = flap_hook
        print(f"injected flap: shard {args.flap_shard} replica 0 fails "
              f"its next 3 probe batches", file=sys.stderr)
    tenant_names = [f"t{i}" for i in range(max(1, args.tenants))]
    tenants = {
        name: TenantConfig(weight=3 if i == 0 else 1,
                           max_outstanding=args.max_outstanding)
        for i, name in enumerate(tenant_names)
    }
    gateway = SimilarityGateway(
        router,
        GatewayConfig(max_batch=args.max_batch, cache_size=args.cache_size,
                      tenants=tenants),
    )

    func = SimilarityFunction(args.func)
    rids = router.rids()
    rng = random.Random(args.seed)
    weights = [1.0 / (i + 1) ** args.zipf for i in range(len(rids))]
    probe_rids = rng.choices(rids, weights=weights, k=args.probes)
    tokens = {rid: router.tokens_of(rid) for rid in set(probe_rids)}

    if args.slow_replica is not None:
        # Stall a replica of a shard the hottest probe provably routes
        # to — a fixed shard id could sit outside the Zipf mix's prefix
        # fragments and never be contacted, making the stall (and the
        # hedge race against it) a no-op.
        hot_rid = max(set(probe_rids), key=probe_rids.count)
        hot_targets = router.target_fragments(
            router.encode_query(list(tokens[hot_rid])), args.theta, func
        )
        candidates = sorted({router.plan.shard_of(f) for f in hot_targets})
        stall_shard = next(
            (s for s in candidates if s != args.flap_shard),
            candidates[0] if candidates else 0,
        )
        slow = router.replica(stall_shard, 0)

        def slow_hook(target) -> None:
            time.sleep(args.slow_replica)

        slow.fault_hook = slow_hook
        print(f"injected stall: shard {stall_shard} replica 0 sleeps "
              f"{args.slow_replica}s per probe batch", file=sys.stderr)

    requests = [
        GatewayRequest(tuple(tokens[rid]), args.theta, func=func,
                       tenant=rng.choice(tenant_names))
        for rid in probe_rids
    ]
    waves = [
        requests[i:i + args.concurrency]
        for i in range(0, len(requests), args.concurrency)
    ]
    if args.storm:
        hot = tuple(tokens[probe_rids[0]])
        waves.insert(0, [
            GatewayRequest(hot, args.theta, func=func, tenant=tenant_names[0])
            for _ in range(args.storm)
        ])

    started = time.perf_counter()
    responses = []
    for wave in waves:
        responses.extend(gateway.serve(wave))
    wall = time.perf_counter() - started

    total = len(responses)
    shed: dict = {}
    for response in responses:
        if response.error:
            shed[response.error] = shed.get(response.error, 0) + 1
    stats = gateway.metrics.group("gateway")
    route = router.metrics.group("cluster.route")
    document = {
        "probes": total,
        "waves": len(waves),
        "concurrency": args.concurrency,
        "distinct_queries": len(tokens),
        "zipf": args.zipf,
        "tenants": {name: {"weight": conf.weight,
                           "max_outstanding": conf.max_outstanding}
                    for name, conf in tenants.items()},
        "ok": total - sum(shed.values()),
        "shed": shed,
        "coalesce_rate": round(
            stats.get("coalesced", 0) / max(1, stats.get("requests", 1)), 4
        ),
        "gateway": stats,
        "quota_shed_by_tenant": gateway.metrics.group("gateway.quota"),
        "latency": gateway.latency_info(),
        "tenant_latency": gateway.tenant_latency_info(),
        "route": route,
        "wall_s": round(wall, 4),
        "throughput_qps": round(total / wall, 1) if wall else None,
    }

    if args.verify:
        # A clean twin of the same cluster directory answers directly —
        # no gateway, no chaos switches — and every successful gateway
        # answer must match it bit for bit.
        direct = load_cluster(args.cluster_dir)
        flat = [req for wave in waves for req in wave]
        mismatches = 0
        checked = 0
        for request, response in zip(flat, responses):
            if not response.ok:
                continue
            checked += 1
            expected = direct.search(list(request.tokens), request.theta,
                                     func=request.func)
            if list(response.hits) != expected:
                mismatches += 1
        document["verify"] = {
            "checked": checked,
            "mismatches": mismatches,
            "ok": mismatches == 0,
        }

    if args.trace:
        _export_trace(tracer, args.trace)
        _print_phase_breakdown(tracer)
    print(json.dumps(document))
    if args.verify and document["verify"]["mismatches"]:
        print("error: gateway answers diverged from the direct router",
              file=sys.stderr)
        return 1
    return 0


_GATEWAY_COMMANDS = {
    "serve-sim": _cmd_gateway_serve_sim,
}


def _cmd_gateway(args) -> int:
    return _GATEWAY_COMMANDS[args.gateway_command](args)


def _parse_connect(value: str):
    """``HOST:PORT`` -> ``(host, port)`` with CLI-clear failures."""
    from repro.errors import ConfigError

    host, sep, port_text = value.rpartition(":")
    if not sep or not host:
        raise ConfigError(
            f"--connect must be HOST:PORT, got {value!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigError(
            f"--connect port must be an integer, got {port_text!r}"
        ) from None
    if not 0 < port <= 65535:
        raise ConfigError(f"--connect port out of range: {port}")
    return host, port


def _cmd_serve(args) -> int:
    import asyncio
    import json
    import os
    import signal

    from repro.cluster import HedgeConfig, load_cluster
    from repro.gateway import GatewayConfig, SimilarityGateway
    from repro.net import GatewayServer, ServerConfig

    tracer = Tracer() if args.trace else NOOP_TRACER
    hedge = HedgeConfig() if (args.hedge or args.adaptive_hedge) else None
    router = load_cluster(args.cluster_dir, tracer=tracer, hedge=hedge)
    if args.ingest:
        from repro.ingest import StreamingIndex
        from repro.mapreduce.hdfs import InMemoryDFS

        router.attach_ingest(StreamingIndex.attach(
            InMemoryDFS(), "serve-ingest", router.order, router.partitioner
        ))
    plane = None
    if args.heal:
        from repro.cluster import ControlPlane, RepairManager

        plane = ControlPlane(
            router,
            repair=RepairManager(router, snapshot_dir=args.cluster_dir),
            tracer=tracer,
        )
    gateway = SimilarityGateway(
        router,
        GatewayConfig(
            max_batch=args.max_batch,
            cache_size=args.cache_size,
            adaptive_hedge=args.adaptive_hedge,
        ),
        tracer=tracer,
    )
    server = GatewayServer(
        gateway,
        ServerConfig(
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            frame_timeout=args.frame_timeout,
            drain_grace=args.drain_grace,
        ),
        tracer=tracer,
    )

    async def heal_loop() -> None:
        # Tick the control plane between request rounds, logging every
        # decision (suspect/dead/quarantine/rebuild/readmit) as a
        # one-line typed message — the operator-visible repair journal.
        logged = 0
        while True:
            await asyncio.sleep(args.heal_interval)
            plane.tick()
            for event in plane.events[logged:]:
                print(event.line(), file=sys.stderr, flush=True)
            logged = len(plane.events)

    async def run() -> None:
        host, port = await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.request_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                # No signal support here (non-main thread, some
                # platforms): a drain frame still stops the server.
                break
        print(
            f"listening on {host}:{port} "
            f"(cluster {args.cluster_dir}, pid {os.getpid()})",
            file=sys.stderr, flush=True,
        )
        healer = (
            asyncio.ensure_future(heal_loop()) if plane is not None else None
        )
        try:
            await server.wait_drained()
        finally:
            if healer is not None:
                healer.cancel()

    asyncio.run(run())
    if args.trace:
        _export_trace(tracer, args.trace)
    print(json.dumps(server.status()))
    print("drained cleanly", file=sys.stderr)
    return 0


def _cmd_query(args) -> int:
    import json

    from repro.net import GatewayClient

    host, port = _parse_connect(args.connect)
    func = SimilarityFunction(args.func)
    with GatewayClient(host, port, tenant=args.tenant,
                       timeout=args.timeout) as client:
        if args.status:
            print(json.dumps(client.status()))
            return 0
        if args.drain:
            client.drain()
            print("server draining", file=sys.stderr)
            return 0
        if args.query_file:
            queries = [
                list(record.tokens)
                for record in _read_query_file(args.query_file)
            ]
            results = client.search_batch(
                queries, args.theta, k=args.k, func=func
            )
            document = {
                "theta": args.theta,
                "func": func.value,
                "results": [
                    {"query": tokens, "hits": _hit_rows(hits)}
                    for tokens, hits in zip(queries, results)
                ],
            }
        else:
            tokens = args.query.split()
            hits = client.search(tokens, args.theta, k=args.k, func=func)
            document = {
                "query": tokens,
                "theta": args.theta,
                "func": func.value,
                "hits": _hit_rows(hits),
            }
    print(json.dumps(document))
    return 0


def _cmd_chaos(args) -> int:
    import json

    from repro.chaos import run_recovery_report

    tracer = Tracer() if args.trace else NOOP_TRACER
    report = run_recovery_report(
        args.seed,
        scenario=args.scenario,
        theta=args.theta,
        func=SimilarityFunction(args.func),
        executor=args.executor,
        tracer=tracer,
    )
    print(json.dumps(report.as_dict(), indent=2))
    if args.trace:
        _export_trace(tracer, args.trace)
    if not report.ok:
        failed = [s.scenario for s in report.scenarios if not s.ok]
        print(
            f"error: chaos drill failed (seed {args.seed}): "
            f"{', '.join(failed)} did not recover cleanly",
            file=sys.stderr,
        )
        return 1
    print(
        f"chaos drill ok: seed {args.seed}, "
        f"{len(report.scenarios)} scenario(s), "
        f"{report.total_faults()} faults injected, all recovered",
        file=sys.stderr,
    )
    return 0


def _cmd_trace(args) -> int:
    from repro.analysis.report import format_phase_breakdown

    try:
        spans = read_jsonl(args.input)
    except (ValueError, KeyError) as exc:
        print(f"error: invalid trace file {args.input}: {exc}", file=sys.stderr)
        return 1
    if args.chrome:
        events = write_chrome_trace(spans, args.chrome)
        print(f"wrote {events} trace events to {args.chrome}", file=sys.stderr)
    print(format_phase_breakdown(spans, title=f"phase breakdown: {args.input}"))
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "join": _cmd_join,
    "topk": _cmd_topk,
    "estimate": _cmd_estimate,
    "index": _cmd_index,
    "search": _cmd_search,
    "ingest": _cmd_ingest,
    "cluster": _cmd_cluster,
    "gateway": _cmd_gateway,
    "serve": _cmd_serve,
    "query": _cmd_query,
    "chaos": _cmd_chaos,
    "trace": _cmd_trace,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
