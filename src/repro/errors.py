"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the package raises with a single except clause while still
being able to discriminate configuration mistakes from runtime failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A job or algorithm was configured with invalid parameters."""


class DataError(ReproError):
    """Input data violates the contract expected by an algorithm."""


class ExecutionError(ReproError):
    """A MapReduce job failed while executing.

    When a task exhausts its retry budget, ``attempts`` carries the
    per-attempt failure history as ``(attempt, phase, error_repr)``
    tuples — every injected or raised failure that led to the abort, in
    order — so a post-mortem never has to re-run the job to learn *how*
    it died.  The history survives pickling (task failures may cross a
    process boundary on the way back to the driver).
    """

    def __init__(self, message: str = "", attempts: tuple = ()) -> None:
        super().__init__(message)
        self.attempts = tuple(attempts)

    def __reduce__(self):
        message = self.args[0] if self.args else ""
        return (type(self), (message, self.attempts))


class DFSError(ReproError):
    """A distributed-file-system operation failed (missing path, overwrite)."""


class SnapshotError(ReproError):
    """An index snapshot is missing, unreadable, or version-mismatched."""


class ClusterError(ReproError):
    """A serving-cluster operation failed (routing, placement, migration)."""


class ShardDownError(ClusterError):
    """A shard replica was probed while marked failed."""


class ClusterOverloadError(ClusterError):
    """Admission control shed the request (in-flight limit + queue timeout)."""


class DeadlineExceededError(ReproError):
    """A request ran past its caller-supplied deadline and was abandoned."""


class GatewayError(ReproError):
    """A multi-tenant gateway operation failed (dispatch, configuration)."""


class QuotaExceededError(GatewayError):
    """A tenant exceeded its outstanding-request quota and was shed."""


class TransportError(ReproError):
    """A network-transport operation failed (connect, timeout, send)."""


class ProtocolError(TransportError):
    """A wire frame violated the protocol (bad magic/version, oversized
    or malformed body) and was rejected before reaching the gateway."""


class DrainingError(TransportError):
    """The server is draining and no longer accepts new work."""


class CheckpointError(DFSError):
    """A pipeline checkpoint is missing, unreadable, or failed its digest."""


class IngestError(ReproError):
    """A streaming-ingest operation failed (manifest, segment, compaction)."""


class WALError(IngestError):
    """A write-ahead-log entry or segment is torn, corrupt, or out of order."""
