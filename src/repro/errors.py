"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the package raises with a single except clause while still
being able to discriminate configuration mistakes from runtime failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A job or algorithm was configured with invalid parameters."""


class DataError(ReproError):
    """Input data violates the contract expected by an algorithm."""


class ExecutionError(ReproError):
    """A MapReduce job failed while executing."""


class DFSError(ReproError):
    """A distributed-file-system operation failed (missing path, overwrite)."""


class SnapshotError(ReproError):
    """An index snapshot is missing, unreadable, or version-mismatched."""


class ClusterError(ReproError):
    """A serving-cluster operation failed (routing, placement, migration)."""


class ShardDownError(ClusterError):
    """A shard replica was probed while marked failed."""


class ClusterOverloadError(ClusterError):
    """Admission control shed the request (in-flight limit + queue timeout)."""
