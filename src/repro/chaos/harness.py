"""Chaos scenarios: inject scheduled faults, then prove the system recovered.

Each scenario runs one layer of the stack under a seeded
:class:`~repro.chaos.schedule.FaultSchedule` and checks the robustness
contract the repo promises:

    under injected faults, a run either produces **bit-identical** results
    to its fault-free twin, or fails with a **typed**
    :class:`~repro.errors.ReproError` (or an explicitly ``complete=False``
    partial result) — silent corruption and silently missing output are
    the only unacceptable outcomes.

* :func:`run_join_scenario` — the MapReduce pipeline: task attempts die
  and straggle (speculative execution races the stragglers), then the
  driver is killed mid-pipeline at a scheduled DFS write and one surviving
  checkpoint is corrupted in place; a ``resume=True`` re-run must skip the
  digest-valid checkpoints, re-run the corrupted job, and produce exactly
  the fault-free pairs.
* :func:`run_cluster_scenario` — the serving cluster: a replica flaps
  (fails probes until its circuit breaker opens, then heals); every search
  during and after the flap must equal the single-node index's answer, the
  breaker must open *and* close again (the rejoin), and with a whole shard
  down ``search`` must fail typed while ``search_partial`` must flag its
  answer incomplete and name the missing fragments.
* :func:`run_search_scenario` — the service layer: a snapshot corrupted on
  disk must fail closed with a typed error on load, and a request that
  overruns its deadline (latency injected on the chaos clock) must raise
  :class:`~repro.errors.DeadlineExceededError` rather than return late.
* :func:`run_ingest_scenario` — the streaming ingest subsystem: the
  driver is killed at each of the three crash points of the write path
  (a torn WAL batch, the manifest's pre-commit write, its post-commit
  marker); after each kill ``StreamingIndex.recover`` must replay the
  WAL, garbage-collect orphans, and — once the lost batches are
  re-applied — answer probes bit-identically to an uninterrupted twin,
  with the post-compaction index *structurally* identical (equal pickle
  bytes) to a fresh index built from the same records.
* :func:`run_heal_scenario` — the self-healing control plane: one replica
  hard-killed and another silently bit-rotted under Zipf-skewed load; the
  failure detector must escalate the kill to a rebuild, the anti-entropy
  scrubber must quarantine the rot before it serves, both replicas must
  come back through verified (bit-identical) readmission with no operator
  action, and every answer along the way must equal the single-node
  index's.
* :func:`run_net_scenario` — the TCP front door: a live
  :class:`~repro.net.server.GatewayServer` is hit with seeded socket
  faults (torn frames, half-sent-then-silent headers, peers that hang up
  before reading their response, garbage headers); every probe must
  still answer bit-identically to the single-node index, stalled
  connections must be timed out and counted, garbage must be rejected
  with a typed ``ProtocolError`` frame, and a final drain must complete.

:func:`run_recovery_report` chains them all into the
:class:`RecoveryReport` the ``repro chaos`` CLI prints.  Everything is a
pure function of the seed: the same seed replays the same faults, the
same recoveries, the same report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.chaos.schedule import ChaosClock, ChaosConfig, FaultInjector, FaultSchedule
from repro.cluster import BreakerConfig, RetryPolicy, build_cluster
from repro.core import FSJoin, FSJoinConfig
from repro.data import RecordCollection, make_corpus
from repro.errors import (
    ClusterError,
    ConfigError,
    DeadlineExceededError,
    DFSError,
    ReproError,
    SnapshotError,
)
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.runtime import ClusterSpec, SimulatedCluster
from repro.observability.tracer import NOOP_TRACER, Tracer
from repro.service import SegmentIndex, SimilarityService, load_index, save_index
from repro.similarity.functions import SimilarityFunction

#: DFS path whose read the join scenario's driver kill is armed on — the
#: verification job's input, so the kill lands *between* jobs 2 and 3.
KILL_POINT = ("read", "fsjoin/partial-counts")


@dataclass
class ScenarioReport:
    """Outcome of one chaos scenario."""

    scenario: str
    seed: int
    matched: bool
    """Did the chaos run's output equal the fault-free run's, bit for bit?"""
    error: Optional[str] = None
    """Typed error name when the run failed closed instead of recovering."""
    faults: Dict[str, int] = field(default_factory=dict)
    """Injected faults by kind (driver-side injections)."""
    recovery: Dict[str, int] = field(default_factory=dict)
    """Observed recovery actions by kind (retries, speculative wins,
    resume skips, failovers, breaker transitions...)."""
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """The contract held: recovered exactly, or failed typed."""
        return self.matched or self.error is not None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "ok": self.ok,
            "matched": self.matched,
            "error": self.error,
            "faults": dict(self.faults),
            "recovery": dict(self.recovery),
            "detail": dict(self.detail),
        }


@dataclass
class RecoveryReport:
    """All scenarios for one seed — what ``repro chaos`` prints."""

    seed: int
    scenarios: List[ScenarioReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(scenario.ok for scenario in self.scenarios)

    def total_faults(self) -> int:
        return sum(sum(s.faults.values()) for s in self.scenarios)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "faults_injected": self.total_faults(),
            "scenarios": [scenario.as_dict() for scenario in self.scenarios],
        }


def _recovery_from_spans(tracer: Tracer, mark: int) -> Dict[str, int]:
    """Count ``phase="recovery"`` spans since ``mark`` by their action."""
    counts: Dict[str, int] = {}
    for span in tracer.spans_since(mark):
        if span.phase == "recovery":
            action = span.attrs.get("action", span.name)
            counts[action] = counts.get(action, 0) + 1
    return counts


def run_join_scenario(
    seed: int,
    theta: float = 0.7,
    func: SimilarityFunction = SimilarityFunction.JACCARD,
    executor: str = "serial",
    n_records: int = 120,
    config: Optional[ChaosConfig] = None,
    straggler_threshold: float = 0.1,
    tracer: Optional[Tracer] = None,
) -> ScenarioReport:
    """Kill, corrupt and straggle the FS-Join pipeline; resume must heal it.

    Timeline (all from the seed): run 1 executes under task failures and
    stragglers with speculative execution on, and is driver-killed at the
    verify job's input read — after the ordering and filter checkpoints
    are durable.  The filter checkpoint is then corrupted in place
    (silent bit rot).  Run 2 (``resume=True``) must skip only the
    digest-valid ordering checkpoint, re-run the corrupted filter job,
    and finish with pairs bit-identical to a fault-free run.
    """
    func = SimilarityFunction(func)
    tracer = tracer if tracer is not None else NOOP_TRACER
    chaos = config if config is not None else ChaosConfig(
        task_failure_rate=0.12, straggler_rate=0.2, straggler_delay=0.3
    )
    schedule = FaultSchedule(seed, chaos)
    records = make_corpus("wiki", n_records, seed=seed % 997)
    join_config = FSJoinConfig(theta=theta, func=func)

    # The fault-free twin every comparison is against.
    baseline = FSJoin(join_config).run(records)

    injector = FaultInjector(schedule, tracer)
    dfs = injector.attach_dfs(InMemoryDFS())
    injector.schedule_kill(*KILL_POINT)
    mr_cluster = SimulatedCluster(
        ClusterSpec(executor=executor),
        failure_injector=schedule.task_failure,
        straggler_injector=schedule.straggler,
        speculative=True,
        straggler_threshold=straggler_threshold,
        tracer=tracer,
    )
    join = FSJoin(join_config, mr_cluster, dfs=dfs)
    mark = tracer.mark()

    detail: Dict[str, Any] = {}
    try:
        join.run(records)
        detail["first_run"] = "completed"  # kill point not reached (unexpected)
    except DFSError:
        detail["first_run"] = "killed mid-pipeline"
    except ReproError as exc:
        # e.g. a task exhausted its retry budget under a harsh schedule —
        # a typed failure, and the resume below still gets its chance.
        detail["first_run"] = f"failed typed: {type(exc).__name__}"

    if dfs.exists("fsjoin/ckpt/filter"):
        injector.corrupt(dfs, "fsjoin/ckpt/filter")

    matched = False
    error = None
    try:
        result = join.run(records, resume=True)
        detail["resumed_jobs"] = list(result.resumed_jobs)
        matched = (
            result.result_pairs == baseline.result_pairs
            and result.result_set() == baseline.result_set()
        )
        counters = result.counters().as_dict().get("mapreduce", {})
        recovery = _recovery_from_spans(tracer, mark)
        for key, value in counters.items():
            if "retries" in key or "speculative" in key:
                recovery[key] = recovery.get(key, 0) + value
        detail["pairs"] = len(result.pairs)
    except ReproError as exc:
        error = type(exc).__name__
        detail["resume_error"] = str(exc)
        recovery = _recovery_from_spans(tracer, mark)

    return ScenarioReport(
        scenario="join",
        seed=seed,
        matched=matched,
        error=error,
        faults=injector.report(),
        recovery=recovery,
        detail=detail,
    )


def run_cluster_scenario(
    seed: int,
    theta: float = 0.6,
    func: SimilarityFunction = SimilarityFunction.JACCARD,
    n_records: int = 100,
    n_shards: int = 4,
    tracer: Optional[Tracer] = None,
) -> ScenarioReport:
    """Flap a replica and down a shard; routing must absorb both.

    Phase 1 — *flap*: replica 0 of shard 0 fails its next probes (seeded
    count, at least the breaker threshold), so the router fails over,
    trips the breaker open, and — once the chaos clock passes the reset
    timeout — rejoins the healed replica through a half-open trial.
    Every search result is compared to the single-node index's answer.

    Phase 2 — *shard down*: every replica of one shard is stopped;
    ``search`` must raise a typed :class:`ClusterError` and
    ``search_partial`` must return ``complete=False`` naming the missing
    fragments.  After restore, full answers must come back.
    """
    func = SimilarityFunction(func)
    tracer = tracer if tracer is not None else NOOP_TRACER
    schedule = FaultSchedule(seed, ChaosConfig())
    records = make_corpus("wiki", n_records, seed=seed % 991)
    index = SegmentIndex.build(records, n_vertical=12)
    clock = ChaosClock()
    injector = FaultInjector(schedule, tracer, clock)
    breaker = BreakerConfig(failure_threshold=2, reset_timeout=1.0)
    router = build_cluster(
        index,
        n_shards=n_shards,
        replication=2,
        tracer=tracer,
        retry=RetryPolicy(max_retries=1, base_delay=0.01, seed=seed),
        breaker=breaker,
        clock=clock,
        sleep=clock.sleep,
    )
    mark = tracer.mark()

    queries = [records[i].tokens for i in range(0, len(records), 7)]
    # The flap victim is a shard queries[0] provably routes to, so every
    # flap-phase probe actually exercises the broken replica.
    flap_tokens = queries[0]
    flap_targets = router.target_fragments(
        router.encode_query(flap_tokens), theta, func
    )
    victim_shard = router.plan.shard_of(flap_targets[0]) if flap_targets else 0
    victim = router.replica(victim_shard, 0)
    injector.crash_replica(victim, probes=breaker.failure_threshold)

    # Flap phase: with replica 0 crashed and round-robin rotation, two
    # full rotations burn the crash budget and trip the breaker open;
    # after the reset timeout the healed replica's half-open trial closes
    # it again.  Every answer along the way must stay exact.
    expected_flap = index.probe(flap_tokens, theta, func)
    mismatches = 0
    for _ in range(2 * router.replication):
        if router.search(flap_tokens, theta, func=func) != expected_flap:
            mismatches += 1
    clock.advance(breaker.reset_timeout)
    for _ in range(router.replication):
        if router.search(flap_tokens, theta, func=func) != expected_flap:
            mismatches += 1

    breaker_stats = router.breaker(victim_shard, 0).transitions
    detail: Dict[str, Any] = {
        "victim": victim.name,
        "victim_breaker": dict(breaker_stats),
        "victim_tripped": breaker_stats["opened"] >= 1,
        "victim_rejoined": breaker_stats["closed"] >= 1,
    }

    # Correctness sweep with the cluster healed: broad query coverage.
    for tokens in queries:
        if router.search(tokens, theta, func=func) != index.probe(
            tokens, theta, func
        ):
            mismatches += 1
    detail["queries"] = len(queries)
    detail["mismatches"] = mismatches

    # Shard-down phase: typed failure vs flagged partial on the same query.
    downed = victim_shard
    for r in range(router.replication):
        router.replica(downed, r).fail()
    typed_failure = False
    try:
        router.search(flap_tokens, theta, func=func)
    except ClusterError:
        typed_failure = True
    partial = router.search_partial(flap_tokens, theta, func=func)
    partial_flagged = (
        not partial.complete and downed in partial.missing_shards
    )
    detail["typed_failure_when_shard_down"] = typed_failure
    detail["partial_flagged"] = partial_flagged
    detail["partial_missing_fragments"] = list(partial.missing_fragments)
    for r in range(router.replication):
        router.replica(downed, r).restore()
    clock.advance(breaker.reset_timeout)
    restored_ok = (
        router.search(flap_tokens, theta, func=func) == expected_flap
    )
    detail["restored_ok"] = restored_ok

    recovery = _recovery_from_spans(tracer, mark)
    route = router.metrics.group("cluster.route")
    for key in ("failovers", "breaker_opened", "breaker_closed", "retries",
                "breaker_skipped", "partial_results"):
        if route.get(key):
            recovery[key] = route[key]

    matched = (
        mismatches == 0
        and restored_ok
        and detail["victim_tripped"]
        and detail["victim_rejoined"]
        and typed_failure
        and partial_flagged
    )
    return ScenarioReport(
        scenario="cluster",
        seed=seed,
        matched=matched,
        error=None,
        faults=injector.report(),
        recovery=recovery,
        detail=detail,
    )


def run_search_scenario(
    seed: int,
    theta: float = 0.7,
    func: SimilarityFunction = SimilarityFunction.JACCARD,
    n_records: int = 80,
    workdir: Optional[str] = None,
    tracer: Optional[Tracer] = None,
) -> ScenarioReport:
    """Corrupt a snapshot on disk and overrun a deadline; both fail typed.

    The snapshot must fail closed (:class:`SnapshotError` on load, never a
    silently wrong index), and a probe that runs past its deadline on the
    chaos clock must raise :class:`DeadlineExceededError` — while the same
    probe with a sane deadline still answers exactly.
    """
    import tempfile
    from pathlib import Path

    func = SimilarityFunction(func)
    tracer = tracer if tracer is not None else NOOP_TRACER
    schedule = FaultSchedule(seed, ChaosConfig())
    injector = FaultInjector(schedule, tracer)
    records = make_corpus("wiki", n_records, seed=seed % 983)
    index = SegmentIndex.build(records, n_vertical=10)
    probe_tokens = records[stable_mod(seed, len(records))].tokens
    expected = index.probe(probe_tokens, theta, func)

    detail: Dict[str, Any] = {}
    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        path = Path(tmp) / "chaos.idx"
        save_index(index, path)
        # Intact round-trip first: the baseline the corruption breaks.
        detail["roundtrip_ok"] = (
            load_index(path).probe(probe_tokens, theta, func) == expected
        )
        raw = bytearray(path.read_bytes())
        offset = len(raw) // 2 + stable_mod(seed, max(1, len(raw) // 4))
        raw[offset] ^= 0xFF
        path.write_bytes(bytes(raw))
        injector.record("snapshot-corruption", str(path),
                        f"byte {offset} flipped")
        try:
            load_index(path)
            corruption_detected = False
        except SnapshotError:
            corruption_detected = True
        detail["corruption_detected"] = corruption_detected

    clock = ChaosClock()
    service = SimilarityService(index, tracer=tracer, clock=clock)
    hits = service.search(probe_tokens, theta, func=func, deadline=60.0)
    detail["in_deadline_ok"] = hits == expected
    injector.record("latency-spike", "service",
                    "+1.000s on the chaos clock mid-request")
    original_probe = service.index.probe

    def slow_probe(*args, **kwargs):
        clock.advance(1.0)
        return original_probe(*args, **kwargs)

    service.index.probe = slow_probe  # type: ignore[method-assign]
    service._cache.clear()
    deadline_typed = False
    try:
        service.search(probe_tokens, theta, func=func, deadline=0.5)
    except DeadlineExceededError:
        deadline_typed = True
    finally:
        del service.index.probe
    detail["deadline_typed"] = deadline_typed
    detail["deadline_counter"] = service.metrics.get(
        "service.deadline", "exceeded"
    )

    matched = (
        detail["roundtrip_ok"]
        and corruption_detected
        and detail["in_deadline_ok"]
        and deadline_typed
    )
    return ScenarioReport(
        scenario="search",
        seed=seed,
        matched=matched,
        error=None,
        faults=injector.report(),
        recovery={"fail-closed": int(corruption_detected)
                  + int(deadline_typed)},
        detail=detail,
    )


def run_ingest_scenario(
    seed: int,
    theta: float = 0.6,
    func: SimilarityFunction = SimilarityFunction.JACCARD,
    n_records: int = 120,
    batch_size: int = 8,
    tracer: Optional[Tracer] = None,
) -> ScenarioReport:
    """Kill the ingest driver at every crash point; recovery must be exact.

    An uninterrupted twin streams the same batches through a
    :class:`~repro.ingest.StreamingIndex` (same seed, same config) and is
    the bit-identical reference.  Then, for each kill point —

    * ``wal-tear``: the batch's record entries land but the driver dies
      before the commit marker (``after=1`` on the WAL segment append),
      leaving a torn tail that replay must discard whole;
    * ``pre-commit``: a flush persists its segment but dies writing the
      manifest's ``CURRENT`` pointer — the commit record — so recovery
      must roll back to the previous manifest, GC the orphan segment, and
      re-apply the batches from the WAL;
    * ``post-commit``: the commit record lands and the driver dies on the
      ``COMMITTED`` audit marker — recovery must adopt the *new* manifest
      and replay nothing it already covers;

    — the harness restarts via :meth:`StreamingIndex.recover`, re-applies
    whichever batches the kill lost (torn batches are atomic: either
    every rid of a batch survives or none does), runs a major compaction,
    and requires probe results equal to the twin's *and* the compacted
    generation's pickle bytes equal to a fresh
    :class:`~repro.service.SegmentIndex` built from the union — the
    crash-safety drill's structural half.
    """
    import pickle

    from repro.ingest import IngestConfig, StreamingIndex

    func = SimilarityFunction(func)
    tracer = tracer if tracer is not None else NOOP_TRACER
    schedule = FaultSchedule(seed, ChaosConfig())
    injector = FaultInjector(schedule, tracer)
    records = make_corpus("wiki", n_records, seed=seed % 977)
    base = records[: n_records // 3]
    stream = records[n_records // 3:]
    batches = [stream[i:i + batch_size]
               for i in range(0, len(stream), batch_size)]
    queries = [records[i].tokens for i in range(0, len(records), 5)]
    config = IngestConfig(memtable_limit=2 * batch_size, fanout=2)

    def build(dfs):
        return StreamingIndex.create(
            dfs, records=RecordCollection(base), n_vertical=12,
            config=config, tracer=tracer,
        )

    # The fault-free twin: same batches, no kills, one major compaction.
    twin = build(InMemoryDFS())
    for batch in batches:
        twin.apply_batch(batch)
    twin.compact(major=True)
    expected = [twin.probe(q, theta, func) for q in queries]

    mark = tracer.mark()
    detail: Dict[str, Any] = {"batches": len(batches)}
    matched = True
    for point in ("wal-tear", "pre-commit", "post-commit"):
        dfs = injector.attach_dfs(InMemoryDFS())
        live = build(dfs)
        for batch in batches[:-1]:
            live.apply_batch(batch)
        op, path = live.kill_points()[point]
        injector.schedule_kill(op, path, after=1 if point == "wal-tear" else 0)
        killed = False
        try:
            live.apply_batch(batches[-1])
            live.flush()
        except DFSError:
            killed = True

        recovered = StreamingIndex.recover(dfs, config=config, tracer=tracer)
        lost = [b for b in batches if b[0].rid not in recovered]
        # Batch atomicity: a lost batch must be lost *whole*.
        torn_whole = all(
            not any(r.rid in recovered for r in b) for b in lost
        )
        for batch in lost:
            recovered.apply_batch(batch)
        recovered.compact(major=True)

        probes_ok = all(
            recovered.probe(q, theta, func) == expected[i]
            for i, q in enumerate(queries)
        )
        fresh = recovered.to_segment_index()
        structural_ok = pickle.dumps(
            recovered.generations[0].index
        ) == pickle.dumps(fresh)
        point_ok = (killed and torn_whole and probes_ok and structural_ok
                    and len(recovered) == len(records))
        matched = matched and point_ok
        detail[point] = {
            "killed": killed,
            "lost_batches": len(lost),
            "torn_whole": torn_whole,
            "probes_ok": probes_ok,
            "structural_ok": structural_ok,
        }

    return ScenarioReport(
        scenario="ingest",
        seed=seed,
        matched=matched,
        error=None,
        faults=injector.report(),
        recovery=_recovery_from_spans(tracer, mark),
        detail=detail,
    )


def run_gateway_scenario(
    seed: int,
    theta: float = 0.6,
    func: SimilarityFunction = SimilarityFunction.JACCARD,
    n_records: int = 120,
    n_shards: int = 4,
    tracer: Optional[Tracer] = None,
) -> ScenarioReport:
    """Storm, flap and slow the gateway's cluster; answers must stay exact.

    Four phases, one gateway, one chaos clock shared by the router, its
    breakers and every latency histogram:

    * *storm* — a hot-key storm from a small-quota tenant alongside a
      paid tenant's distinct probes: the duplicates must coalesce onto
      one shared computation, the quota overflow must shed typed (a
      seeded schedule sheds the same requests every run), and the paid
      tenant must be untouched.
    * *flap* — replica 0 of a shard the storm key provably routes to
      fails its next probes: the batched scatter must fail over, trip
      the breaker (which also removes the replica from hedge-backup
      duty), and — once the chaos clock passes the reset timeout —
      rejoin it through a half-open trial.
    * *hedge* — the healed replica turns slow (a real-time stall, since
      the hedge race is a wall-clock one): whenever it is the primary
      leg, the rolling-p95 hedge timer must fire a backup probe on its
      twin and take the answer that lands first.  Replicas serve the
      same slice, so every answer along the way must stay bit-identical
      with zero dedup.
    * *spike* — a replica's probes advance the *chaos clock*: the spike
      must show up in the gateway's latency percentiles, proving the
      histograms record on the same injectable clock the deadline checks
      read (the one-clock contract).

    Every response in every phase is compared against the single-node
    index's answer.
    """
    import time as _time

    from repro.cluster import HedgeConfig
    from repro.gateway import (
        GatewayConfig,
        GatewayRequest,
        SimilarityGateway,
        TenantConfig,
    )

    func = SimilarityFunction(func)
    tracer = tracer if tracer is not None else NOOP_TRACER
    schedule = FaultSchedule(seed, ChaosConfig())
    records = make_corpus("wiki", n_records, seed=seed % 971)
    index = SegmentIndex.build(records, n_vertical=12)
    clock = ChaosClock()
    injector = FaultInjector(schedule, tracer, clock)
    breaker = BreakerConfig(failure_threshold=2, reset_timeout=1.0)
    # min_observations high: the rolling p95 of chaos-clock legs is ~0,
    # so the hedge timer stays pinned at min_delay — deterministic.
    hedge = HedgeConfig(min_delay=0.002, max_delay=0.05,
                        min_observations=10_000)
    router = build_cluster(
        index,
        n_shards=n_shards,
        replication=2,
        tracer=tracer,
        retry=RetryPolicy(max_retries=1, base_delay=0.01, seed=seed),
        breaker=breaker,
        hedge=hedge,
        clock=clock,
        sleep=clock.sleep,
    )
    # cache_size=0: every wave re-dispatches, so flap/hedge waves keep
    # exercising the scatter path instead of the result cache.
    gateway = SimilarityGateway(
        router,
        GatewayConfig(
            max_batch=16,
            cache_size=0,
            tenants={
                "free": TenantConfig(weight=1, max_outstanding=4),
                "paid": TenantConfig(weight=3, max_outstanding=64),
            },
        ),
    )
    mark = tracer.mark()
    detail: Dict[str, Any] = {}
    mismatches = 0

    def expect(tokens):
        return index.probe(tokens, theta, func)

    def check(requests, responses):
        nonlocal mismatches
        for request, response in zip(requests, responses):
            if response.ok and list(response.hits) != expect(
                list(request.tokens)
            ):
                mismatches += 1

    # Storm phase: 12 identical free-tenant probes (quota 4) riding with
    # 6 distinct paid probes in one scheduling wave.
    hot = records[stable_mod(seed, len(records))]
    storm = [GatewayRequest(tuple(hot.tokens), theta, func=func,
                            tenant="free") for _ in range(12)]
    paid = [GatewayRequest(tuple(records[(i * 7 + 3) % len(records)].tokens),
                           theta, func=func, tenant="paid")
            for i in range(6)]
    responses = gateway.serve(storm + paid)
    check(storm + paid, responses)
    stats = gateway.metrics.group("gateway")
    paid_ok = all(r.ok for r in responses[len(storm):])
    shed = [r for r in responses[: len(storm)] if r.error]
    detail["storm"] = {
        "coalesced": stats.get("coalesced", 0),
        "quota_shed": stats.get("quota_shed", 0),
        "shed_typed": all(r.error == "QuotaExceededError" for r in shed),
        "paid_unaffected": paid_ok,
    }
    injector.record("hot-key-storm", "tenant:free",
                    f"{len(storm)} identical probes, quota 4")

    # Flap phase: crash a replica of a shard the hot key routes to, then
    # keep probing it through the gateway until the breaker trips.
    flap_targets = router.target_fragments(
        router.encode_query(list(hot.tokens)), theta, func
    )
    victim_shard = router.plan.shard_of(flap_targets[0]) if flap_targets else 0
    victim = router.replica(victim_shard, 0)
    injector.crash_replica(victim, probes=breaker.failure_threshold)
    flap_request = [GatewayRequest(tuple(hot.tokens), theta, func=func,
                                   tenant="paid")]
    for _ in range(2 * router.replication):
        check(flap_request, gateway.serve(flap_request))
    clock.advance(breaker.reset_timeout)
    for _ in range(router.replication):
        check(flap_request, gateway.serve(flap_request))
    transitions = router.breaker(victim_shard, 0).transitions
    detail["flap"] = {
        "victim": victim.name,
        "victim_tripped": transitions["opened"] >= 1,
        "victim_rejoined": transitions["closed"] >= 1,
    }

    # Hedge phase: the healed victim stalls in real time (the hedge race
    # is wall-clock); whenever it is the primary leg the timer fires its
    # twin and the fast answer wins — bit-identical either way.
    def stall(target) -> None:
        _time.sleep(0.05)

    victim.fault_hook = stall
    injector.record("replica-stall", victim.name,
                    "+50ms wall time per probe batch")
    for _ in range(3 * router.replication):
        check(flap_request, gateway.serve(flap_request))
    victim.fault_hook = None
    route = router.metrics.group("cluster.route")
    detail["hedge"] = {
        "hedges": route.get("hedges", 0),
        "hedge_wins": route.get("hedge_wins", 0),
    }

    # Spike phase: probes advance the chaos clock; the spike must appear
    # in the gateway's shared-clock latency percentiles.  Both replicas
    # get the spike so rotation cannot route around it.
    def spike(target) -> None:
        clock.advance(0.25)

    for replica_id in range(router.replication):
        router.replica(victim_shard, replica_id).fault_hook = spike
    injector.record("latency-spike", f"shard{victim_shard}",
                    "+250ms on the chaos clock per probe batch")
    check(flap_request, gateway.serve(flap_request))
    for replica_id in range(router.replication):
        router.replica(victim_shard, replica_id).fault_hook = None
    latency = gateway.latency_info()
    detail["spike"] = {
        "latency_count": latency["count"],
        "latency_max_ms": latency["max_ms"],
        "latency_visible": latency["max_ms"] > 0.0,
    }

    matched = (
        mismatches == 0
        and detail["storm"]["coalesced"] > 0
        and detail["storm"]["quota_shed"] > 0
        and detail["storm"]["shed_typed"]
        and detail["storm"]["paid_unaffected"]
        and detail["flap"]["victim_tripped"]
        and detail["flap"]["victim_rejoined"]
        and detail["hedge"]["hedge_wins"] >= 1
        and detail["spike"]["latency_visible"]
    )
    detail["mismatches"] = mismatches

    recovery = _recovery_from_spans(tracer, mark)
    for key in ("failovers", "hedges", "hedge_wins", "breaker_opened",
                "breaker_closed", "breaker_skipped"):
        if route.get(key):
            recovery[key] = route[key]
    return ScenarioReport(
        scenario="gateway",
        seed=seed,
        matched=matched,
        error=None,
        faults=injector.report(),
        recovery=recovery,
        detail=detail,
    )


def run_net_scenario(
    seed: int,
    theta: float = 0.6,
    func: SimilarityFunction = SimilarityFunction.JACCARD,
    n_records: int = 80,
    n_requests: int = 20,
    tracer: Optional[Tracer] = None,
) -> ScenarioReport:
    """Abuse the TCP front door with seeded socket faults; answers must
    stay exact and the server must keep serving.

    A real :class:`~repro.net.server.GatewayServer` listens on an
    ephemeral localhost port; a healthy pooled client runs a seeded
    probe plan against it while :meth:`FaultSchedule.net_fault` picks
    which request indices are subjected to which wire fault:

    * *torn-frame* — the search frame is written in three separate
      chunks: the server must reassemble it and answer bit-identically;
    * *stalled-connection* — a connection sends half a header and goes
      quiet: the server must drop it after ``frame_timeout`` (counted),
      while the same probe completes on the healthy connection;
    * *connection-kill* — a connection sends a full request and hangs up
      before reading the response: the server must absorb the dead peer
      and keep serving everyone else.

    A garbage header is also thrown at a fresh connection and must be
    rejected with a typed ``ProtocolError`` frame before the connection
    is dropped.  The drill ends with a client-triggered drain; every
    probe's answer is compared against the single-node index.  The
    report's results, counters and fault log are pure functions of the
    seed (timing-dependent byte/response counts are deliberately left
    out).
    """
    import asyncio

    from repro.gateway import GatewayConfig, SimilarityGateway
    from repro.net.client import AsyncGatewayClient
    from repro.net.protocol import (
        ERROR,
        FrameDecoder,
        encode_frame,
        hello_frame,
        hits_from_wire,
        search_frame,
    )
    from repro.net.server import GatewayServer, ServerConfig

    func = SimilarityFunction(func)
    tracer = tracer if tracer is not None else NOOP_TRACER
    schedule = FaultSchedule(seed, ChaosConfig(net_fault_rate=0.4))
    injector = FaultInjector(schedule, tracer)
    records = make_corpus("wiki", n_records, seed=seed % 971)
    index = SegmentIndex.build(records, n_vertical=8)
    mark = tracer.mark()
    stall_timeout = 0.2

    async def drill() -> Dict[str, Any]:
        router = build_cluster(index, n_shards=2, replication=2,
                               tracer=tracer)
        gateway = SimilarityGateway(router, GatewayConfig(max_batch=8))
        server = GatewayServer(
            gateway,
            ServerConfig(frame_timeout=stall_timeout, drain_grace=0.5),
            tracer=tracer,
        )
        host, port = await server.start()

        async def read_frame(reader, decoder):
            """One response frame off a raw connection (None on EOF)."""
            while True:
                data = await asyncio.wait_for(reader.read(65536), 10.0)
                if not data:
                    return None
                frames = decoder.feed(data)
                if frames:
                    return frames[0]

        async def raw_conn():
            reader, writer = await asyncio.open_connection(host, port)
            decoder = FrameDecoder()
            writer.write(encode_frame(hello_frame(0, "chaos")))
            await writer.drain()
            await read_frame(reader, decoder)
            return reader, writer, decoder

        client = AsyncGatewayClient(host, port, tenant="chaos",
                                    pool_size=1)
        stalled_writers = []
        answered = 0
        mismatches = 0
        for i in range(n_requests):
            pick = stable_mod(seed + i, len(records))
            tokens = list(records[pick].tokens)
            expected = index.probe(tokens, theta, func)
            fault = schedule.net_fault(i)
            if fault == "torn-frame":
                injector.record("torn-frame", f"request-{i}",
                                "frame written in 3 chunks")
                reader, writer, decoder = await raw_conn()
                data = encode_frame(
                    search_frame(1, tokens, theta, func.value)
                )
                for chunk in (data[:5], data[5:13], data[13:]):
                    writer.write(chunk)
                    await writer.drain()
                    await asyncio.sleep(0.01)
                response = await read_frame(reader, decoder)
                hits = hits_from_wire(response.payload["hits"])
                writer.close()
            elif fault == "stalled-connection":
                injector.record("stalled-connection", f"request-{i}",
                                "header left half-sent")
                _reader, writer, _decoder = await raw_conn()
                writer.write(encode_frame(
                    search_frame(1, tokens, theta, func.value)
                )[:5])
                await writer.drain()
                stalled_writers.append(writer)
                # The probe must still complete on the healthy pool.
                hits = await client.search(tokens, theta, func=func)
            elif fault == "connection-kill":
                injector.record("connection-kill", f"request-{i}",
                                "peer hung up before reading the response")
                _reader, writer, _decoder = await raw_conn()
                writer.write(encode_frame(
                    search_frame(1, tokens, theta, func.value)
                ))
                await writer.drain()
                writer.close()
                hits = await client.search(tokens, theta, func=func)
            else:
                hits = await client.search(tokens, theta, func=func)
            answered += 1
            if hits != expected:
                mismatches += 1

        # Garbage header: typed rejection, then the connection drops.
        injector.record("garbage-header", "raw-connection",
                        "junk bytes instead of a frame header")
        reader, writer, decoder = await raw_conn()
        writer.write(b"XXjunk-not-a-frame")
        await writer.drain()
        response = await read_frame(reader, decoder)
        garbage_typed = (
            response is not None
            and response.kind == ERROR
            and response.payload.get("error") == "ProtocolError"
        )
        garbage_dropped = (await read_frame(reader, decoder)) is None
        writer.close()

        # The stalled peers must be timed out and dropped (real time:
        # the read timeout is a wall-clock one).
        n_stalls = sum(
            1 for event in injector.events
            if event.kind == "stalled-connection"
        )
        for _ in range(100):
            if server.metrics.get("net",
                                  "stalled_connections") >= n_stalls:
                break
            await asyncio.sleep(0.05)
        stalls_dropped = server.metrics.get("net", "stalled_connections")

        await client.drain()
        await server.wait_drained()
        await client.close()
        for writer in stalled_writers:
            writer.close()
        return {
            "answered": answered,
            "mismatches": mismatches,
            "garbage_typed": garbage_typed,
            "garbage_dropped": garbage_dropped,
            "stalls_dropped": stalls_dropped,
            "stalls_injected": n_stalls,
            # Only seed-deterministic counters (no byte/response counts,
            # which depend on how TCP slices the stream).
            "counters": {
                "requests": server.metrics.get("net", "requests"),
                "connections": server.metrics.get("net", "connections"),
                "protocol_errors": server.metrics.get(
                    "net", "protocol_errors"
                ),
                "stalled_connections": stalls_dropped,
            },
        }

    detail = asyncio.run(drill())
    matched = (
        detail["mismatches"] == 0
        and detail["answered"] == n_requests
        and detail["garbage_typed"]
        and detail["garbage_dropped"]
        and detail["stalls_dropped"] == detail["stalls_injected"]
    )
    return ScenarioReport(
        scenario="net",
        seed=seed,
        matched=matched,
        error=None,
        faults=injector.report(),
        recovery=_recovery_from_spans(tracer, mark),
        detail=detail,
    )


def run_heal_scenario(
    seed: int,
    theta: float = 0.6,
    func: SimilarityFunction = SimilarityFunction.JACCARD,
    n_records: int = 100,
    n_shards: int = 3,
    n_waves: int = 12,
    queries_per_wave: int = 3,
    tracer: Optional[Tracer] = None,
) -> ScenarioReport:
    """Kill one replica and silently rot another mid-load; the control
    plane must heal both with zero wrong answers and no operator action.

    The cluster runs with *independent* replicas (each its own deep copy,
    so corruption is per-replica, as on real machines) and an attached
    :class:`~repro.cluster.health.ControlPlane`.  Traffic is a seeded
    Zipf-skewed replay: each wave draws ``queries_per_wave`` records with
    probability mass cubed toward the head.  Every wave, the plane ticks
    *before* the wave's probes (heartbeats beat traffic — the real-world
    analogue is a detector period shorter than the time between repeat
    queries).

    Timeline (all waves/targets from the seed):

    * wave 3 — replica 0 of the shard the head query routes to is
      hard-killed (:meth:`~repro.chaos.schedule.FaultInjector.kill_replica`);
      the detector must escalate suspect → dead and the repair path must
      rebuild it from its healthy peer, readmitting only after the
      bit-identical verification.
    * wave 6 — a replica of a *different* shard gets one fragment's
      postings silently wiped
      (:meth:`~repro.chaos.schedule.FaultInjector.corrupt_replica`); no
      probe can notice, only the scrubber's digest sweep can, and it must
      quarantine the replica before the wave's probes reach it.

    Every served answer (during failover, rebuild and after) is compared
    bit-for-bit against the single-node index.  The run matches iff there
    were zero mismatches, the cluster ends at full replication with the
    plane reporting all-healthy, at least two rebuilds happened (kill +
    rot), and at least one quarantine was issued.  The health event log
    and fault log ride in ``detail`` keyed by tick number, never wall
    time — two runs with one seed must produce identical logs
    (``tests/test_chaos.py`` diffs them).
    """
    from repro.cluster.health import ControlPlane, HealthConfig

    func = SimilarityFunction(func)
    tracer = tracer if tracer is not None else NOOP_TRACER
    schedule = FaultSchedule(seed, ChaosConfig())
    records = make_corpus("wiki", n_records, seed=seed % 983)
    index = SegmentIndex.build(records, n_vertical=12)
    clock = ChaosClock()
    injector = FaultInjector(schedule, tracer, clock)
    breaker = BreakerConfig(failure_threshold=2, reset_timeout=1.0)
    router = build_cluster(
        index,
        n_shards=n_shards,
        replication=2,
        tracer=tracer,
        retry=RetryPolicy(max_retries=1, base_delay=0.01, seed=seed),
        breaker=breaker,
        clock=clock,
        sleep=clock.sleep,
        independent_replicas=True,
    )
    plane = ControlPlane(
        router,
        HealthConfig(miss_budget=2, scrub_interval=1, verify_probes=3),
        tracer=tracer,
    )
    mark = tracer.mark()

    # Zipf-skewed seeded replay: cube the unit draw so most probes hit
    # the head of the corpus (the hot keys a serving cluster really sees).
    def zipf_record(wave: int, slot: int):
        unit = schedule._unit("zipf", wave, slot)
        return records[int(unit ** 3 * len(records)) % len(records)]

    # Fault targets: the kill victim is a shard the head query provably
    # routes to (so failover is actually exercised); the rot victim is a
    # replica of a *different* shard, so the two repairs don't mask each
    # other.
    head_tokens = zipf_record(0, 0).tokens
    head_targets = router.target_fragments(
        router.encode_query(head_tokens), theta, func
    )
    kill_shard = router.plan.shard_of(head_targets[0]) if head_targets else 0
    rot_shard = (kill_shard + 1) % n_shards
    kill_wave, rot_wave = 3, 6

    mismatches = 0
    probes = 0
    for wave in range(n_waves):
        if wave == kill_wave:
            injector.kill_replica(router.replica(kill_shard, 0))
        if wave == rot_wave:
            injector.corrupt_replica(router.replica(rot_shard, 1))
        plane.tick()
        clock.advance(0.25)
        for slot in range(queries_per_wave):
            record = zipf_record(wave, slot)
            probes += 1
            if router.search(record.tokens, theta, func=func) != index.probe(
                record.tokens, theta, func
            ):
                mismatches += 1

    # Drain: keep ticking (time advancing) until the plane reports full
    # replication again — bounded, so a repair bug fails the scenario
    # instead of hanging it.
    extra_ticks = 0
    while not plane.all_healthy() and extra_ticks < 10:
        clock.advance(0.5)
        plane.tick()
        extra_ticks += 1

    counters = router.metrics.group("cluster.health")
    detail: Dict[str, Any] = {
        "kill_victim": f"shard{kill_shard}/r0",
        "rot_victim": f"shard{rot_shard}/r1",
        "probes": probes,
        "mismatches": mismatches,
        "ticks": plane.ticks,
        "extra_ticks": extra_ticks,
        "full_replication": plane.all_healthy(),
        "replica_states": plane.replica_states(),
        "rebuilds": counters.get("rebuilds", 0),
        "quarantines": counters.get("quarantines", 0),
        # The replay-diff payload: tick-keyed, wall-time-free logs.
        "health_events": [list(event) for event in plane.event_log()],
        "fault_log": [event.as_dict() for event in injector.events],
    }
    matched = (
        mismatches == 0
        and plane.all_healthy()
        and counters.get("rebuilds", 0) >= 2
        and counters.get("quarantines", 0) >= 1
    )
    return ScenarioReport(
        scenario="heal",
        seed=seed,
        matched=matched,
        error=None,
        faults=injector.report(),
        recovery=_recovery_from_spans(tracer, mark),
        detail=detail,
    )


SCENARIOS = {
    "join": run_join_scenario,
    "cluster": run_cluster_scenario,
    "search": run_search_scenario,
    "ingest": run_ingest_scenario,
    "gateway": run_gateway_scenario,
    "net": run_net_scenario,
    "heal": run_heal_scenario,
}


def run_recovery_report(
    seed: int,
    scenario: str = "all",
    theta: float = 0.7,
    func: SimilarityFunction = SimilarityFunction.JACCARD,
    executor: str = "serial",
    tracer: Optional[Tracer] = None,
) -> RecoveryReport:
    """Run the selected scenario(s) for one seed and collect the report."""
    func = SimilarityFunction(func)
    names = list(SCENARIOS) if scenario == "all" else [scenario]
    for name in names:
        if name not in SCENARIOS:
            raise ConfigError(
                f"unknown chaos scenario {name!r} "
                f"(choose from: {', '.join(SCENARIOS)}, all)"
            )
    report = RecoveryReport(seed=seed)
    for name in names:
        if name == "join":
            result = run_join_scenario(
                seed, theta=theta, func=func, executor=executor, tracer=tracer
            )
        else:
            result = SCENARIOS[name](seed, theta=theta, func=func,
                                     tracer=tracer)
        report.scenarios.append(result)
    return report


def stable_mod(seed: int, modulus: int) -> int:
    """A small seeded pick (shared by scenarios; never the global RNG)."""
    from repro.mapreduce.shuffle import stable_hash

    return stable_hash(("chaos-pick", seed)) % max(1, modulus)
