"""Seeded, deterministic fault schedules and their injection plumbing.

The chaos harness's contract is **exact replayability**: one integer seed
fixes every fault the harness will inject — which task attempts die, which
attempts straggle and by how much, which DFS calls error, when a replica
crashes and for how long.  Every decision is a pure function of
``(seed, stable key)`` through :func:`~repro.mapreduce.shuffle.stable_hash`;
no global RNG, no wall clock.  Running the same seed twice injects the
same faults in the same places, so a failure found in CI reproduces on a
laptop from nothing but the seed.

Three pieces:

* :class:`ChaosConfig` — the knobs (rates, delays, crash lengths);
* :class:`FaultSchedule` — a frozen ``(seed, config)`` pair whose methods
  answer the per-site questions (*should this attempt fail?* *how slow is
  this task?*).  It is picklable, and its bound methods plug directly
  into :class:`~repro.mapreduce.runtime.SimulatedCluster` as failure /
  straggler injectors — which matters under the process executor, where
  the injector crosses a process boundary;
* :class:`FaultInjector` — the driver-side arm that attaches schedule
  decisions to live components (DFS hooks, replica fault hooks, scheduled
  driver kills, checkpoint corruption) and records every injection as a
  :class:`FaultEvent` plus a ``phase="fault"`` span, so a trace shows
  exactly what was done to the system next to how it recovered.

:class:`ChaosClock` is the harness's time source: a manual clock that
advances only when told to, injected into circuit breakers, retry sleeps
and deadlines so time-dependent recovery is tested without real waiting —
and identically on every run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigError, DFSError, ShardDownError
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.shuffle import stable_hash
from repro.observability.tracer import NOOP_TRACER, Tracer

#: Draw resolution: rates are compared against ``hash % RESOLUTION``.
RESOLUTION = 1_000_000


@dataclass(frozen=True)
class ChaosConfig:
    """Fault rates and magnitudes; all decisions still come from the seed.

    Attributes:
        task_failure_rate: Probability an individual task *attempt* is
            declared dead before commit (retried by the runtime).
        straggler_rate: Probability a task attempt runs slow.
        straggler_delay: Base injected slowdown in simulated seconds for a
            straggling attempt (actual delay varies in
            ``[delay, 2·delay)``, seeded) — what speculative execution
            races against.
        dfs_read_error_rate: Probability a DFS read call fails.
        dfs_write_error_rate: Probability a DFS write call fails.
        replica_crash_probes: How many consecutive probes a crashed
            replica fails before it comes back (a *flap*, not permanent
            death — long enough to trip a breaker, short enough to test
            the rejoin path).
        latency_rate: Probability one replica probe hits a latency spike.
        latency_spike: Seconds charged to the chaos clock per spike (what
            request deadlines trip against).
        net_fault_rate: Probability one wire request is subjected to a
            socket fault (torn frame, stalled connection, or mid-request
            connection kill — the kind is a second seeded draw; see
            :meth:`FaultSchedule.net_fault`).
    """

    task_failure_rate: float = 0.0
    straggler_rate: float = 0.0
    straggler_delay: float = 0.25
    dfs_read_error_rate: float = 0.0
    dfs_write_error_rate: float = 0.0
    replica_crash_probes: int = 2
    latency_rate: float = 0.0
    latency_spike: float = 0.05
    net_fault_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("task_failure_rate", "straggler_rate",
                     "dfs_read_error_rate", "dfs_write_error_rate",
                     "latency_rate", "net_fault_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate}")
        if self.straggler_delay < 0 or self.latency_spike < 0:
            raise ConfigError("injected delays must be >= 0")
        if self.replica_crash_probes < 0:
            raise ConfigError("replica_crash_probes must be >= 0")


@dataclass(frozen=True)
class FaultSchedule:
    """Every fault decision for one seed, as pure functions.

    Frozen and picklable: bound methods (``schedule.task_failure``,
    ``schedule.straggler``) are handed to the MapReduce runtime as its
    failure/straggler injectors and survive the trip into worker
    processes, where they keep making byte-identical decisions.
    """

    seed: int
    config: ChaosConfig = field(default_factory=ChaosConfig)

    def _unit(self, *key: Any) -> float:
        """A deterministic draw in ``[0, 1)`` for one decision site."""
        return stable_hash((self.seed,) + key) % RESOLUTION / RESOLUTION

    # -- MapReduce runtime hooks ---------------------------------------
    def task_failure(self, phase: str, task_id: int, attempt: int) -> bool:
        """``FailureInjector``: does this task attempt die before commit?"""
        return (
            self._unit("task-fail", phase, task_id, attempt)
            < self.config.task_failure_rate
        )

    def straggler(self, phase: str, task_id: int, attempt: int) -> float:
        """``StragglerInjector``: injected slowdown for this attempt."""
        if (
            self._unit("straggle", phase, task_id, attempt)
            < self.config.straggler_rate
        ):
            magnitude = self._unit("straggle-mag", phase, task_id, attempt)
            return self.config.straggler_delay * (1.0 + magnitude)
        return 0.0

    # -- DFS / replica decisions ---------------------------------------
    def dfs_failure(self, op: str, path: str, call_index: int) -> bool:
        """Does the ``call_index``-th ``op`` on ``path`` fail?"""
        if op == "read":
            rate = self.config.dfs_read_error_rate
        elif op in ("write", "append"):
            rate = self.config.dfs_write_error_rate
        else:
            return False
        return self._unit("dfs", op, path, call_index) < rate

    #: Wire faults :meth:`net_fault` rotates through (seeded second draw).
    NET_FAULT_KINDS = ("torn-frame", "stalled-connection", "connection-kill")

    def net_fault(self, request_index: int) -> Optional[str]:
        """Which socket fault (if any) hits the ``request_index``-th wire
        request — ``None``, or one of :data:`NET_FAULT_KINDS`."""
        if self._unit("net", request_index) >= self.config.net_fault_rate:
            return None
        kinds = self.NET_FAULT_KINDS
        draw = self._unit("net-kind", request_index)
        return kinds[int(draw * len(kinds)) % len(kinds)]

    def latency_spike(self, shard: int, replica: int, probe_index: int) -> float:
        """Chaos-clock seconds this replica probe is delayed by."""
        if (
            self._unit("latency", shard, replica, probe_index)
            < self.config.latency_rate
        ):
            return self.config.latency_spike
        return 0.0


class ChaosClock:
    """A manual monotonic clock: time moves only via :meth:`advance`.

    Injected wherever the production code reads time — circuit-breaker
    reset timeouts, retry backoff sleeps, request deadlines — so the
    harness controls exactly when "later" happens.  ``sleep`` advances
    instead of blocking, which also makes retry backoff free in tests.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigError("the chaos clock cannot move backwards")
        self.now += seconds

    def sleep(self, seconds: float) -> None:
        self.advance(max(0.0, seconds))


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded by the driver-side injector."""

    kind: str
    target: str
    detail: str = ""

    def as_dict(self) -> Dict[str, str]:
        return {"kind": self.kind, "target": self.target, "detail": self.detail}


class FaultInjector:
    """Wire a :class:`FaultSchedule` into live components and keep the log.

    The injector is strictly driver-side: it records the faults *it*
    injects (DFS errors, driver kills, corruption, replica crashes and
    latency spikes) as :class:`FaultEvent` entries and ``phase="fault"``
    spans.  Task-level faults live inside worker processes and are
    accounted by the runtime instead (retry counters, ``status="retried"``
    spans), so nothing is double-counted and nothing is lost under the
    process executor.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        tracer: Tracer = NOOP_TRACER,
        clock: Optional[ChaosClock] = None,
    ) -> None:
        self.schedule = schedule
        self.tracer = tracer
        self.clock = clock if clock is not None else ChaosClock()
        self.events: List[FaultEvent] = []
        self._dfs_calls: Dict[Tuple[str, str], int] = {}
        self._kills: Dict[Tuple[str, str], int] = {}

    # -- recording -----------------------------------------------------
    def record(self, kind: str, target: str, detail: str = "") -> None:
        self.events.append(FaultEvent(kind, target, detail))
        if self.tracer.enabled:
            self.tracer.add(
                f"{kind}:{target}", "fault",
                start=time.perf_counter(), duration=0.0,
                kind=kind, target=target, detail=detail,
            )

    def report(self) -> Dict[str, int]:
        """Injected-fault counts by kind."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # -- DFS faults ----------------------------------------------------
    def attach_dfs(self, dfs: InMemoryDFS) -> InMemoryDFS:
        """Subject a DFS to this schedule's read/write error rates (plus
        any scheduled kills); returns the same DFS for chaining."""
        dfs.fault_hook = self._dfs_hook
        return dfs

    def _dfs_hook(self, op: str, path: str) -> None:
        if (op, path) in self._kills:
            if self._kills[(op, path)] > 0:
                self._kills[(op, path)] -= 1
            else:
                del self._kills[(op, path)]
                self.record("driver-kill", f"{op}:{path}",
                            "pipeline driver killed at this operation")
                raise DFSError(
                    f"injected driver kill during {op} of {path!r} "
                    f"(chaos seed {self.schedule.seed})"
                )
        key = (op, path)
        index = self._dfs_calls.get(key, 0)
        self._dfs_calls[key] = index + 1
        if self.schedule.dfs_failure(op, path, index):
            self.record("dfs-error", f"{op}:{path}", f"call {index}")
            raise DFSError(
                f"injected {op} failure on {path!r} "
                f"(chaos seed {self.schedule.seed}, call {index})"
            )

    def schedule_kill(self, op: str, path: str, after: int = 0) -> None:
        """Arm a one-shot driver kill: the next ``op`` on ``path`` raises.

        This is how the harness murders a pipeline *mid-run* at a precise,
        replayable point — everything materialised before the kill
        survives on the DFS, which is exactly what ``resume`` recovers
        from.  ``after=N`` lets the first N matching operations through
        before firing, which is how the ingest drill tears a WAL batch:
        with ``after=1`` the batch's record append lands but its commit
        marker dies, leaving an uncommitted tail for replay to discard."""
        self._kills[(op, path)] = after

    def corrupt(self, dfs: InMemoryDFS, path: str) -> None:
        """Silently corrupt one DFS file (digest left stale) and log it."""
        dfs.corrupt(path)
        self.record("corruption", path,
                    "bit-flip in place; recorded digest now stale")

    # -- replica faults ------------------------------------------------
    def crash_replica(self, node, probes: Optional[int] = None) -> None:
        """Make a replica fail its next N probe contacts, then recover.

        Models a *flapping* node: liveness pings still pass, but the next
        ``probes`` probe attempts die mid-flight with
        :class:`ShardDownError` — enough consecutive failures to trip the
        replica's circuit breaker — after which the node serves normally
        again, so the breaker's half-open trial finds it healthy and it
        rejoins rotation.
        """
        budget = (
            probes if probes is not None
            else self.schedule.config.replica_crash_probes
        )
        state = {"left": budget}
        injector = self

        def hook(target) -> None:
            if state["left"] > 0:
                state["left"] -= 1
                injector.record(
                    "replica-crash", target.name,
                    f"{state['left']} injected failures remaining",
                )
                raise ShardDownError(
                    f"{target.name}: injected crash "
                    f"(chaos seed {injector.schedule.seed})"
                )

        node.fault_hook = hook

    def kill_replica(self, node) -> None:
        """Hard-kill a replica: dead until something rebuilds it.

        Unlike :meth:`crash_replica` this is not a flap — ``alive`` goes
        False and stays False, so liveness pings fail and the only way
        back into rotation is the control plane's rebuild + verified
        readmission (or an operator's ``restore_replica``).
        """
        node.fail()
        self.record("replica-kill", node.name,
                    "hard kill; alive=False until rebuilt")

    def corrupt_replica(self, node, fragment: Optional[int] = None) -> int:
        """Silently bit-rot one owned fragment of a replica's slice.

        The fragment's posting runs are wiped wholesale (record metadata
        left intact), so the replica keeps *answering* probes — just
        wrongly, missing every candidate that fragment would have
        produced.  Nothing on the serving path can notice: no exception,
        no breaker trip.  Only the anti-entropy scrubber's cross-replica
        digest comparison catches it.  The victim fragment is a seeded
        pick among the replica's non-empty owned fragments unless given
        explicitly; returns the fragment id.
        """
        from repro.service.columnar import FragmentPostings

        slice_ = node.slice
        if fragment is None:
            candidates = sorted(
                v for v in slice_.owned_fragments
                if len(slice_._postings[v])
            )
            if not candidates:
                raise ConfigError(
                    f"{node.name} has no non-empty fragment to corrupt"
                )
            draw = stable_hash((self.schedule.seed, "replica-rot", node.name))
            fragment = candidates[draw % len(candidates)]
        slice_._postings[fragment].seal()
        slice_._postings[fragment] = FragmentPostings()
        slice_._legacy_cache = None
        self.record("replica-rot", node.name,
                    f"fragment {fragment} postings silently wiped")
        return fragment

    def spike_replica(self, node) -> None:
        """Subject a replica's probes to seeded latency spikes.

        Spikes advance the chaos clock (not real time), so a router or
        service sharing this injector's clock sees its request deadlines
        overrun deterministically.
        """
        state = {"probe": 0}
        injector = self

        def hook(target) -> None:
            index = state["probe"]
            state["probe"] = index + 1
            delay = injector.schedule.latency_spike(
                target.shard_id, target.replica_id, index
            )
            if delay:
                injector.record(
                    "latency-spike", target.name, f"+{delay:.3f}s"
                )
                injector.clock.advance(delay)

        node.fault_hook = hook
