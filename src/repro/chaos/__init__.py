"""Deterministic chaos harness: seeded faults, verified recovery.

One seed fixes every fault the harness injects — task deaths, stragglers,
DFS errors, a driver kill, checkpoint corruption, replica flaps, latency
spikes, torn frames, stalled sockets and killed connections — and the
scenarios in :mod:`repro.chaos.harness` drive each layer
of the stack through them, checking the repo's robustness contract: the
run either recovers to **bit-identical** output, or fails with a typed
:class:`~repro.errors.ReproError` (or an explicitly flagged partial
result).  ``repro chaos --seed N`` runs the drill from the CLI and prints
the recovery report.

See :mod:`repro.chaos.schedule` for the fault model and
:mod:`repro.chaos.harness` for the scenarios.
"""

from repro.chaos.harness import (
    RecoveryReport,
    ScenarioReport,
    run_cluster_scenario,
    run_gateway_scenario,
    run_heal_scenario,
    run_ingest_scenario,
    run_join_scenario,
    run_net_scenario,
    run_recovery_report,
    run_search_scenario,
)
from repro.chaos.schedule import (
    ChaosClock,
    ChaosConfig,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
)

__all__ = [
    "ChaosClock",
    "ChaosConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "RecoveryReport",
    "ScenarioReport",
    "run_cluster_scenario",
    "run_gateway_scenario",
    "run_heal_scenario",
    "run_ingest_scenario",
    "run_join_scenario",
    "run_net_scenario",
    "run_recovery_report",
    "run_search_scenario",
]
