"""MinHash signatures for Jaccard estimation.

Classic construction: ``num_perm`` universal hash functions
``h_i(x) = (a_i·x + b_i) mod p``; the signature of a token set is the
per-function minimum over its token hashes.  For two sets,
``P[sig_i(A) = sig_i(B)] = J(A, B)``, so the fraction of agreeing
signature positions is an unbiased Jaccard estimator with standard error
``O(1/sqrt(num_perm))``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np

from repro.errors import ConfigError

#: A Mersenne prime comfortably above any token-universe size we hash into.
_PRIME = (1 << 61) - 1


class MinHasher:
    """Deterministic MinHash signer over string tokens.

    Tokens are mapped to integers with a stable per-instance vocabulary
    (insertion order), so signatures are reproducible for a given seed.
    """

    def __init__(self, num_perm: int = 128, seed: int = 0) -> None:
        if num_perm < 1:
            raise ConfigError("num_perm must be >= 1")
        self.num_perm = num_perm
        rng = np.random.default_rng(seed)
        self._a = rng.integers(1, _PRIME, size=num_perm, dtype=np.uint64)
        self._b = rng.integers(0, _PRIME, size=num_perm, dtype=np.uint64)
        self._token_ids: Dict[str, int] = {}

    def _token_id(self, token: str) -> int:
        identifier = self._token_ids.get(token)
        if identifier is None:
            identifier = len(self._token_ids) + 1
            self._token_ids[token] = identifier
        return identifier

    def signature(self, tokens: Iterable[str]) -> np.ndarray:
        """MinHash signature of a token set (uint64 array of ``num_perm``)."""
        ids = np.asarray(
            [self._token_id(token) for token in tokens], dtype=np.uint64
        )
        if ids.size == 0:
            return np.full(self.num_perm, np.iinfo(np.uint64).max, dtype=np.uint64)
        # (num_perm, n_tokens) hash matrix; min over tokens per permutation.
        with np.errstate(over="ignore"):
            hashed = (
                self._a[:, None] * ids[None, :] + self._b[:, None]
            ) % _PRIME
        return hashed.min(axis=1)


def estimate_jaccard(sig_a: Sequence, sig_b: Sequence) -> float:
    """Estimated Jaccard similarity: fraction of agreeing positions."""
    a = np.asarray(sig_a)
    b = np.asarray(sig_b)
    if a.shape != b.shape:
        raise ConfigError("signatures must come from the same MinHasher")
    if a.size == 0:
        return 0.0
    return float(np.count_nonzero(a == b) / a.size)
