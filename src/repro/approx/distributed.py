"""Distributed MinHash-LSH join on the MapReduce runtime.

The natural cluster deployment of the approximate join: band buckets are
the shuffle keys (like RIDPairsPPJoin's prefix tokens, but constant-count
per record — ``bands`` signatures each, independent of record length or
threshold), reducers emit candidate pairs per bucket, and a verification
job checks candidates against broadcast record data.

Pipeline:

1. **Banding job** — map: sign the record, emit ``((band, bucket_key),
   rid)``; reduce: all-pairs within a bucket (buckets are tiny for honest
   LSH parameters).
2. **Verify job** — dedup candidate pairs and verify exactly.

Compared to FS-Join this trades exactness (recall < 1) for a radically
smaller, skew-free shuffle; ``benchmarks/bench_ext_approx_distributed.py``
measures that trade.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.approx.lsh import pick_bands
from repro.approx.minhash import MinHasher
from repro.data.records import Record, RecordCollection
from repro.errors import ConfigError
from repro.mapreduce.job import JobContext, MapReduceJob
from repro.mapreduce.pipeline import PipelineResult
from repro.mapreduce.runtime import SimulatedCluster
from repro.similarity.functions import SimilarityFunction
from repro.similarity.thresholds import passes_threshold, similarity_from_overlap
from repro.similarity.verify import intersection_size


class _BandingJob(MapReduceJob):
    """Band-bucket keys → per-bucket candidate pairs."""

    name = "lsh-banding"

    def __init__(self, hasher: MinHasher, bands: int, rows: int) -> None:
        self.hasher = hasher
        self.bands = bands
        self.rows = rows

    def map(self, key: int, value: Record, emit, context: JobContext) -> None:
        if not value.tokens:
            return
        signature = self.hasher.signature(value.tokens)
        for band in range(self.bands):
            start = band * self.rows
            bucket = tuple(signature[start : start + self.rows].tolist())
            emit((band, bucket), value.rid)
        context.increment("lsh.map", "signatures", self.bands)

    def reduce(self, key, values: List[int], emit, context: JobContext) -> None:
        if len(values) < 2:
            return
        rids = sorted(values)
        context.increment("lsh.reduce", "bucket_pairs", len(rids) * (len(rids) - 1) // 2)
        for i, rid_a in enumerate(rids):
            for rid_b in rids[i + 1 :]:
                emit((rid_a, rid_b), 1)


class _VerifyCandidatesJob(MapReduceJob):
    """Dedup candidates and verify against broadcast token data."""

    name = "lsh-verify"

    def __init__(
        self,
        theta: float,
        func: SimilarityFunction,
        tokens_by_rid: Dict[int, frozenset],
    ) -> None:
        self.theta = theta
        self.func = SimilarityFunction(func)
        self.tokens_by_rid = tokens_by_rid

    def combine(self, key, values, context: JobContext):
        return [(key, 1)]

    def reduce(self, key, values, emit, context: JobContext) -> None:
        rid_a, rid_b = key
        tokens_a = self.tokens_by_rid[rid_a]
        tokens_b = self.tokens_by_rid[rid_b]
        common = intersection_size(tokens_a, tokens_b)
        context.increment("lsh.verify", "candidates")
        if passes_threshold(self.func, self.theta, common, len(tokens_a), len(tokens_b)):
            emit(
                key,
                similarity_from_overlap(
                    self.func, common, len(tokens_a), len(tokens_b)
                ),
            )


class DistributedLSHJoin:
    """Approximate distributed self-join: banding job + verification job."""

    algorithm_name = "Distributed-LSH"

    def __init__(
        self,
        theta: float,
        func: SimilarityFunction = SimilarityFunction.JACCARD,
        cluster: Optional[SimulatedCluster] = None,
        num_perm: int = 128,
        bands: Optional[int] = None,
        rows: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 < theta <= 1.0:
            raise ConfigError("theta must be in (0, 1]")
        if (bands is None) != (rows is None):
            raise ConfigError("pass both bands and rows, or neither")
        if bands is None:
            bands, rows = pick_bands(num_perm, theta)
        if bands * rows > num_perm:
            raise ConfigError("bands * rows must not exceed num_perm")
        self.theta = theta
        self.func = SimilarityFunction(func)
        self.cluster = cluster or SimulatedCluster()
        self.num_perm = num_perm
        self.bands = bands
        self.rows = rows
        self.seed = seed

    def run(self, records: RecordCollection) -> PipelineResult:
        """Approximate results (verified: precision 1.0, recall < 1)."""
        hasher = MinHasher(self.num_perm, seed=self.seed)
        banding = _BandingJob(hasher, self.bands, self.rows)
        banding_result = self.cluster.run_job(
            banding, [(record.rid, record) for record in records]
        )
        tokens_by_rid = {record.rid: record.token_set() for record in records}
        verify = _VerifyCandidatesJob(self.theta, self.func, tokens_by_rid)
        verify_result = self.cluster.run_job(verify, banding_result.output)
        return PipelineResult(
            algorithm=self.algorithm_name,
            pairs=verify_result.output,
            job_results=[banding_result, verify_result],
        )
