"""Recall/precision scoring of approximate joins against exact results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

Pair = Tuple[int, int]


@dataclass(frozen=True)
class ApproxQuality:
    """Set-level quality of an approximate result against the exact one."""

    true_pairs: int
    reported_pairs: int
    correct_pairs: int

    @property
    def recall(self) -> float:
        return self.correct_pairs / self.true_pairs if self.true_pairs else 1.0

    @property
    def precision(self) -> float:
        return (
            self.correct_pairs / self.reported_pairs if self.reported_pairs else 1.0
        )

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def as_row(self) -> dict:
        return {
            "true": self.true_pairs,
            "reported": self.reported_pairs,
            "recall": round(self.recall, 4),
            "precision": round(self.precision, 4),
            "f1": round(self.f1, 4),
        }


def evaluate_approximate(
    reported: Iterable[Pair], truth: Iterable[Pair]
) -> ApproxQuality:
    """Score reported id pairs against the exact join's id pairs."""
    reported_set = set(reported)
    truth_set = set(truth)
    return ApproxQuality(
        true_pairs=len(truth_set),
        reported_pairs=len(reported_set),
        correct_pairs=len(reported_set & truth_set),
    )
