"""Approximate similarity joins (the paper's second stated future work).

The conclusion of the paper names "approximate approaches" as planned
work.  This subpackage implements the standard construction:

* :mod:`repro.approx.minhash` — MinHash signatures whose per-permutation
  collision probability equals the pair's Jaccard similarity;
* :mod:`repro.approx.lsh` — banded locality-sensitive hashing over those
  signatures, turning the join into bucket lookups with a tunable
  recall/cost trade-off, plus optional exact verification of the candidate
  pairs (precision 1.0, recall < 1.0);
* :mod:`repro.approx.quality` — recall/precision scoring against an exact
  join, used by ``benchmarks/bench_ext_approx.py``.
"""

from repro.approx.minhash import MinHasher, estimate_jaccard
from repro.approx.lsh import LSHJoin, pick_bands
from repro.approx.distributed import DistributedLSHJoin
from repro.approx.quality import ApproxQuality, evaluate_approximate

__all__ = [
    "MinHasher",
    "estimate_jaccard",
    "LSHJoin",
    "DistributedLSHJoin",
    "pick_bands",
    "ApproxQuality",
    "evaluate_approximate",
]
