"""LSH banding over MinHash signatures.

Split each ``num_perm``-long signature into ``bands`` bands of ``rows``
rows; records colliding on any whole band become candidates.  A pair with
Jaccard ``s`` collides with probability ``1 − (1 − s^rows)^bands`` — the
classic S-curve whose inflection sits near ``(1/bands)^(1/rows)``, which is
how :func:`pick_bands` targets a threshold.

``LSHJoin`` optionally verifies candidates exactly (precision 1.0; recall
is whatever the S-curve gives), which mirrors how an approximate
distributed join would be deployed: LSH for candidate generation, one
verification pass for correctness of everything reported.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.approx.minhash import MinHasher, estimate_jaccard
from repro.data.records import RecordCollection
from repro.errors import ConfigError
from repro.similarity.functions import jaccard
from repro.similarity.thresholds import EPS


def pick_bands(num_perm: int, theta: float) -> Tuple[int, int]:
    """Choose ``(bands, rows)`` with ``bands·rows ≤ num_perm`` whose S-curve
    inflection ``(1/bands)^(1/rows)`` lies closest to ``theta``."""
    if not 0.0 < theta <= 1.0:
        raise ConfigError("theta must be in (0, 1]")
    best: Optional[Tuple[float, int, int]] = None
    for rows in range(1, num_perm + 1):
        bands = num_perm // rows
        if bands < 1:
            break
        inflection = (1.0 / bands) ** (1.0 / rows)
        distance = abs(inflection - theta)
        if best is None or distance < best[0]:
            best = (distance, bands, rows)
    assert best is not None
    return best[1], best[2]


class LSHJoin:
    """Approximate self-join: MinHash + banding (+ optional verification)."""

    algorithm_name = "MinHash-LSH"

    def __init__(
        self,
        theta: float,
        num_perm: int = 128,
        bands: Optional[int] = None,
        rows: Optional[int] = None,
        seed: int = 0,
        verify: bool = True,
    ) -> None:
        if not 0.0 < theta <= 1.0:
            raise ConfigError("theta must be in (0, 1]")
        if (bands is None) != (rows is None):
            raise ConfigError("pass both bands and rows, or neither")
        if bands is None:
            bands, rows = pick_bands(num_perm, theta)
        if bands * rows > num_perm:
            raise ConfigError("bands * rows must not exceed num_perm")
        self.theta = theta
        self.num_perm = num_perm
        self.bands = bands
        self.rows = rows
        self.seed = seed
        self.verify = verify

    def candidate_pairs(self, records: RecordCollection) -> set:
        """Unverified candidate id pairs from band-bucket collisions.

        Empty records are skipped: they share the sentinel signature and
        would otherwise form one giant spurious bucket clique.
        """
        hasher = MinHasher(self.num_perm, seed=self.seed)
        signatures = {
            record.rid: hasher.signature(record.tokens)
            for record in records
            if record.tokens
        }
        candidates: set = set()
        for band in range(self.bands):
            start = band * self.rows
            buckets: Dict[Tuple, List[int]] = {}
            for rid, signature in signatures.items():
                key = tuple(signature[start : start + self.rows].tolist())
                buckets.setdefault(key, []).append(rid)
            for bucket in buckets.values():
                if len(bucket) < 2:
                    continue
                bucket.sort()
                for i, rid_a in enumerate(bucket):
                    for rid_b in bucket[i + 1 :]:
                        candidates.add((rid_a, rid_b))
        return candidates

    def run(self, records: RecordCollection) -> Dict[Tuple[int, int], float]:
        """Return approximate join results ``(rid_small, rid_large) → score``.

        With ``verify=True`` scores are exact Jaccard and every reported
        pair truly passes θ; with ``verify=False`` scores are signature
        estimates (cheaper, but both false positives and estimation noise
        pass through).
        """
        candidates = self.candidate_pairs(records)
        results: Dict[Tuple[int, int], float] = {}
        if self.verify:
            for rid_a, rid_b in candidates:
                score = jaccard(
                    records.get(rid_a).token_set(), records.get(rid_b).token_set()
                )
                if score + EPS >= self.theta:
                    results[(rid_a, rid_b)] = score
        else:
            hasher = MinHasher(self.num_perm, seed=self.seed)
            signatures = {
                record.rid: hasher.signature(record.tokens) for record in records
            }
            for rid_a, rid_b in candidates:
                estimate = estimate_jaccard(signatures[rid_a], signatures[rid_b])
                if estimate + EPS >= self.theta:
                    results[(rid_a, rid_b)] = estimate
        return results
