"""A miniature Spark-style RDD engine, plus FS-Join expressed on it.

The paper's conclusion names porting FS-Join to Spark as future work; this
subpackage delivers that port on a self-contained engine with the core RDD
semantics:

* lazy, lineage-based datasets (:class:`~repro.rdd.rdd.RDD`) — narrow
  transformations compute per partition, wide transformations introduce a
  hash shuffle;
* a driver context (:class:`~repro.rdd.context.MiniSparkContext`) that
  tracks shuffle volume and stage counts, mirroring what the MapReduce
  runtime measures;
* :func:`repro.rdd.similarity.fsjoin_rdd` — the full FS-Join pipeline
  (ordering → vertical/horizontal partitioning → fragment joins → count
  aggregation → verification) as an RDD program, reusing the exact same
  core operators as the MapReduce version, so both implementations are
  equivalence-tested against each other.
"""

from repro.rdd.context import MiniSparkContext, ShuffleMetrics
from repro.rdd.rdd import RDD
from repro.rdd.similarity import fsjoin_rdd

__all__ = ["MiniSparkContext", "ShuffleMetrics", "RDD", "fsjoin_rdd"]
