"""FS-Join expressed as an RDD program (the paper's Spark future work).

The pipeline mirrors the three MapReduce jobs one-to-one and reuses the
exact same core operators (pivot selection, vertical partitioner, filter
battery, fragment joins, threshold algebra), so the two implementations
can be equivalence-tested against each other:

1. token frequencies via ``flat_map`` + ``reduce_by_key`` → global ordering
   (collected at the driver, like the broadcast in Algorithm 1's SetUp);
2. segments via ``flat_map`` keyed by ``(horizontal, vertical)`` partition,
   fragments via ``group_by_key``, partial counts via the shared
   ``join_fragment``;
3. per-pair aggregation via ``reduce_by_key`` + threshold ``filter``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.config import FSJoinConfig
from repro.core.horizontal import build_horizontal_plan
from repro.core.joins import join_fragment
from repro.core.ordering import GlobalOrder
from repro.core.partitioning import VerticalPartitioner
from repro.core.pivots import select_pivots
from repro.data.records import RecordCollection
from repro.rdd.context import MiniSparkContext
from repro.similarity.thresholds import (
    passes_threshold,
    similarity_from_overlap,
)

PairScores = Dict[Tuple[int, int], float]


def fsjoin_rdd(
    ctx: MiniSparkContext,
    records: RecordCollection,
    config: FSJoinConfig,
) -> PairScores:
    """Self-join ``records``; returns ``(rid_small, rid_large) → score``."""
    base = ctx.parallelize(
        [(record.rid, record.tokens) for record in records]
    ).cache()

    # Stage 1: global ordering (driver-side broadcast, as in the paper).
    frequencies = (
        base.flat_map(lambda kv: ((token, 1) for token in kv[1]))
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    )
    order = GlobalOrder(frequencies)
    cuts = select_pivots(
        order.rank_frequencies,
        config.n_vertical,
        method=config.pivot_method,
        seed=config.pivot_seed,
    )
    partitioner = VerticalPartitioner(cuts)
    horizontal = build_horizontal_plan(
        [record.size for record in records],
        config.n_horizontal,
        config.theta,
        config.func,
    )
    rank_of = {order.token(rank): rank for rank in range(order.vocab_size)}

    # Stage 2: vertical (+ horizontal) partitioning into fragments.
    def to_segments(kv):
        rid, tokens = kv
        ranks = tuple(sorted(rank_of[token] for token in tokens))
        if not ranks:
            return
        segments = partitioner.split(rid, ranks)
        for h in horizontal.partitions_of(len(ranks)):
            for v, segment in segments:
                yield ((h, v), segment)

    fragments = base.flat_map(to_segments).group_by_key(
        n_partitions=max(1, ctx.default_parallelism)
    )

    # Stage 3: per-fragment joins → partial counts.
    def join_one_fragment(kv):
        (h, _v), segments = kv
        if horizontal.is_boundary(h):
            pivot = horizontal.boundary_pivot(h)

            def pair_allowed(seg_a, seg_b):
                len_a, len_b = seg_a.info.str_len, seg_b.info.str_len
                low, high = (len_a, len_b) if len_a <= len_b else (len_b, len_a)
                return low < pivot <= high

        else:
            pair_allowed = None
        emitted = []

        def emit_pair(rid_s, len_s, rid_t, len_t, common):
            emitted.append(((rid_s, rid_t), (common, len_s, len_t)))

        join_fragment(
            list(segments),
            method=config.join_method,
            theta=config.theta,
            func=config.func,
            filter_config=config.filters,
            emit_pair=emit_pair,
            pair_allowed=pair_allowed,
        )
        return emitted

    partial_counts = fragments.flat_map(join_one_fragment)

    # Stage 4: aggregate counts, verify without the original records.
    def merge_counts(a, b):
        return (a[0] + b[0], a[1], a[2])

    results = (
        partial_counts.reduce_by_key(merge_counts)
        .filter(
            lambda kv: passes_threshold(
                config.func, config.theta, kv[1][0], kv[1][1], kv[1][2]
            )
        )
        .map(
            lambda kv: (
                kv[0],
                similarity_from_overlap(config.func, kv[1][0], kv[1][1], kv[1][2]),
            )
        )
    )
    return results.collect_as_map()
