"""Lazy, lineage-based RDDs.

Narrow transformations (``map``, ``filter``, ``flat_map``, …) build a chain
of per-partition compute functions; wide transformations
(``reduce_by_key``, ``group_by_key``, ``join``, ``partition_by``,
``sort_by``, ``distinct``) insert a hash shuffle: the parent is fully
evaluated, its pairs are routed by :func:`~repro.mapreduce.shuffle.stable_hash`
into the child's partitions, and the context's shuffle metrics are charged
with the moved records/bytes.  Shuffle outputs are cached per RDD, so a
lineage is never shuffled twice (Spark's stage reuse, simplified).
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ConfigError, DataError
from repro.mapreduce.shuffle import stable_hash
from repro.mapreduce.sizer import estimate_pair_size, estimate_size

Pair = Tuple[Any, Any]


class RDD:
    """Base class: a lazily evaluated, partitioned dataset."""

    def __init__(self, context, n_partitions: int) -> None:
        self.context = context
        self.n_partitions = n_partitions

    # -- to be provided by subclasses -----------------------------------
    def compute(self, split: int) -> Iterator:
        """Yield the elements of one partition."""
        raise NotImplementedError

    # -- narrow transformations ------------------------------------------
    def map_partitions(self, fn: Callable[[Iterator], Iterable]) -> "RDD":
        """Apply ``fn`` to each partition's iterator."""
        return MapPartitionsRDD(self, fn)

    def map(self, fn: Callable[[Any], Any]) -> "RDD":
        return self.map_partitions(lambda items: (fn(item) for item in items))

    def flat_map(self, fn: Callable[[Any], Iterable]) -> "RDD":
        return self.map_partitions(
            lambda items: (out for item in items for out in fn(item))
        )

    def filter(self, predicate: Callable[[Any], bool]) -> "RDD":
        return self.map_partitions(
            lambda items: (item for item in items if predicate(item))
        )

    def key_by(self, fn: Callable[[Any], Any]) -> "RDD":
        """Turn elements into ``(fn(x), x)`` pairs."""
        return self.map(lambda item: (fn(item), item))

    def map_values(self, fn: Callable[[Any], Any]) -> "RDD":
        """Apply ``fn`` to the value of each key/value pair."""
        return self.map(lambda pair: (pair[0], fn(pair[1])))

    def union(self, other: "RDD") -> "RDD":
        if other.context is not self.context:
            raise ConfigError("cannot union RDDs from different contexts")
        return UnionRDD(self, other)

    # -- wide transformations ---------------------------------------------
    def partition_by(self, n_partitions: Optional[int] = None) -> "RDD":
        """Hash-partition key/value pairs by key."""
        return ShuffledRDD(self, self._resolve(n_partitions), combiner=None)

    def combine_by_key(
        self,
        create: Callable[[Any], Any],
        merge_value: Callable[[Any, Any], Any],
        merge_combiners: Callable[[Any, Any], Any],
        n_partitions: Optional[int] = None,
    ) -> "RDD":
        """The general aggregation primitive (Spark's combineByKey)."""
        shuffled = ShuffledRDD(
            self,
            self._resolve(n_partitions),
            combiner=(create, merge_value, merge_combiners),
        )
        return shuffled

    def reduce_by_key(
        self, fn: Callable[[Any, Any], Any], n_partitions: Optional[int] = None
    ) -> "RDD":
        """Merge values per key with ``fn`` (map-side combining included)."""
        return self.combine_by_key(lambda v: v, fn, fn, n_partitions)

    def group_by_key(self, n_partitions: Optional[int] = None) -> "RDD":
        """Collect all values per key into a list."""
        return self.combine_by_key(
            lambda v: [v],
            lambda acc, v: (acc.append(v) or acc),
            lambda a, b: a + b,
            n_partitions,
        )

    def distinct(self, n_partitions: Optional[int] = None) -> "RDD":
        return (
            self.map(lambda item: (item, None))
            .reduce_by_key(lambda a, b: a, n_partitions)
            .map(lambda pair: pair[0])
        )

    def join(self, other: "RDD", n_partitions: Optional[int] = None) -> "RDD":
        """Inner join on keys: ``(k, (v_self, v_other))``."""
        return self.cogroup(other, n_partitions).flat_map(
            lambda kv: (
                (kv[0], (left, right))
                for left in kv[1][0]
                for right in kv[1][1]
            )
        )

    def cogroup(self, other: "RDD", n_partitions: Optional[int] = None) -> "RDD":
        """Group both RDDs' values per key: ``(k, (values_self, values_other))``."""
        tagged = self.map(lambda kv: (kv[0], (0, kv[1]))).union(
            other.map(lambda kv: (kv[0], (1, kv[1])))
        )
        def split_sides(tagged_values):
            sides: Tuple[List, List] = ([], [])
            for side, value in tagged_values:
                sides[side].append(value)
            return sides
        return tagged.group_by_key(n_partitions).map_values(split_sides)

    def sort_by(
        self,
        key_fn: Callable[[Any], Any],
        ascending: bool = True,
        n_partitions: Optional[int] = None,
    ) -> "RDD":
        """Globally sort (range-partitioned into ``n_partitions`` splits)."""
        return SortedRDD(self, key_fn, ascending, self._resolve(n_partitions))

    # -- persistence ------------------------------------------------------
    def cache(self) -> "RDD":
        """Materialize partitions on first computation and reuse them."""
        return CachedRDD(self)

    # -- actions ------------------------------------------------------------
    def collect(self) -> List:
        self.context.metrics.stages += 1
        return [item for split in range(self.n_partitions) for item in self.compute(split)]

    def count(self) -> int:
        return len(self.collect())

    def first(self):
        taken = self.take(1)
        if not taken:
            raise DataError("first() on an empty RDD")
        return taken[0]

    def take(self, n: int) -> List:
        result: List = []
        self.context.metrics.stages += 1
        for split in range(self.n_partitions):
            for item in self.compute(split):
                result.append(item)
                if len(result) >= n:
                    return result
        return result

    def reduce(self, fn: Callable[[Any, Any], Any]):
        items = self.collect()
        if not items:
            raise DataError("reduce() on an empty RDD")
        return functools.reduce(fn, items)

    def count_by_key(self) -> Dict[Any, int]:
        counts: Dict[Any, int] = {}
        for key, _ in self.collect():
            counts[key] = counts.get(key, 0) + 1
        return counts

    def collect_as_map(self) -> Dict:
        return dict(self.collect())

    # ----------------------------------------------------------------------
    def _resolve(self, n_partitions: Optional[int]) -> int:
        n = n_partitions or self.n_partitions
        if n < 1:
            raise ConfigError("n_partitions must be >= 1")
        return n


class ParallelCollectionRDD(RDD):
    """Source RDD over a local sequence, split contiguously."""

    def __init__(self, context, items, n_partitions: int) -> None:
        super().__init__(context, n_partitions)
        self._items = items

    def compute(self, split: int) -> Iterator:
        total = len(self._items)
        base, extra = divmod(total, self.n_partitions)
        start = split * base + min(split, extra)
        length = base + (1 if split < extra else 0)
        return iter(self._items[start : start + length])


class MapPartitionsRDD(RDD):
    """Narrow transformation applied per parent partition."""

    def __init__(self, parent: RDD, fn: Callable[[Iterator], Iterable]) -> None:
        super().__init__(parent.context, parent.n_partitions)
        self._parent = parent
        self._fn = fn

    def compute(self, split: int) -> Iterator:
        return iter(self._fn(self._parent.compute(split)))


class UnionRDD(RDD):
    """Concatenation of two RDDs' partition lists (no shuffle)."""

    def __init__(self, left: RDD, right: RDD) -> None:
        super().__init__(left.context, left.n_partitions + right.n_partitions)
        self._left = left
        self._right = right

    def compute(self, split: int) -> Iterator:
        if split < self._left.n_partitions:
            return self._left.compute(split)
        return self._right.compute(split - self._left.n_partitions)


class ShuffledRDD(RDD):
    """Hash shuffle of key/value pairs, with optional map-side combining.

    ``combiner`` is ``(create, merge_value, merge_combiners)`` or ``None``
    (plain repartition, values kept as-is in arrival order).
    """

    def __init__(self, parent: RDD, n_partitions: int, combiner) -> None:
        super().__init__(parent.context, n_partitions)
        self._parent = parent
        self._combiner = combiner
        self._blocks: Optional[List[List[Pair]]] = None

    def _materialize(self) -> List[List[Pair]]:
        if self._blocks is not None:
            return self._blocks
        metrics = self.context.metrics
        metrics.stages += 1
        create = merge_value = merge_combiners = None
        if self._combiner is not None:
            create, merge_value, merge_combiners = self._combiner

        # Map side: per parent partition, optionally pre-combine, then
        # route to reduce blocks while charging the shuffle.
        staged: List[Dict[Any, Any]] = [dict() for _ in range(self.n_partitions)]
        plain: List[List[Pair]] = [[] for _ in range(self.n_partitions)]
        shuffle_records = 0
        shuffle_bytes = 0
        for split in range(self._parent.n_partitions):
            if self._combiner is not None:
                local: Dict[Any, Any] = {}
                for key, value in self._parent.compute(split):
                    if key in local:
                        local[key] = merge_value(local[key], value)
                    else:
                        local[key] = create(value)
                for key, combined in local.items():
                    shuffle_records += 1
                    shuffle_bytes += estimate_pair_size(key, combined)
                    target = staged[stable_hash(key) % self.n_partitions]
                    if key in target:
                        target[key] = merge_combiners(target[key], combined)
                    else:
                        target[key] = combined
            else:
                for key, value in self._parent.compute(split):
                    shuffle_records += 1
                    shuffle_bytes += estimate_pair_size(key, value)
                    plain[stable_hash(key) % self.n_partitions].append((key, value))
        metrics.record_shuffle(shuffle_records, shuffle_bytes)

        if self._combiner is not None:
            self._blocks = [sorted(block.items(), key=_key_order) for block in staged]
        else:
            self._blocks = plain
        return self._blocks

    def compute(self, split: int) -> Iterator:
        return iter(self._materialize()[split])


class SortedRDD(RDD):
    """Global sort: full shuffle into contiguous ordered ranges."""

    def __init__(self, parent: RDD, key_fn, ascending: bool, n_partitions: int) -> None:
        super().__init__(parent.context, n_partitions)
        self._parent = parent
        self._key_fn = key_fn
        self._ascending = ascending
        self._blocks: Optional[List[List]] = None

    def _materialize(self) -> List[List]:
        if self._blocks is not None:
            return self._blocks
        metrics = self.context.metrics
        metrics.stages += 1
        items = [
            item
            for split in range(self._parent.n_partitions)
            for item in self._parent.compute(split)
        ]
        metrics.record_shuffle(
            len(items), sum(estimate_size(item) for item in items)
        )
        items.sort(key=self._key_fn, reverse=not self._ascending)
        base, extra = divmod(len(items), self.n_partitions)
        blocks = []
        start = 0
        for split in range(self.n_partitions):
            length = base + (1 if split < extra else 0)
            blocks.append(items[start : start + length])
            start += length
        self._blocks = blocks
        return blocks

    def compute(self, split: int) -> Iterator:
        return iter(self._materialize()[split])


class CachedRDD(RDD):
    """Materializes parent partitions once and serves them from memory."""

    def __init__(self, parent: RDD) -> None:
        super().__init__(parent.context, parent.n_partitions)
        self._parent = parent
        self._cache: Dict[int, List] = {}

    def compute(self, split: int) -> Iterator:
        if split not in self._cache:
            self._cache[split] = list(self._parent.compute(split))
        return iter(self._cache[split])


def _key_order(pair: Pair):
    """Deterministic ordering of combined keys within a block."""
    key = pair[0]
    if isinstance(key, (int, float, str, tuple)):
        return (0, key)
    return (1, repr(key))
