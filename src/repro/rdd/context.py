"""The driver context for the mini RDD engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.errors import ConfigError


@dataclass
class ShuffleMetrics:
    """Aggregate shuffle accounting across one context's jobs.

    The Spark port is compared against the MapReduce implementation on
    these numbers (shuffle volume is the scale-free cost in both worlds).
    """

    shuffles: int = 0
    shuffle_records: int = 0
    shuffle_bytes: int = 0
    stages: int = 0
    per_shuffle_records: List[int] = field(default_factory=list)

    def record_shuffle(self, records: int, size_bytes: int) -> None:
        self.shuffles += 1
        self.shuffle_records += records
        self.shuffle_bytes += size_bytes
        self.per_shuffle_records.append(records)


class MiniSparkContext:
    """Creates source RDDs and owns the execution metrics.

    Example:
        >>> ctx = MiniSparkContext(default_parallelism=4)
        >>> ctx.parallelize(range(10)).map(lambda x: x * 2).count()
        10
    """

    def __init__(self, default_parallelism: int = 8) -> None:
        if default_parallelism < 1:
            raise ConfigError("default_parallelism must be >= 1")
        self.default_parallelism = default_parallelism
        self.metrics = ShuffleMetrics()

    def parallelize(
        self, data: Iterable, n_partitions: Optional[int] = None
    ) -> "RDD":
        """Distribute a local collection into a source RDD."""
        from repro.rdd.rdd import ParallelCollectionRDD

        if n_partitions is not None and n_partitions < 1:
            raise ConfigError("n_partitions must be >= 1")
        items: Sequence = list(data)
        n = n_partitions or self.default_parallelism
        n = max(1, min(n, len(items))) if items else 1
        return ParallelCollectionRDD(self, items, n)
