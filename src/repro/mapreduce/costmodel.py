"""Analytic cluster time model.

Converts the measured per-task metrics of a job into simulated wall-clock
time on a cluster of ``N`` workers.  The model mirrors how Hadoop actually
spends time:

* a fixed per-job startup latency (job submission, container launch);
* the map phase: measured task compute times scheduled LPT-greedily onto
  ``workers × map_slots`` parallel lanes;
* the shuffle: total shuffle bytes over the cluster's aggregate bandwidth;
* the reduce phase: LPT schedule of measured reduce-task times — this is
  where skew hurts: one giant reduce task bounds the makespan no matter how
  many workers exist (the paper's load-balancing argument);
* output write to the DFS.

The paper's Lemma 5 cost expression is implemented alongside in
:func:`lemma5_cost` for the cost-analysis benchmark.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.errors import ConfigError
from repro.mapreduce.metrics import JobMetrics
from repro.mapreduce.runtime import ClusterSpec


@dataclass(frozen=True)
class CostModel:
    """Constants of the time model.

    The defaults are calibrated to feel like a small Hadoop-era cluster so
    that fixed job latency matters (MassJoin pays it four times per join),
    but any relative comparison is insensitive to the absolute values.
    """

    job_startup_s: float = 6.0
    task_startup_s: float = 0.15
    shuffle_bandwidth_per_worker: float = 40e6  # bytes/s
    dfs_bandwidth_per_worker: float = 80e6  # bytes/s
    compute_scale: float = 1.0  # measured python seconds → cluster seconds

    def __post_init__(self) -> None:
        if self.shuffle_bandwidth_per_worker <= 0 or self.dfs_bandwidth_per_worker <= 0:
            raise ConfigError("bandwidths must be positive")


@dataclass(frozen=True)
class PhaseTimes:
    """Simulated seconds per phase of one job."""

    startup_s: float
    map_s: float
    shuffle_s: float
    reduce_s: float
    output_s: float

    @property
    def total_s(self) -> float:
        return self.startup_s + self.map_s + self.shuffle_s + self.reduce_s + self.output_s

    def __add__(self, other: "PhaseTimes") -> "PhaseTimes":
        return PhaseTimes(
            self.startup_s + other.startup_s,
            self.map_s + other.map_s,
            self.shuffle_s + other.shuffle_s,
            self.reduce_s + other.reduce_s,
            self.output_s + other.output_s,
        )


ZERO_TIMES = PhaseTimes(0.0, 0.0, 0.0, 0.0, 0.0)


def lpt_makespan(costs: Iterable[float], lanes: int) -> float:
    """Longest-processing-time-first makespan of ``costs`` on ``lanes`` machines."""
    if lanes < 1:
        raise ConfigError("lanes must be >= 1")
    heap: List[float] = [0.0] * lanes
    for cost in sorted(costs, reverse=True):
        lightest = heapq.heappop(heap)
        heapq.heappush(heap, lightest + cost)
    return max(heap)


def simulate_job_time(
    metrics: JobMetrics,
    cluster: ClusterSpec,
    model: CostModel = CostModel(),
) -> PhaseTimes:
    """Simulated wall-clock of one job on ``cluster`` under ``model``."""
    map_costs = [
        task.compute_seconds * model.compute_scale + model.task_startup_s
        for task in metrics.map_tasks
    ]
    reduce_costs = [
        task.compute_seconds * model.compute_scale + model.task_startup_s
        for task in metrics.reduce_tasks
    ]
    map_lanes = cluster.workers * cluster.map_slots
    reduce_lanes = cluster.workers * cluster.reduce_slots
    shuffle_s = metrics.shuffle_bytes / (
        model.shuffle_bandwidth_per_worker * cluster.workers
    )
    output_s = metrics.output_bytes / (
        model.dfs_bandwidth_per_worker * cluster.workers
    )
    return PhaseTimes(
        startup_s=model.job_startup_s,
        map_s=lpt_makespan(map_costs, map_lanes),
        shuffle_s=shuffle_s,
        reduce_s=lpt_makespan(reduce_costs, reduce_lanes),
        output_s=output_s,
    )


def simulate_pipeline_time(
    all_metrics: Sequence[JobMetrics],
    cluster: ClusterSpec,
    model: CostModel = CostModel(),
) -> PhaseTimes:
    """Sum of simulated job times for a multi-job pipeline."""
    total = ZERO_TIMES
    for metrics in all_metrics:
        total = total + simulate_job_time(metrics, cluster, model)
    return total


def lemma5_cost(
    record_sizes: Sequence[int],
    n_partitions: int,
    token_probability: float,
    candidate_fraction: float,
    result_fraction: float,
    c_map: float = 1.0,
    c_shuffle: float = 1.0,
    c_reduce: float = 1.0,
    c_output: float = 1.0,
) -> float:
    """The paper's Lemma 5 analytic cost of FS-Join (filter + verification).

    ``Σ|s_i|·C_m + Σ|s_i|·C_s + N·(M·P/N)²·(Σ|s_i|/M)·C_r
    + N·α·(M·P/N)²·(C_m + C_s + C_r + C_o) + α·β·(M·P/N)²·C_o``

    where ``M`` is the record count, ``N`` the partition count, ``P`` the
    probability a record contributes a segment to a fragment, ``α`` the
    candidate fraction and ``β`` the result-over-candidate fraction.
    """
    if n_partitions < 1:
        raise ConfigError("n_partitions must be >= 1")
    m = len(record_sizes)
    total_tokens = float(sum(record_sizes))
    avg_size = total_tokens / m if m else 0.0
    expected_fragment = (m * token_probability) / n_partitions
    pairs_per_fragment = expected_fragment**2
    first_job = (
        total_tokens * c_map
        + total_tokens * c_shuffle
        + n_partitions * pairs_per_fragment * avg_size * c_reduce
        + n_partitions * pairs_per_fragment * candidate_fraction * c_output
    )
    second_job = n_partitions * pairs_per_fragment * candidate_fraction * (
        c_map + c_shuffle + c_reduce
    ) + pairs_per_fragment * candidate_fraction * result_fraction * c_output
    return first_job + second_job
