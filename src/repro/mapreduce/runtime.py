"""The MapReduce execution engine.

:class:`SimulatedCluster` executes a :class:`~repro.mapreduce.job.MapReduceJob`
with full Hadoop semantics — input splits, per-task setup, map, optional
combiner, hash (or custom) partitioning, sort/group, reduce — deterministically.
Parallelism is both *accounted for* (every task's compute time is measured
with a monotonic clock and :mod:`repro.mapreduce.costmodel` converts those
observations into simulated cluster wall-clock for any worker count) and,
since the executor layer, optionally *exercised*: each phase's tasks are
self-contained picklable closures dispatched through a pluggable
:class:`~repro.mapreduce.executors.TaskExecutor` backend (serial, thread
pool, or process pool).  Task outputs are merged in task-index order, so
results and counters are bit-identical across backends.

The paper's cluster (Section VI-A) is 10 workers with 3 reduce slots each
and "the number of reduce tasks set to be three times the number of nodes";
:class:`ClusterSpec` defaults match that.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, ExecutionError
from repro.mapreduce.counters import Counters
from repro.mapreduce.executors import ExecutorKind, TaskExecutor, create_executor
from repro.mapreduce.job import JobContext, MapReduceJob
from repro.mapreduce.metrics import JobMetrics, TaskMetrics
from repro.mapreduce.shuffle import group_sort_key
from repro.mapreduce.sizer import estimate_pair_size
from repro.observability.tracer import NOOP_TRACER, Span, Tracer

Pair = Tuple[Any, Any]

#: Fault-injection hook: ``(phase, task_id, attempt) -> should_fail``.
FailureInjector = Callable[[str, int, int], bool]

#: Straggler hook: ``(phase, task_id, attempt) -> simulated extra seconds``.
#: The delay is charged to the attempt's ``compute_seconds`` (it models a
#: slow node, not slow work) and is what speculative execution races against.
StragglerInjector = Callable[[str, int, int], float]

#: Attempt-id offset for speculative backup attempts: the backup of attempt
#: ``k`` is presented to the injectors as attempt ``k + 1000``, so fault
#: schedules can target originals and backups independently while every
#: decision stays a pure function of ``(phase, task_id, attempt)``.
SPECULATIVE_ATTEMPT_OFFSET = 1000


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of the simulated cluster.

    Attributes:
        workers: Number of worker nodes (the paper uses 5/10/15).
        map_slots: Concurrent map tasks per worker.
        reduce_slots: Concurrent reduce tasks per worker (paper: 3).
        executor: Task-execution backend (``serial``/``thread``/``process``).
            ``serial`` keeps the historical single-process behaviour;
            ``process`` runs tasks on real cores.  Results are identical.
        executor_workers: Worker cap for the parallel backends
            (``None`` = one per CPU core).
    """

    workers: int = 10
    map_slots: int = 3
    reduce_slots: int = 3
    executor: ExecutorKind = ExecutorKind.SERIAL
    executor_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 1 or self.map_slots < 1 or self.reduce_slots < 1:
            raise ConfigError("cluster dimensions must all be >= 1")
        if self.executor_workers is not None and self.executor_workers < 1:
            raise ConfigError("executor_workers must be >= 1")
        try:
            object.__setattr__(self, "executor", ExecutorKind(self.executor))
        except ValueError:
            valid = ", ".join(k.value for k in ExecutorKind)
            raise ConfigError(
                f"unknown executor {self.executor!r} (choose from: {valid})"
            ) from None

    @property
    def default_reduce_tasks(self) -> int:
        """Paper convention: reduce tasks = 3 × nodes."""
        return self.workers * self.reduce_slots

    @property
    def default_map_tasks(self) -> int:
        return self.workers * self.map_slots


@dataclass
class JobResult:
    """Everything one job execution produced."""

    output: List[Pair]
    metrics: JobMetrics
    counters: Counters


@dataclass
class _TaskOutcome:
    """What one completed task ships back to the driver.

    ``payload`` is the map task's partition buffer or the reduce task's
    output list; the driver publishes it — Hadoop's task commit — only
    after the whole attempt loop succeeded, so a retried attempt's partial
    output never leaks.
    """

    metrics: TaskMetrics
    payload: Any
    counters: Counters
    retries: int
    spans: Tuple[Span, ...] = field(default=())
    speculative_backups: int = 0
    speculative_wins: int = 0


def _run_attempt(
    job: MapReduceJob,
    phase: str,
    task_id: int,
    payload: Any,
    n_reduce: int,
    has_combiner: bool,
    injector: Optional[FailureInjector],
    straggler: Optional[StragglerInjector],
    attempt: int,
    tracer: Tracer,
    traced: bool,
    history: List[Tuple[int, str, str]],
    speculative: bool = False,
):
    """Run one task *attempt* end to end; returns ``None`` if it failed.

    On success returns ``(metrics, payload, counters, delay, span)`` where
    ``delay`` is the injected straggler slowdown (charged to the attempt's
    compute time) and ``span`` is the attempt's — possibly no-op — span,
    kept so a later speculative-race decision can mark the loser.

    Failures come in two shapes, both appended to ``history`` as
    ``(attempt, phase, error_repr)``:

    * the failure injector declares the attempt dead *after* its work
      (Hadoop's "died before commit"), or
    * the task body raises.  :class:`~repro.errors.ExecutionError` is the
      runtime's own contract-violation signal (bad partition index,
      key-changing combiner) — deterministic, so it propagates unretried;
      anything else is treated as a node fault and retried.
    """
    delay = straggler(phase, task_id, attempt) if straggler is not None else 0.0
    attrs = {"speculative": True} if speculative else {}
    with tracer.span(
        f"{phase}:{task_id}", phase=phase, task_id=task_id, attempt=attempt,
        **attrs,
    ) as span:
        try:
            if phase == "map":
                metrics, out, counters = _run_map_task(
                    job, task_id, payload, n_reduce, has_combiner
                )
            else:
                metrics, out, counters = _run_reduce_task(job, task_id, payload)
        except ExecutionError:
            raise
        except Exception as exc:  # noqa: BLE001 - modelled as a node fault
            history.append((attempt, phase, repr(exc)))
            span.attrs["status"] = "retried"
            span.attrs["error"] = repr(exc)
            return None
        failed = injector is not None and injector(phase, task_id, attempt)
        if failed:
            history.append((attempt, phase, "injected task failure"))
        metrics.compute_seconds += delay
        if delay:
            span.attrs["straggler_delay"] = delay
        span.attrs["status"] = "retried" if failed else "ok"
        if not failed and traced:
            span.attrs.update(
                input_records=metrics.input_records,
                output_records=metrics.output_records,
                output_bytes=metrics.output_bytes,
                compute_seconds=metrics.compute_seconds,
                counters=counters.as_dict(),
            )
    if failed:
        return None
    return metrics, out, counters, delay, span


def _execute_task(
    item: Tuple[int, Any],
    job: MapReduceJob,
    phase: str,
    n_reduce: int,
    has_combiner: bool,
    injector: Optional[FailureInjector],
    max_attempts: int,
    traced: bool = False,
    straggler: Optional[StragglerInjector] = None,
    speculative: bool = False,
    straggler_threshold: float = 0.1,
) -> _TaskOutcome:
    """Run one task — including its Hadoop-style retry loop — to completion.

    Self-contained and picklable (via :func:`functools.partial` over
    module-level state), so executors may ship it to worker processes; the
    retry loop runs *inside* the worker, keeping failure injection exact
    under parallel dispatch.  The injector is consulted after the work
    (modelling a task that died before its commit); a failed attempt's
    buffered output and counters are simply discarded.

    **Speculative execution** (Hadoop's straggler defence): when an
    otherwise-successful attempt's injected slowdown exceeds
    ``straggler_threshold``, a backup attempt is launched.  The race is
    decided deterministically from the schedule — the backup starts at the
    threshold and both attempts do identical work, so the backup wins iff
    ``threshold + backup_delay < original_delay`` — which keeps results,
    counters and traces bit-identical across executor backends.  The
    loser's output and counters are discarded exactly like a failed
    attempt's; only its span survives, marked ``status="speculative-loser"``.

    With ``traced`` set, every *attempt* — retried and speculative ones
    included — is recorded as a span in a task-local tracer and shipped
    back on the outcome for the driver to adopt; a worker cannot reach the
    driver's tracer, and this keeps discarded attempts' costs visible.

    After ``max_attempts`` failures the task aborts the job with an
    :class:`ExecutionError` carrying the full per-attempt failure history.
    """
    task_id, payload = item
    tracer = Tracer() if traced else NOOP_TRACER
    retries = 0
    history: List[Tuple[int, str, str]] = []
    for attempt in range(1, max_attempts + 1):
        outcome = _run_attempt(
            job, phase, task_id, payload, n_reduce, has_combiner,
            injector, straggler, attempt, tracer, traced, history,
        )
        if outcome is None:
            retries += 1
            continue
        metrics, out, counters, delay, span = outcome
        backups = wins = 0
        if speculative and straggler is not None and delay > straggler_threshold:
            backups = 1
            backup = _run_attempt(
                job, phase, task_id, payload, n_reduce, has_combiner,
                injector, straggler,
                attempt + SPECULATIVE_ATTEMPT_OFFSET,
                tracer, traced, history, speculative=True,
            )
            if backup is not None:
                b_metrics, b_out, b_counters, b_delay, b_span = backup
                if straggler_threshold + b_delay < delay:
                    # Backup finishes first: commit it, discard the
                    # straggling original (its span stays, marked loser).
                    wins = 1
                    span.attrs["status"] = "speculative-loser"
                    metrics, out, counters = b_metrics, b_out, b_counters
                    if traced:
                        tracer.add(
                            f"speculative-win:{phase}:{task_id}", "recovery",
                            start=time.perf_counter(), duration=0.0,
                            action="speculative-win", task_id=task_id,
                            saved_seconds=delay - b_delay - straggler_threshold,
                        )
                else:
                    b_span.attrs["status"] = "speculative-loser"
        return _TaskOutcome(
            metrics=metrics,
            payload=out,
            counters=counters,
            retries=retries,
            spans=tracer.spans(),
            speculative_backups=backups,
            speculative_wins=wins,
        )
    raise ExecutionError(
        f"{phase} task {task_id} failed {max_attempts} attempts",
        attempts=tuple(history),
    )


class SimulatedCluster:
    """Runs MapReduce jobs through a pluggable executor while accounting
    for parallel cost.

    Hadoop's defining operational feature — re-executing failed tasks — is
    modelled via ``failure_injector``: a hook called before every task
    attempt that may declare the attempt failed.  A failed attempt's
    partial output is discarded (tasks buffer locally and publish only on
    success, exactly like Hadoop's commit protocol) and the task is
    retried up to ``max_task_attempts`` times before the job aborts.

    ``executor`` overrides the backend named by ``spec.executor``; it
    accepts a kind name (``"serial"``/``"thread"``/``"process"``) or a
    ready :class:`~repro.mapreduce.executors.TaskExecutor` instance.

    ``tracer`` (default: the free no-op tracer) records one span per job,
    per map/reduce wave, and per task *attempt* — retries included, with
    the failed attempts marked ``status="retried"`` — plus a shuffle
    span carrying the measured shuffle volume.  Task spans are collected
    inside the workers and adopted in task-index order, so traces are
    structurally identical across executor backends; results are
    bit-identical with tracing on or off.
    """

    def __init__(
        self,
        spec: Optional[ClusterSpec] = None,
        failure_injector: Optional[FailureInjector] = None,
        max_task_attempts: int = 4,
        executor: "Optional[ExecutorKind | str | TaskExecutor]" = None,
        tracer: Optional[Tracer] = None,
        straggler_injector: Optional[StragglerInjector] = None,
        speculative: bool = False,
        straggler_threshold: float = 0.1,
    ) -> None:
        """``straggler_injector`` charges simulated extra seconds to task
        attempts; with ``speculative`` on, attempts slowed past
        ``straggler_threshold`` get a backup attempt and the faster one
        wins (deterministically — see :func:`_execute_task`)."""
        if max_task_attempts < 1:
            raise ConfigError("max_task_attempts must be >= 1")
        if straggler_threshold <= 0:
            raise ConfigError("straggler_threshold must be > 0")
        self.spec = spec or ClusterSpec()
        self.failure_injector = failure_injector
        self.max_task_attempts = max_task_attempts
        self.straggler_injector = straggler_injector
        self.speculative = speculative
        self.straggler_threshold = straggler_threshold
        self.executor = create_executor(
            executor if executor is not None else self.spec.executor,
            self.spec.executor_workers,
        )
        self.tracer = tracer if tracer is not None else NOOP_TRACER

    # ------------------------------------------------------------------
    def run_job(
        self,
        job: MapReduceJob,
        input_pairs: Sequence[Pair],
        num_reduce_tasks: Optional[int] = None,
        num_map_tasks: Optional[int] = None,
    ) -> JobResult:
        """Execute ``job`` over ``input_pairs`` and return output + metrics."""
        if num_reduce_tasks is not None and num_reduce_tasks < 1:
            raise ConfigError("num_reduce_tasks must be >= 1")
        if num_map_tasks is not None and num_map_tasks < 1:
            raise ConfigError("num_map_tasks must be >= 1")
        n_reduce = num_reduce_tasks or self.spec.default_reduce_tasks
        n_map = num_map_tasks or self.spec.default_map_tasks
        n_map = max(1, min(n_map, len(input_pairs))) if input_pairs else 1

        metrics = JobMetrics(job_name=job.name)
        counters = Counters()
        has_combiner = type(job).combine is not MapReduceJob.combine
        tracer = self.tracer

        with tracer.span(
            f"job:{job.name}",
            phase="job",
            executor=self.executor.describe(),
            map_tasks=n_map,
            reduce_tasks=n_reduce,
        ):
            # ---- map phase --------------------------------------------
            partitions: List[Dict[Any, List[Any]]] = [
                dict() for _ in range(n_reduce)
            ]
            with tracer.span("map-wave", phase="map-wave", tasks=n_map):
                for outcome in self._run_phase(
                    "map", job, _split(input_pairs, n_map), n_reduce, has_combiner
                ):
                    # Hadoop's task commit: published in task-index order so
                    # the merged partitions (and adopted spans) are identical
                    # whichever backend ran the task.
                    for index, groups in outcome.payload.items():
                        target = partitions[index]
                        for key, values in groups.items():
                            target.setdefault(key, []).extend(values)
                    self._fold(counters, metrics.map_tasks, "map", outcome)
                    tracer.adopt(outcome.spans)

            # ---- shuffle accounting -----------------------------------
            with tracer.span("shuffle", phase="shuffle") as shuffle_span:
                shuffle_records = 0
                shuffle_bytes = 0
                for partition in partitions:
                    for key, values in partition.items():
                        shuffle_records += len(values)
                        key_size = estimate_pair_size(key, None) - 1
                        shuffle_bytes += sum(
                            key_size + estimate_pair_size(None, v) - 1
                            for v in values
                        )
                metrics.shuffle_records = shuffle_records
                metrics.shuffle_bytes = shuffle_bytes
                shuffle_span.attrs.update(
                    shuffle_records=shuffle_records, shuffle_bytes=shuffle_bytes
                )

            # ---- reduce phase -----------------------------------------
            output: List[Pair] = []
            with tracer.span("reduce-wave", phase="reduce-wave", tasks=n_reduce):
                for outcome in self._run_phase(
                    "reduce", job, partitions, n_reduce, has_combiner
                ):
                    output.extend(outcome.payload)
                    self._fold(counters, metrics.reduce_tasks, "reduce", outcome)
                    tracer.adopt(outcome.spans)

        return JobResult(output=output, metrics=metrics, counters=counters)

    # ------------------------------------------------------------------
    def _run_phase(
        self,
        phase: str,
        job: MapReduceJob,
        payloads: Sequence[Any],
        n_reduce: int,
        has_combiner: bool,
    ) -> List[_TaskOutcome]:
        """Dispatch one phase's tasks through the executor backend."""
        fn = functools.partial(
            _execute_task,
            job=job,
            phase=phase,
            n_reduce=n_reduce,
            has_combiner=has_combiner,
            injector=self.failure_injector,
            max_attempts=self.max_task_attempts,
            traced=self.tracer.enabled,
            straggler=self.straggler_injector,
            speculative=self.speculative,
            straggler_threshold=self.straggler_threshold,
        )
        return self.executor.run_tasks(fn, list(enumerate(payloads)))

    @staticmethod
    def _fold(
        counters: Counters,
        task_list: List[TaskMetrics],
        phase: str,
        outcome: _TaskOutcome,
    ) -> None:
        """Aggregate one committed task deterministically."""
        task_list.append(outcome.metrics)
        if outcome.retries:
            counters.increment(
                "mapreduce", f"{phase}_task_retries", outcome.retries
            )
        if outcome.speculative_backups:
            counters.increment(
                "mapreduce", f"{phase}_speculative_backups",
                outcome.speculative_backups,
            )
        if outcome.speculative_wins:
            counters.increment(
                "mapreduce", f"{phase}_speculative_wins",
                outcome.speculative_wins,
            )
        counters.merge(outcome.counters)


def _split(pairs: Sequence[Pair], n_splits: int) -> List[Sequence[Pair]]:
    """Contiguous, near-even input splits (Hadoop block splits)."""
    total = len(pairs)
    if total == 0:
        return [()]
    base, extra = divmod(total, n_splits)
    splits: List[Sequence[Pair]] = []
    start = 0
    for i in range(n_splits):
        length = base + (1 if i < extra else 0)
        splits.append(pairs[start : start + length])
        start += length
    return splits


def _run_map_task(
    job: MapReduceJob,
    task_id: int,
    split: Sequence[Pair],
    n_reduce: int,
    has_combiner: bool,
) -> Tuple[TaskMetrics, Dict[int, Dict[Any, List[Any]]], Counters]:
    """Run one map task attempt; returns its metrics, buffered output and
    counters without publishing anything (the caller commits on success)."""
    task = TaskMetrics(task_id=task_id)
    counters = Counters()
    context = JobContext(task_id, "map", counters)
    buffer: Dict[int, Dict[Any, List[Any]]] = {}

    def emit(key: Any, value: Any) -> None:
        index = job.partition(key, n_reduce)
        if not 0 <= index < n_reduce:
            raise ExecutionError(
                f"job {job.name!r} partitioned key {key!r} to {index}, "
                f"outside [0, {n_reduce})"
            )
        buffer.setdefault(index, {}).setdefault(key, []).append(value)
        task.output_records += 1
        task.output_bytes += estimate_pair_size(key, value)

    started = time.perf_counter()
    job.setup(context)
    for key, value in split:
        task.input_records += 1
        task.input_bytes += estimate_pair_size(key, value)
        job.map(key, value, emit, context)
    if has_combiner:
        _apply_combiner(job, context, buffer, task)
    task.compute_seconds = time.perf_counter() - started
    return task, buffer, counters


def _apply_combiner(
    job: MapReduceJob,
    context: JobContext,
    buffer: Dict[int, Dict[Any, List[Any]]],
    task: TaskMetrics,
) -> None:
    """Run the combiner over each buffered key group, updating output stats."""
    for index, groups in buffer.items():
        for key in list(groups):
            values = groups[key]
            combined = job.combine(key, values, context)
            if combined is None:
                continue
            new_pairs = list(combined)
            # Adjust accounting: the combiner replaces this key's pairs.
            task.output_records -= len(values)
            task.output_bytes -= sum(estimate_pair_size(key, v) for v in values)
            groups[key] = []
            for new_key, new_value in new_pairs:
                if new_key != key:
                    raise ExecutionError(
                        f"combiner of job {job.name!r} changed key "
                        f"{key!r} -> {new_key!r}; combiners must preserve keys"
                    )
                groups[key].append(new_value)
                task.output_records += 1
                task.output_bytes += estimate_pair_size(new_key, new_value)
            if not groups[key]:
                del groups[key]


def _run_reduce_task(
    job: MapReduceJob,
    task_id: int,
    partition: Dict[Any, List[Any]],
) -> Tuple[TaskMetrics, List[Pair], Counters]:
    """Run one reduce task attempt; output is buffered, not published."""
    task = TaskMetrics(task_id=task_id)
    counters = Counters()
    context = JobContext(task_id, "reduce", counters)
    output: List[Pair] = []

    def emit(key: Any, value: Any) -> None:
        output.append((key, value))
        task.output_records += 1
        task.output_bytes += estimate_pair_size(key, value)

    for key, values in partition.items():
        task.input_records += len(values)
        key_size = estimate_pair_size(key, None) - 1
        task.input_bytes += sum(
            key_size + estimate_pair_size(None, v) - 1 for v in values
        )

    started = time.perf_counter()
    job.setup(context)
    for key in sorted(partition, key=group_sort_key):
        job.reduce(key, partition[key], emit, context)
    task.compute_seconds = time.perf_counter() - started
    return task, output, counters
