"""The MapReduce execution engine.

:class:`SimulatedCluster` executes a :class:`~repro.mapreduce.job.MapReduceJob`
with full Hadoop semantics — input splits, per-task setup, map, optional
combiner, hash (or custom) partitioning, sort/group, reduce — in a single
process, deterministically.  Parallelism is *accounted for* rather than
exercised: every task's compute time is measured with a monotonic clock and
its data volumes recorded, and :mod:`repro.mapreduce.costmodel` converts
those observations into simulated cluster wall-clock for any worker count.

The paper's cluster (Section VI-A) is 10 workers with 3 reduce slots each
and "the number of reduce tasks set to be three times the number of nodes";
:class:`ClusterSpec` defaults match that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, ExecutionError
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import JobContext, MapReduceJob
from repro.mapreduce.metrics import JobMetrics, TaskMetrics
from repro.mapreduce.shuffle import group_sort_key
from repro.mapreduce.sizer import estimate_pair_size

Pair = Tuple[Any, Any]

#: Fault-injection hook: ``(phase, task_id, attempt) -> should_fail``.
FailureInjector = Callable[[str, int, int], bool]


class _InjectedTaskFailure(Exception):
    """Raised inside a task attempt by the failure injector."""


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of the simulated cluster.

    Attributes:
        workers: Number of worker nodes (the paper uses 5/10/15).
        map_slots: Concurrent map tasks per worker.
        reduce_slots: Concurrent reduce tasks per worker (paper: 3).
    """

    workers: int = 10
    map_slots: int = 3
    reduce_slots: int = 3

    def __post_init__(self) -> None:
        if self.workers < 1 or self.map_slots < 1 or self.reduce_slots < 1:
            raise ConfigError("cluster dimensions must all be >= 1")

    @property
    def default_reduce_tasks(self) -> int:
        """Paper convention: reduce tasks = 3 × nodes."""
        return self.workers * self.reduce_slots

    @property
    def default_map_tasks(self) -> int:
        return self.workers * self.map_slots


@dataclass
class JobResult:
    """Everything one job execution produced."""

    output: List[Pair]
    metrics: JobMetrics
    counters: Counters


class SimulatedCluster:
    """Runs MapReduce jobs sequentially while accounting for parallel cost.

    Hadoop's defining operational feature — re-executing failed tasks — is
    modelled via ``failure_injector``: a hook called before every task
    attempt that may declare the attempt failed.  A failed attempt's
    partial output is discarded (tasks buffer locally and publish only on
    success, exactly like Hadoop's commit protocol) and the task is
    retried up to ``max_task_attempts`` times before the job aborts.
    """

    def __init__(
        self,
        spec: Optional[ClusterSpec] = None,
        failure_injector: Optional[FailureInjector] = None,
        max_task_attempts: int = 4,
    ) -> None:
        if max_task_attempts < 1:
            raise ConfigError("max_task_attempts must be >= 1")
        self.spec = spec or ClusterSpec()
        self.failure_injector = failure_injector
        self.max_task_attempts = max_task_attempts

    def _attempt_loop(
        self,
        phase: str,
        task_id: int,
        counters: Counters,
        run_attempt: Callable[[int], Tuple[TaskMetrics, Callable[[], None]]],
    ) -> TaskMetrics:
        """Retry Hadoop-style until success or exhaustion.

        ``run_attempt`` executes the task's work side-effect-free and
        returns ``(task_metrics, publish)``; the injector is consulted
        *after* the work (modelling a task that died before its commit) and
        a failed attempt's buffered output and counters are discarded by
        simply never calling ``publish``.
        """
        for attempt in range(1, self.max_task_attempts + 1):
            task, publish = run_attempt(attempt)
            if self.failure_injector is not None and self.failure_injector(
                phase, task_id, attempt
            ):
                counters.increment("mapreduce", f"{phase}_task_retries")
                continue
            publish()
            return task
        raise ExecutionError(
            f"{phase} task {task_id} failed {self.max_task_attempts} attempts"
        )

    # ------------------------------------------------------------------
    def run_job(
        self,
        job: MapReduceJob,
        input_pairs: Sequence[Pair],
        num_reduce_tasks: Optional[int] = None,
        num_map_tasks: Optional[int] = None,
    ) -> JobResult:
        """Execute ``job`` over ``input_pairs`` and return output + metrics."""
        if num_reduce_tasks is not None and num_reduce_tasks < 1:
            raise ConfigError("num_reduce_tasks must be >= 1")
        if num_map_tasks is not None and num_map_tasks < 1:
            raise ConfigError("num_map_tasks must be >= 1")
        n_reduce = num_reduce_tasks or self.spec.default_reduce_tasks
        n_map = num_map_tasks or self.spec.default_map_tasks
        n_map = max(1, min(n_map, len(input_pairs))) if input_pairs else 1

        metrics = JobMetrics(job_name=job.name)
        counters = Counters()
        has_combiner = type(job).combine is not MapReduceJob.combine

        # ---- map phase ------------------------------------------------
        partitions: List[Dict[Any, List[Any]]] = [dict() for _ in range(n_reduce)]
        splits = _split(input_pairs, n_map)
        for task_id, split in enumerate(splits):

            def run_map_attempt(attempt: int, task_id=task_id, split=split):
                task, buffer, task_counters = _run_map_task(
                    job, task_id, split, n_reduce, has_combiner
                )

                def publish() -> None:
                    # Hadoop's task commit: visible only on success.
                    for index, groups in buffer.items():
                        target = partitions[index]
                        for key, values in groups.items():
                            target.setdefault(key, []).extend(values)
                    counters.merge(task_counters)

                return task, publish

            metrics.map_tasks.append(
                self._attempt_loop("map", task_id, counters, run_map_attempt)
            )

        # ---- shuffle accounting ----------------------------------------
        shuffle_records = 0
        shuffle_bytes = 0
        for partition in partitions:
            for key, values in partition.items():
                shuffle_records += len(values)
                key_size = estimate_pair_size(key, None) - 1
                shuffle_bytes += sum(
                    key_size + estimate_pair_size(None, v) - 1 for v in values
                )
        metrics.shuffle_records = shuffle_records
        metrics.shuffle_bytes = shuffle_bytes

        # ---- reduce phase ----------------------------------------------
        output: List[Pair] = []
        for task_id, partition in enumerate(partitions):

            def run_reduce_attempt(attempt: int, task_id=task_id, partition=partition):
                task, task_output, task_counters = _run_reduce_task(
                    job, task_id, partition
                )

                def publish() -> None:
                    output.extend(task_output)
                    counters.merge(task_counters)

                return task, publish

            metrics.reduce_tasks.append(
                self._attempt_loop("reduce", task_id, counters, run_reduce_attempt)
            )

        return JobResult(output=output, metrics=metrics, counters=counters)


def _split(pairs: Sequence[Pair], n_splits: int) -> List[Sequence[Pair]]:
    """Contiguous, near-even input splits (Hadoop block splits)."""
    total = len(pairs)
    if total == 0:
        return [()]
    base, extra = divmod(total, n_splits)
    splits: List[Sequence[Pair]] = []
    start = 0
    for i in range(n_splits):
        length = base + (1 if i < extra else 0)
        splits.append(pairs[start : start + length])
        start += length
    return splits


def _run_map_task(
    job: MapReduceJob,
    task_id: int,
    split: Sequence[Pair],
    n_reduce: int,
    has_combiner: bool,
) -> Tuple[TaskMetrics, Dict[int, Dict[Any, List[Any]]], Counters]:
    """Run one map task attempt; returns its metrics, buffered output and
    counters without publishing anything (the caller commits on success)."""
    task = TaskMetrics(task_id=task_id)
    counters = Counters()
    context = JobContext(task_id, "map", counters)
    buffer: Dict[int, Dict[Any, List[Any]]] = {}

    def emit(key: Any, value: Any) -> None:
        index = job.partition(key, n_reduce)
        if not 0 <= index < n_reduce:
            raise ExecutionError(
                f"job {job.name!r} partitioned key {key!r} to {index}, "
                f"outside [0, {n_reduce})"
            )
        buffer.setdefault(index, {}).setdefault(key, []).append(value)
        task.output_records += 1
        task.output_bytes += estimate_pair_size(key, value)

    started = time.perf_counter()
    job.setup(context)
    for key, value in split:
        task.input_records += 1
        task.input_bytes += estimate_pair_size(key, value)
        job.map(key, value, emit, context)
    if has_combiner:
        _apply_combiner(job, context, buffer, task)
    task.compute_seconds = time.perf_counter() - started
    return task, buffer, counters


def _apply_combiner(
    job: MapReduceJob,
    context: JobContext,
    buffer: Dict[int, Dict[Any, List[Any]]],
    task: TaskMetrics,
) -> None:
    """Run the combiner over each buffered key group, updating output stats."""
    for index, groups in buffer.items():
        for key in list(groups):
            values = groups[key]
            combined = job.combine(key, values, context)
            if combined is None:
                continue
            new_pairs = list(combined)
            # Adjust accounting: the combiner replaces this key's pairs.
            task.output_records -= len(values)
            task.output_bytes -= sum(estimate_pair_size(key, v) for v in values)
            groups[key] = []
            for new_key, new_value in new_pairs:
                if new_key != key:
                    raise ExecutionError(
                        f"combiner of job {job.name!r} changed key "
                        f"{key!r} -> {new_key!r}; combiners must preserve keys"
                    )
                groups[key].append(new_value)
                task.output_records += 1
                task.output_bytes += estimate_pair_size(new_key, new_value)
            if not groups[key]:
                del groups[key]


def _run_reduce_task(
    job: MapReduceJob,
    task_id: int,
    partition: Dict[Any, List[Any]],
) -> Tuple[TaskMetrics, List[Pair], Counters]:
    """Run one reduce task attempt; output is buffered, not published."""
    task = TaskMetrics(task_id=task_id)
    counters = Counters()
    context = JobContext(task_id, "reduce", counters)
    output: List[Pair] = []

    def emit(key: Any, value: Any) -> None:
        output.append((key, value))
        task.output_records += 1
        task.output_bytes += estimate_pair_size(key, value)

    for key, values in partition.items():
        task.input_records += len(values)
        key_size = estimate_pair_size(key, None) - 1
        task.input_bytes += sum(
            key_size + estimate_pair_size(None, v) - 1 for v in values
        )

    started = time.perf_counter()
    job.setup(context)
    for key in sorted(partition, key=group_sort_key):
        job.reduce(key, partition[key], emit, context)
    task.compute_seconds = time.perf_counter() - started
    return task, output, counters
