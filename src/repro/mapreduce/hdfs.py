"""An in-memory stand-in for HDFS.

Multi-job algorithms (FS-Join has three jobs; MassJoin has four) pass
intermediate datasets between jobs through the DFS.  This in-memory version
stores lists of key/value pairs per path and tracks their estimated byte
sizes, so pipelines can account for HDFS write/read volume — the cost that
cripples MassJoin in the paper (105 GB intermediate output for a 1.65 GB
input).

Two robustness features support checkpoint/resume and the chaos harness:

* every write records a **sha256 digest** of its content (over a canonical
  ``repr`` serialization), and :meth:`InMemoryDFS.verify` recomputes it —
  the digest check that lets a resumed pipeline trust (or reject) a
  materialised job output;
* an optional **fault hook** ``(op, path) -> None`` is consulted before
  every operation and may raise :class:`~repro.errors.DFSError` — the
  injection point for simulated read/write failures — while
  :meth:`InMemoryDFS.corrupt` models silent on-disk bit rot (the stored
  pairs change, the recorded digest does not, so ``verify`` fails).
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import DFSError
from repro.mapreduce.sizer import estimate_pair_size

Pair = Tuple[Any, Any]

#: Fault hook: ``(op, path)`` called before read/write/rename/delete; may
#: raise :class:`DFSError` to fail the operation.
FaultHook = Callable[[str, str], None]


def content_digest(pairs: Iterable[Pair]) -> str:
    """sha256 over a canonical serialization of ``pairs``.

    ``repr`` of the key and value per line: deterministic for the plain
    data (ints, floats, strings, tuples) that flows between jobs, and
    independent of pickling details.
    """
    hasher = hashlib.sha256()
    for key, value in pairs:
        hasher.update(repr(key).encode("utf-8"))
        hasher.update(b"\x1f")
        hasher.update(repr(value).encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


class InMemoryDFS:
    """Path → list-of-pairs store with byte accounting and digests."""

    def __init__(self, fault_hook: Optional[FaultHook] = None) -> None:
        self._files: Dict[str, List[Pair]] = {}
        self._sizes: Dict[str, int] = {}
        self._digests: Dict[str, str] = {}
        #: consulted before every operation; settable after construction so
        #: a chaos schedule can attach to an already-wired pipeline.
        self.fault_hook = fault_hook

    def _check(self, op: str, path: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(op, path)

    def write(self, path: str, pairs: Iterable[Pair], overwrite: bool = False) -> int:
        """Store ``pairs`` at ``path``; returns the estimated byte size.

        Overwrites are atomic-by-convention (write-then-swap): the new
        content is fully materialized and sized *before* the path is
        touched, so a failure while consuming ``pairs`` — a generator
        that raises, a malformed entry — leaves the previous content
        intact.  Disk-side snapshot code
        (:mod:`repro.service.snapshot`) follows the same discipline with
        a temp file plus :func:`os.replace`.
        """
        self._check("write", path)
        if path in self._files and not overwrite:
            raise DFSError(f"path already exists: {path!r}")
        data = list(pairs)
        size = sum(estimate_pair_size(k, v) for k, v in data)
        digest = content_digest(data)
        # Commit point: nothing above may mutate the store.
        self._files[path] = data
        self._sizes[path] = size
        self._digests[path] = digest
        return size

    def append(self, path: str, pairs: Iterable[Pair]) -> int:
        """Append ``pairs`` to ``path`` (creating it if absent); returns the
        estimated byte size of the appended chunk.

        Appends are atomic: the chunk is fully materialized, sized, and the
        combined digest recomputed *before* the stored list is touched, so
        a failure while consuming ``pairs`` — or an injected fault from the
        hook, consulted first — leaves the existing content byte-identical.
        A torn write can therefore only come from a crash *between* two
        append calls (e.g. records appended, commit marker not), which is
        exactly the failure the WAL replay protocol must tolerate.
        """
        self._check("append", path)
        chunk = list(pairs)
        existing = self._files.get(path, [])
        combined = existing + chunk
        size = sum(estimate_pair_size(k, v) for k, v in chunk)
        digest = content_digest(combined)
        # Commit point: nothing above may mutate the store.
        self._files[path] = combined
        self._sizes[path] = self._sizes.get(path, 0) + size
        self._digests[path] = digest
        return size

    def rename(self, src: str, dst: str) -> None:
        """Atomically move ``src`` to ``dst`` (``dst`` must not exist).

        Hadoop's rename is the primitive job commit is built on; modelling
        it with no-clobber semantics keeps "swap a finished file into
        place" explicit: write to a temp path, then ``rename``.
        """
        self._check("rename", src)
        if src not in self._files:
            raise DFSError(f"no such path: {src!r}")
        if dst in self._files:
            raise DFSError(f"destination already exists: {dst!r}")
        self._files[dst] = self._files.pop(src)
        self._sizes[dst] = self._sizes.pop(src)
        self._digests[dst] = self._digests.pop(src)

    def read(self, path: str) -> List[Pair]:
        """Return the pairs stored at ``path``."""
        self._check("read", path)
        try:
            return self._files[path]
        except KeyError:
            raise DFSError(f"no such path: {path!r}") from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        """Remove ``path``; raises if absent."""
        self._check("delete", path)
        if path not in self._files:
            raise DFSError(f"no such path: {path!r}")
        del self._files[path]
        del self._sizes[path]
        del self._digests[path]

    def size_bytes(self, path: str) -> int:
        """Estimated serialized size of the file at ``path``."""
        try:
            return self._sizes[path]
        except KeyError:
            raise DFSError(f"no such path: {path!r}") from None

    # -- integrity -----------------------------------------------------
    def digest(self, path: str) -> str:
        """The sha256 recorded when ``path`` was written."""
        try:
            return self._digests[path]
        except KeyError:
            raise DFSError(f"no such path: {path!r}") from None

    def verify(self, path: str) -> bool:
        """Recompute ``path``'s digest and compare to the recorded one.

        ``False`` means the stored content no longer matches what was
        written — the file was corrupted in place (:meth:`corrupt`, or any
        out-of-band mutation of the returned lists).
        """
        return content_digest(self.read(path)) == self.digest(path)

    def corrupt(self, path: str) -> None:
        """Simulate silent bit rot: perturb the stored pairs in place.

        The recorded digest is deliberately left stale, so the damage is
        invisible to ``exists``/``read`` and only :meth:`verify` (the
        resume path's checkpoint validation) can detect it.
        """
        if path not in self._files:
            raise DFSError(f"no such path: {path!r}")
        data = self._files[path]
        if data:
            key, value = data[0]
            data[0] = (key, ("\x00bitflip", value))
        else:
            data.append(("\x00bitflip", 1))

    def list_paths(self) -> List[str]:
        return sorted(self._files)

    def list_prefix(self, prefix: str) -> List[str]:
        """Sorted paths starting with ``prefix`` (a directory-listing stand-in).

        Lexicographic order doubles as chronological order for the WAL's
        zero-padded segment names, so replay can walk segments without a
        separate catalogue file.
        """
        return sorted(p for p in self._files if p.startswith(prefix))

    def total_bytes(self) -> int:
        """Sum of all stored file sizes."""
        return sum(self._sizes.values())
