"""An in-memory stand-in for HDFS.

Multi-job algorithms (FS-Join has three jobs; MassJoin has four) pass
intermediate datasets between jobs through the DFS.  This in-memory version
stores lists of key/value pairs per path and tracks their estimated byte
sizes, so pipelines can account for HDFS write/read volume — the cost that
cripples MassJoin in the paper (105 GB intermediate output for a 1.65 GB
input).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

from repro.errors import DFSError
from repro.mapreduce.sizer import estimate_pair_size

Pair = Tuple[Any, Any]


class InMemoryDFS:
    """Path → list-of-pairs store with byte accounting."""

    def __init__(self) -> None:
        self._files: Dict[str, List[Pair]] = {}
        self._sizes: Dict[str, int] = {}

    def write(self, path: str, pairs: Iterable[Pair], overwrite: bool = False) -> int:
        """Store ``pairs`` at ``path``; returns the estimated byte size.

        Overwrites are atomic-by-convention (write-then-swap): the new
        content is fully materialized and sized *before* the path is
        touched, so a failure while consuming ``pairs`` — a generator
        that raises, a malformed entry — leaves the previous content
        intact.  Disk-side snapshot code
        (:mod:`repro.service.snapshot`) follows the same discipline with
        a temp file plus :func:`os.replace`.
        """
        if path in self._files and not overwrite:
            raise DFSError(f"path already exists: {path!r}")
        data = list(pairs)
        size = sum(estimate_pair_size(k, v) for k, v in data)
        # Commit point: nothing above may mutate the store.
        self._files[path] = data
        self._sizes[path] = size
        return size

    def rename(self, src: str, dst: str) -> None:
        """Atomically move ``src`` to ``dst`` (``dst`` must not exist).

        Hadoop's rename is the primitive job commit is built on; modelling
        it with no-clobber semantics keeps "swap a finished file into
        place" explicit: write to a temp path, then ``rename``.
        """
        if src not in self._files:
            raise DFSError(f"no such path: {src!r}")
        if dst in self._files:
            raise DFSError(f"destination already exists: {dst!r}")
        self._files[dst] = self._files.pop(src)
        self._sizes[dst] = self._sizes.pop(src)

    def read(self, path: str) -> List[Pair]:
        """Return the pairs stored at ``path``."""
        try:
            return self._files[path]
        except KeyError:
            raise DFSError(f"no such path: {path!r}") from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        """Remove ``path``; raises if absent."""
        if path not in self._files:
            raise DFSError(f"no such path: {path!r}")
        del self._files[path]
        del self._sizes[path]

    def size_bytes(self, path: str) -> int:
        """Estimated serialized size of the file at ``path``."""
        try:
            return self._sizes[path]
        except KeyError:
            raise DFSError(f"no such path: {path!r}") from None

    def list_paths(self) -> List[str]:
        return sorted(self._files)

    def total_bytes(self) -> int:
        """Sum of all stored file sizes."""
        return sum(self._sizes.values())
