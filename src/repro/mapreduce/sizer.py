"""Serialized-size estimation for shuffle-byte accounting.

Hadoop shuffles serialized key/value pairs; the byte volume is the dominant
shuffle cost and one of the paper's headline comparisons (duplication blows
up shuffle bytes).  ``estimate_size`` approximates the wire size of the
Python values our jobs emit, cheaply and deterministically:

* ``str`` → its UTF-8-ish length (ASCII corpora: ``len``),
* ``int``/``float``/``bool``/``None`` → fixed widths (varint-style ints),
* containers → element sizes plus a small per-container header.

Exactness is irrelevant — only *relative* volumes matter for the paper's
comparisons — but the estimator must be monotone in payload size, which
this is.
"""

from __future__ import annotations

from typing import Any

_CONTAINER_OVERHEAD = 4
_NUMBER_SIZE = 8


def estimate_size(value: Any) -> int:
    """Approximate serialized byte size of ``value``."""
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, int):
        # varint-style: small ids are cheap, token ranks stay small.
        magnitude = abs(value)
        size = 1
        while magnitude >= 128:
            magnitude >>= 7
            size += 1
        return size
    if isinstance(value, float):
        return _NUMBER_SIZE
    if isinstance(value, str):
        return len(value) + 1
    if isinstance(value, bytes):
        return len(value) + 1
    if isinstance(value, (tuple, list, set, frozenset)):
        return _CONTAINER_OVERHEAD + sum(estimate_size(item) for item in value)
    if isinstance(value, dict):
        return _CONTAINER_OVERHEAD + sum(
            estimate_size(k) + estimate_size(v) for k, v in value.items()
        )
    payload = getattr(value, "payload_size", None)
    if callable(payload):
        return int(payload())
    # Fallback: a stable, roughly size-proportional estimate.
    return len(repr(value))


def estimate_pair_size(key: Any, value: Any) -> int:
    """Approximate serialized size of one key/value pair."""
    return estimate_size(key) + estimate_size(value)
