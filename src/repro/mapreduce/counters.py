"""Hadoop-style hierarchical counters.

Jobs increment named counters (grouped, like Hadoop's counter groups); the
runtime aggregates them across tasks and exposes them on the job result.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple


def _int_dict() -> Dict[str, int]:
    """Module-level factory so :class:`Counters` stays picklable (a lambda
    default factory would break shipping task counters across processes)."""
    return defaultdict(int)


class Counters:
    """A two-level ``group → name → count`` counter map."""

    def __init__(self) -> None:
        self._groups: Dict[str, Dict[str, int]] = defaultdict(_int_dict)

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``group:name``."""
        self._groups[group][name] += amount

    def get(self, group: str, name: str) -> int:
        """Current value of ``group:name`` (0 if never incremented)."""
        return self._groups.get(group, {}).get(name, 0)

    def group(self, group: str) -> Dict[str, int]:
        """A copy of all counters in ``group``."""
        return dict(self._groups.get(group, {}))

    def merge(self, other: "Counters") -> None:
        """Fold ``other``'s counts into this instance."""
        for group, names in other._groups.items():
            target = self._groups[group]
            for name, value in names.items():
                target[name] += value

    def __iter__(self) -> Iterator[Tuple[str, str, int]]:
        for group, names in sorted(self._groups.items()):
            for name, value in sorted(names.items()):
                yield group, name, value

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        """Nested plain-dict snapshot (for assertions and reports)."""
        return {group: dict(names) for group, names in self._groups.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entries = ", ".join(f"{g}:{n}={v}" for g, n, v in self)
        return f"Counters({entries})"
