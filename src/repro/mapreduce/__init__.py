"""A deterministic MapReduce runtime with cluster simulation.

The paper runs on Hadoop 0.20.2 over an 11-node EC2 cluster.  This package
substitutes a single-process runtime that executes jobs with identical
semantics (map → combine → partition/shuffle → sort/group → reduce) while
*measuring* the quantities the paper's evaluation is about:

* map/shuffle/reduce record and byte counts (duplication, shuffle cost);
* per-task wall time (measured, not modelled), fed to an analytic cluster
  cost model so node-count scaling experiments (Fig. 9) can be replayed
  without hardware;
* per-reduce-task load, exposing skew/load-balancing behaviour.

See :mod:`repro.mapreduce.runtime` for the engine and
:mod:`repro.mapreduce.costmodel` for the time model.
"""

from repro.mapreduce.checkpoint import PipelineCheckpoint
from repro.mapreduce.counters import Counters
from repro.mapreduce.executors import (
    ExecutorKind,
    ProcessExecutor,
    SerialExecutor,
    TaskExecutor,
    ThreadExecutor,
    create_executor,
)
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.job import JobContext, MapReduceJob
from repro.mapreduce.metrics import JobMetrics, TaskMetrics
from repro.mapreduce.runtime import ClusterSpec, JobResult, SimulatedCluster
from repro.mapreduce.costmodel import CostModel, PhaseTimes, simulate_job_time
from repro.mapreduce.pipeline import PipelineResult
from repro.mapreduce.shuffle import stable_hash

__all__ = [
    "Counters",
    "PipelineCheckpoint",
    "ExecutorKind",
    "TaskExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "create_executor",
    "InMemoryDFS",
    "MapReduceJob",
    "JobContext",
    "JobMetrics",
    "TaskMetrics",
    "ClusterSpec",
    "SimulatedCluster",
    "JobResult",
    "CostModel",
    "PhaseTimes",
    "simulate_job_time",
    "PipelineResult",
    "stable_hash",
]
