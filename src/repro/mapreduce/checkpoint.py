"""Pipeline checkpoints: digest-validated job outputs on the DFS.

Hadoop pipelines recover from driver death by re-reading the intermediate
outputs earlier jobs already materialised; :class:`PipelineCheckpoint`
models that contract on :class:`~repro.mapreduce.hdfs.InMemoryDFS`.  Each
completed job's output is stored under ``<root>/<job>``, and the DFS
records a sha256 content digest at write time.  On resume, a checkpoint is
trusted only if it exists *and* its digest still matches
(:meth:`PipelineCheckpoint.valid`) — a corrupted or half-written
checkpoint is treated as absent, so the job re-runs instead of feeding
garbage downstream.  :meth:`load` is the strict form: it raises a typed
:class:`~repro.errors.CheckpointError` on a digest mismatch rather than
returning silently wrong pairs.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.errors import CheckpointError, DFSError
from repro.mapreduce.hdfs import InMemoryDFS

Pair = Tuple[Any, Any]

DEFAULT_ROOT = "checkpoints"


class PipelineCheckpoint:
    """Store, validate and reload one pipeline's per-job outputs."""

    def __init__(self, dfs: InMemoryDFS, root: str = DEFAULT_ROOT) -> None:
        self.dfs = dfs
        self.root = root.rstrip("/")

    def path(self, job: str) -> str:
        return f"{self.root}/{job}"

    def store(self, job: str, pairs: Sequence[Pair]) -> int:
        """Materialise ``job``'s output (digest recorded by the DFS)."""
        return self.dfs.write(self.path(job), pairs, overwrite=True)

    def exists(self, job: str) -> bool:
        return self.dfs.exists(self.path(job))

    def valid(self, job: str) -> bool:
        """Does a digest-valid checkpoint for ``job`` exist?

        ``False`` for a missing checkpoint *and* for one whose content no
        longer matches its recorded digest — both mean "re-run the job".
        A DFS read fault while validating also answers ``False``: an
        unreadable checkpoint must never be skipped over.
        """
        path = self.path(job)
        if not self.dfs.exists(path):
            return False
        try:
            return self.dfs.verify(path)
        except DFSError:
            return False

    def load(self, job: str) -> List[Pair]:
        """The checkpointed output of ``job``; digest-checked.

        Raises :class:`CheckpointError` if the checkpoint is missing or
        fails its digest — callers that got ``valid() == True`` can still
        hit this if the content was corrupted in between (time-of-check /
        time-of-use), so resume logic should treat it as "re-run".
        """
        path = self.path(job)
        if not self.dfs.exists(path):
            raise CheckpointError(f"no checkpoint for job {job!r} at {path!r}")
        if not self.dfs.verify(path):
            raise CheckpointError(
                f"checkpoint for job {job!r} at {path!r} failed its sha256 "
                "digest check — the materialised output was corrupted; "
                "re-run the job"
            )
        return self.dfs.read(path)

    def clear(self) -> int:
        """Drop every checkpoint under this root; returns how many."""
        dropped = 0
        for path in self.dfs.list_paths():
            if path.startswith(self.root + "/"):
                self.dfs.delete(path)
                dropped += 1
        return dropped

    def jobs(self) -> List[str]:
        """Names of the jobs that currently have a checkpoint (sorted)."""
        prefix = self.root + "/"
        return sorted(
            path[len(prefix):]
            for path in self.dfs.list_paths()
            if path.startswith(prefix)
        )
