"""Multi-job pipeline bookkeeping.

Every join algorithm in this repo is a pipeline of MapReduce jobs (FS-Join:
ordering → filter → verification; MassJoin: four jobs).  Algorithms collect
their per-job :class:`~repro.mapreduce.runtime.JobResult` objects into a
:class:`PipelineResult`, which aggregates counters and simulated times and
is what benches and tests inspect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.mapreduce.costmodel import (
    CostModel,
    PhaseTimes,
    simulate_job_time,
    simulate_pipeline_time,
)
from repro.mapreduce.counters import Counters
from repro.mapreduce.metrics import JobMetrics
from repro.mapreduce.runtime import ClusterSpec, JobResult
from repro.observability.tracer import Span

Pair = Tuple[Any, Any]


@dataclass
class PipelineResult:
    """The result of a full algorithm run: final output plus per-job data."""

    algorithm: str
    pairs: List[Pair]
    """Final output: ``((rid_small, rid_large), score)`` per similar pair."""
    job_results: List[JobResult] = field(default_factory=list)
    trace: Optional[Tuple[Span, ...]] = None
    """The run's spans, when the driver ran with an enabled tracer."""
    resumed_jobs: List[str] = field(default_factory=list)
    """Jobs skipped on a ``resume=True`` run because a digest-valid
    checkpoint already held their output (execution order).  Such jobs
    contribute no fresh :class:`JobResult`, so counters and metrics cover
    only the work this run actually performed."""

    @property
    def result_pairs(self) -> Dict[Tuple[int, int], float]:
        """Results as an id-pair → score mapping (ids ordered ``small < large``)."""
        return {key: value for key, value in self.pairs}

    def result_set(self) -> frozenset:
        """Just the id pairs, for equality checks against an oracle."""
        return frozenset(key for key, _ in self.pairs)

    # ---- aggregations -----------------------------------------------------
    def counters(self) -> Counters:
        merged = Counters()
        for result in self.job_results:
            merged.merge(result.counters)
        return merged

    def job_metrics(self) -> List[JobMetrics]:
        return [result.metrics for result in self.job_results]

    def total_shuffle_bytes(self) -> int:
        return sum(result.metrics.shuffle_bytes for result in self.job_results)

    def total_shuffle_records(self) -> int:
        return sum(result.metrics.shuffle_records for result in self.job_results)

    def simulated_time(
        self,
        cluster: ClusterSpec,
        model: Optional[CostModel] = None,
    ) -> PhaseTimes:
        """Total simulated wall-clock of all jobs on ``cluster``."""
        return simulate_pipeline_time(
            self.job_metrics(), cluster, model or CostModel()
        )

    def job_times(
        self,
        cluster: ClusterSpec,
        model: Optional[CostModel] = None,
    ) -> List[PhaseTimes]:
        """Per-job simulated times, in execution order."""
        model = model or CostModel()
        return [
            simulate_job_time(result.metrics, cluster, model)
            for result in self.job_results
        ]
