"""Execution metrics gathered by the runtime.

Every map and reduce task records its input/output volumes and its measured
compute time.  These are the raw observations behind all of the paper's
comparisons: shuffle cost (Table I discussion), duplication factors, reduce
load skew (the load-balancing claims) and the per-phase times of Fig. 10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List


@dataclass
class TaskMetrics:
    """Volumes and measured compute time of a single task."""

    task_id: int
    input_records: int = 0
    input_bytes: int = 0
    output_records: int = 0
    output_bytes: int = 0
    compute_seconds: float = 0.0


@dataclass
class JobMetrics:
    """Aggregated metrics for one MapReduce job execution."""

    job_name: str
    map_tasks: List[TaskMetrics] = field(default_factory=list)
    reduce_tasks: List[TaskMetrics] = field(default_factory=list)
    shuffle_records: int = 0
    shuffle_bytes: int = 0

    # ---- aggregate volumes -------------------------------------------------
    @property
    def input_records(self) -> int:
        return sum(task.input_records for task in self.map_tasks)

    @property
    def input_bytes(self) -> int:
        return sum(task.input_bytes for task in self.map_tasks)

    @property
    def map_output_records(self) -> int:
        return sum(task.output_records for task in self.map_tasks)

    @property
    def map_output_bytes(self) -> int:
        return sum(task.output_bytes for task in self.map_tasks)

    @property
    def output_records(self) -> int:
        return sum(task.output_records for task in self.reduce_tasks)

    @property
    def output_bytes(self) -> int:
        return sum(task.output_bytes for task in self.reduce_tasks)

    # ---- skew / balance ----------------------------------------------------
    def reduce_input_loads(self) -> List[int]:
        """Per-reduce-task input bytes (the shuffled fragment sizes)."""
        return [task.input_bytes for task in self.reduce_tasks]

    def reduce_load_cv(self) -> float:
        """Coefficient of variation of reduce input bytes (0 = perfect balance)."""
        loads = self.reduce_input_loads()
        if not loads:
            return 0.0
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 0.0
        variance = sum((x - mean) ** 2 for x in loads) / len(loads)
        return math.sqrt(variance) / mean

    def reduce_load_max_over_mean(self) -> float:
        """Max/mean of reduce input bytes (≥ 1; large means a straggler)."""
        loads = self.reduce_input_loads()
        if not loads:
            return 1.0
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean else 1.0

    # ---- duplication --------------------------------------------------------
    def duplication_byte_factor(self) -> float:
        """Map output bytes over input bytes.

        ≈ 1.0 for a duplicate-free algorithm (FS-Join's segments partition
        each record); > 1 when records are replicated per signature token.
        """
        inp = self.input_bytes
        return self.map_output_bytes / inp if inp else 0.0

    def duplication_record_factor(self) -> float:
        """Map output records over input records (signatures per record)."""
        inp = self.input_records
        return self.map_output_records / inp if inp else 0.0
