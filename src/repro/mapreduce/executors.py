"""Pluggable task-execution backends for :class:`~repro.mapreduce.runtime.SimulatedCluster`.

The runtime hands every map/reduce phase to a :class:`TaskExecutor` as a
picklable task function applied to a list of ``(task_id, payload)`` items.
Three backends are provided:

* :class:`SerialExecutor` — run tasks one by one in the calling thread.
  The default: fully deterministic, zero dispatch overhead, and the only
  backend that tolerates unpicklable jobs or closure-based failure
  injectors.
* :class:`ThreadExecutor` — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  Useful when task work releases the GIL (NumPy kernels, I/O); for the
  pure-Python join kernels it mostly measures dispatch overhead.
* :class:`ProcessExecutor` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  with chunked task batches (the task function — including the job object —
  is pickled once per *chunk*, not once per task, which amortizes
  serialization of large broadcast state such as the global ordering).
  This is the backend that exercises real cores: FS-Join's fragments are
  independent by construction, so reduce tasks parallelize perfectly.

All three backends return task results **in task-index order**, so the
runtime's output merge and counter aggregation are bit-identical across
backends (see ``tests/test_mapreduce_executors.py``).  Errors raised inside
a task propagate at that task's index: the lowest-index failing task aborts
the phase, matching serial semantics.

The same ordering contract carries the tracing story: a task function may
return spans it recorded locally (workers cannot reach the driver's
tracer), and because ``run_tasks`` yields results in task-index order the
driver adopts those spans deterministically — traces differ across
backends only in timing, never in structure.

Requirements for the parallel backends: jobs, input payloads, task outputs
and the failure injector must be picklable for ``process`` (they travel to
worker processes) and thread-safe for ``thread`` (the job object is shared).
All jobs shipped in this package satisfy both.
"""

from __future__ import annotations

import enum
import math
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, TypeVar

from repro.errors import ConfigError

T = TypeVar("T")

#: A task function: applied to one ``(task_id, payload)`` item.
TaskFn = Callable[[Any], T]


class ExecutorKind(str, enum.Enum):
    """The available task-execution backends."""

    SERIAL = "serial"
    THREAD = "thread"
    PROCESS = "process"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def _default_workers() -> int:
    return os.cpu_count() or 1


class TaskExecutor:
    """Interface: run one phase's tasks and return results in task order."""

    kind: ExecutorKind

    def run_tasks(self, fn: TaskFn, items: Sequence[Any]) -> List[T]:
        """Apply ``fn`` to every item; results ordered like ``items``."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short backend label for logs and trace span attributes."""
        workers = getattr(self, "max_workers", None)
        return f"{self.kind}[{workers}]" if workers else str(self.kind)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SerialExecutor(TaskExecutor):
    """Today's behaviour: tasks run sequentially in the calling thread."""

    kind = ExecutorKind.SERIAL

    def run_tasks(self, fn: TaskFn, items: Sequence[Any]) -> List[T]:
        return [fn(item) for item in items]


class ThreadExecutor(TaskExecutor):
    """Dispatch tasks to a thread pool (shared-memory parallelism)."""

    kind = ExecutorKind.THREAD

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigError("max_workers must be >= 1")
        self.max_workers = max_workers or _default_workers()

    def run_tasks(self, fn: TaskFn, items: Sequence[Any]) -> List[T]:
        if len(items) <= 1:
            return [fn(item) for item in items]
        workers = min(self.max_workers, len(items))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))


class ProcessExecutor(TaskExecutor):
    """Dispatch chunked task batches to a process pool (real cores)."""

    kind = ExecutorKind.PROCESS

    #: Target chunks per worker; >1 so a straggling chunk can be overlapped.
    CHUNKS_PER_WORKER = 4

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigError("max_workers must be >= 1")
        self.max_workers = max_workers or _default_workers()

    def _chunksize(self, n_items: int) -> int:
        return max(1, math.ceil(n_items / (self.max_workers * self.CHUNKS_PER_WORKER)))

    def run_tasks(self, fn: TaskFn, items: Sequence[Any]) -> List[T]:
        if len(items) <= 1:
            return [fn(item) for item in items]
        workers = min(self.max_workers, len(items))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items, chunksize=self._chunksize(len(items))))


def create_executor(
    kind: "ExecutorKind | str | TaskExecutor",
    max_workers: Optional[int] = None,
) -> TaskExecutor:
    """Build a backend from its kind name (``serial``/``thread``/``process``).

    A ready :class:`TaskExecutor` instance passes through unchanged so
    callers can inject custom backends.
    """
    if isinstance(kind, TaskExecutor):
        return kind
    try:
        kind = ExecutorKind(kind)
    except ValueError:
        valid = ", ".join(k.value for k in ExecutorKind)
        raise ConfigError(f"unknown executor {kind!r} (choose from: {valid})") from None
    if kind is ExecutorKind.SERIAL:
        return SerialExecutor()
    if kind is ExecutorKind.THREAD:
        return ThreadExecutor(max_workers)
    return ProcessExecutor(max_workers)
