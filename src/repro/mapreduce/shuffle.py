"""Partitioning and grouping primitives for the shuffle phase.

Python's builtin ``hash`` is randomized per process for strings, which would
make task placement (and therefore metrics) non-reproducible.  The runtime
uses :func:`stable_hash` instead — a deterministic recursive hash over the
value kinds jobs emit as keys.
"""

from __future__ import annotations

import zlib
from typing import Any

_MASK = (1 << 61) - 1


def stable_hash(value: Any) -> int:
    """Deterministic, process-independent hash of common key types."""
    if value is None:
        return 0x9E3779B1
    if isinstance(value, bool):
        return 0x85EBCA6B if value else 0xC2B2AE35
    if isinstance(value, int):
        return (value * 0x9E3779B97F4A7C15) & _MASK
    if isinstance(value, float):
        return stable_hash(value.as_integer_ratio())
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8")) * 0x9E3779B1 & _MASK
    if isinstance(value, bytes):
        return zlib.crc32(value) * 0x9E3779B1 & _MASK
    if isinstance(value, (tuple, list)):
        acc = 0x345678
        for item in value:
            acc = (acc * 1000003) ^ stable_hash(item)
            acc &= _MASK
        return acc ^ len(value)
    if isinstance(value, frozenset):
        acc = 0
        for item in value:
            acc ^= stable_hash(item)
        return acc & _MASK
    return zlib.crc32(repr(value).encode("utf-8")) & _MASK


def default_partition(key: Any, n_partitions: int) -> int:
    """Hash partitioner (Hadoop's default): ``stable_hash(key) % n``."""
    return stable_hash(key) % n_partitions


def group_sort_key(key: Any):
    """Deterministic ordering for reduce groups.

    Keys within one job are homogeneous, so tuple/scalar comparisons work;
    ``repr`` is the fallback for exotic key types.
    """
    try:
        if isinstance(key, (int, float, str, tuple)):
            return (0, key)
    except TypeError:  # pragma: no cover - defensive
        pass
    return (1, repr(key))
