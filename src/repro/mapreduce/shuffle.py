"""Partitioning and grouping primitives for the shuffle phase.

Python's builtin ``hash`` is randomized per process for strings, which would
make task placement (and therefore metrics) non-reproducible.  The runtime
uses :func:`stable_hash` instead — a deterministic recursive hash over the
value kinds jobs emit as keys.

**Key-normalization contract.**  A partitioner must satisfy
``a == b ⇒ partition(a) == partition(b)``: Python collapses equal keys of
different numeric types into one dict entry (``1``, ``1.0`` and ``True``
are the *same* map-output group key), so if their hashes differed, one
logical key group could be routed to different reduce partitions depending
on which representative a mapper emitted first.  :func:`stable_hash`
therefore normalizes numerics before hashing — ``bool`` and integral
``float`` values are hashed through the ``int`` path, and the same rule
applies element-wise inside tuples/lists/frozensets — mirroring CPython's
own cross-type numeric hash invariant.  Property-tested in
``tests/test_mr_shuffle.py`` (``a == b ⇒ stable_hash(a) == stable_hash(b)``
over a mixed-type corpus).

:func:`group_sort_key` gives reducers a deterministic key order even when
one job emits keys of several incomparable types: keys are tagged by
comparison class (numbers, strings, bytes, tuples, …) before their value,
so ``sorted`` compares values only within a class and never raises
``TypeError``.
"""

from __future__ import annotations

import math
import zlib
from typing import Any

_MASK = (1 << 61) - 1


def stable_hash(value: Any) -> int:
    """Deterministic, process-independent hash of common key types.

    Equal keys hash equal even across numeric types (see the module
    docstring): ``stable_hash(True) == stable_hash(1) == stable_hash(1.0)``.
    """
    if value is None:
        return 0x9E3779B1
    if isinstance(value, bool):
        # bool is an int subclass and True == 1: hash through the int path.
        return stable_hash(int(value))
    if isinstance(value, int):
        return (value * 0x9E3779B97F4A7C15) & _MASK
    if isinstance(value, float):
        if math.isfinite(value) and value.is_integer():
            # 2.0 == 2 must land on the same partition as the int form.
            return stable_hash(int(value))
        if math.isinf(value):
            return 0x7F4A7C15 if value > 0 else 0x2545F491
        if math.isnan(value):  # NaN != NaN; any stable value will do.
            return 0x6C62272E
        return stable_hash(value.as_integer_ratio())
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8")) * 0x9E3779B1 & _MASK
    if isinstance(value, bytes):
        return zlib.crc32(value) * 0x9E3779B1 & _MASK
    if isinstance(value, (tuple, list)):
        acc = 0x345678
        for item in value:
            acc = (acc * 1000003) ^ stable_hash(item)
            acc &= _MASK
        return acc ^ len(value)
    if isinstance(value, frozenset):
        acc = 0
        for item in value:
            acc ^= stable_hash(item)
        return acc & _MASK
    return zlib.crc32(repr(value).encode("utf-8")) & _MASK


def default_partition(key: Any, n_partitions: int) -> int:
    """Hash partitioner (Hadoop's default): ``stable_hash(key) % n``."""
    return stable_hash(key) % n_partitions


def group_sort_key(key: Any):
    """Deterministic ordering for reduce groups, total across mixed types.

    Every key maps to a ``(class_tag, value)`` pair: tags (plain strings)
    order the comparison classes, and values are only compared within one
    class, where they are mutually comparable.  Numbers — ``bool``/``int``/
    ``float`` — share one class (Python compares them cross-type), tuples
    and lists recurse element-wise so ``(1, "a")`` and ``(1, 2)`` order
    deterministically instead of raising, and exotic types fall back to
    ``repr`` under a tag that sorts last.
    """
    if isinstance(key, bool):
        return ("num", int(key))
    if isinstance(key, (int, float)):
        return ("num", key)
    if isinstance(key, str):
        return ("str", key)
    if isinstance(key, bytes):
        return ("bytes", key)
    if isinstance(key, (tuple, list)):
        return ("tuple", tuple(group_sort_key(item) for item in key))
    if key is None:
        return ("none", 0)
    return ("~" + type(key).__name__, repr(key))
