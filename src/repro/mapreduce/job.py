"""The MapReduce job contract.

A job subclasses :class:`MapReduceJob` and overrides ``map`` and ``reduce``
(plus optionally ``setup``, ``combine`` and ``partition``), mirroring the
Hadoop programming model the paper's Algorithm 1 is written against:

``Map:    <k1, v1>        → list(<k2, v2>)``
``Reduce: <k2, list(v2)>  → list(<k3, v3>)``

``map`` and ``reduce`` receive an ``emit(key, value)`` callback rather than
returning lists, which keeps large fan-out jobs allocation-friendly.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.mapreduce.counters import Counters
from repro.mapreduce.shuffle import default_partition

Emit = Callable[[Any, Any], None]
Pair = Tuple[Any, Any]


class JobContext:
    """Per-task context: counters plus the task's identity.

    ``setup`` implementations use the context to stash broadcast data (the
    paper's Algorithm 1 loads the global ordering in ``SetUp``).
    """

    def __init__(self, task_id: int, phase: str, counters: Counters) -> None:
        self.task_id = task_id
        self.phase = phase
        self.counters = counters

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        """Convenience passthrough to the task's counters."""
        self.counters.increment(group, name, amount)


class MapReduceJob:
    """Base class for jobs run by :class:`~repro.mapreduce.runtime.SimulatedCluster`."""

    #: Human-readable job name (shows up in metrics and reports).
    name: str = "job"

    def setup(self, context: JobContext) -> None:
        """Called once per task before any map/reduce call."""

    def map(self, key: Any, value: Any, emit: Emit, context: JobContext) -> None:
        """Process one input pair; default is the identity map."""
        emit(key, value)

    def combine(
        self, key: Any, values: List[Any], context: JobContext
    ) -> Optional[Iterable[Pair]]:
        """Optional map-side combiner.

        Return an iterable of pairs to replace the buffered pairs for
        ``key``, or ``None`` (default) for no combining.
        """
        return None

    def reduce(
        self, key: Any, values: List[Any], emit: Emit, context: JobContext
    ) -> None:
        """Process one key group; default re-emits every value."""
        for value in values:
            emit(key, value)

    def partition(self, key: Any, n_partitions: int) -> int:
        """Route ``key`` to a reduce partition; default is hash partitioning."""
        return default_partition(key, n_partitions)
