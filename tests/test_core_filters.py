"""Tests for the four fragment filters (Lemmas 1–4).

The crucial property is *safety*: a filter may only prune pairs whose true
similarity is below θ.  Completeness is intentionally not required (filters
are allowed to keep dissimilar pairs; verification removes them).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FilterConfig
from repro.core.filters import FragmentFilters
from repro.core.joins import merge_intersection
from repro.core.partitioning import VerticalPartitioner
from repro.errors import ConfigError
from repro.similarity.functions import SimilarityFunction, get_similarity_function

rank_sets = st.lists(st.integers(0, 59), min_size=1, max_size=25, unique=True).map(
    lambda xs: tuple(sorted(xs))
)
cut_sets = st.lists(st.integers(1, 59), min_size=0, max_size=6, unique=True).map(
    lambda xs: tuple(sorted(xs))
)
thetas = st.sampled_from([0.5, 0.6, 0.75, 0.8, 0.9, 0.95])
funcs = st.sampled_from(list(SimilarityFunction))


class TestFilterConfig:
    def test_default_all_on(self):
        config = FilterConfig()
        assert config.strl and config.segl and config.segi and config.segd

    def test_none(self):
        config = FilterConfig.none()
        assert not (config.strl or config.segl or config.segi or config.segd)

    def test_only(self):
        config = FilterConfig.only("strl", "segd")
        assert config.strl and config.segd
        assert not config.segl and not config.segi

    def test_only_unknown_raises(self):
        with pytest.raises(ConfigError):
            FilterConfig.only("bogus")


class TestKnownCases:
    def test_paper_example_2(self):
        """Example 2: s='A,B,D,E,G', t='B,D,E,F,K', θ=0.8, pivots {D, G}.

        The paper concludes the pair is pruned without verification
        (sim = 3/7 < 0.8).  Our segment boundaries differ slightly (a pivot
        token starts the next segment rather than ending the previous one),
        so the check is the behavioural one: no fragment ever emits a
        partial count for this pair.
        """
        partitioner = VerticalPartitioner((3, 6))  # cut ranks of D and G
        seg_s = dict(partitioner.split(0, (0, 1, 3, 4, 6)))
        seg_t = dict(partitioner.split(1, (1, 3, 4, 5, 10)))
        filters = FragmentFilters(0.8, SimilarityFunction.JACCARD, FilterConfig())
        for i in set(seg_s) & set(seg_t):
            pruned = filters.pre_intersection(seg_s[i], seg_t[i])
            if pruned is None:
                common = merge_intersection(seg_s[i].tokens, seg_t[i].tokens)
                pruned = (
                    "disjoint"
                    if common == 0
                    else filters.post_intersection(seg_s[i], seg_t[i], common)
                )
            assert pruned is not None

    def test_strl_prunes_length_mismatch(self):
        partitioner = VerticalPartitioner(())
        (_, short), = partitioner.split(0, (1, 2))
        (_, long), = partitioner.split(1, tuple(range(20)))
        filters = FragmentFilters(0.8, SimilarityFunction.JACCARD, FilterConfig())
        assert filters.pre_intersection(short, long) == "strl"

    def test_identical_records_never_pruned(self):
        partitioner = VerticalPartitioner((5,))
        segs_a = dict(partitioner.split(0, (1, 2, 7, 8)))
        segs_b = dict(partitioner.split(1, (1, 2, 7, 8)))
        filters = FragmentFilters(0.9, SimilarityFunction.JACCARD, FilterConfig())
        for i in segs_a:
            seg_a, seg_b = segs_a[i], segs_b[i]
            assert filters.pre_intersection(seg_a, seg_b) is None
            common = merge_intersection(seg_a.tokens, seg_b.tokens)
            assert filters.post_intersection(seg_a, seg_b, common) is None

    def test_disabled_filters_never_prune(self):
        partitioner = VerticalPartitioner(())
        (_, short), = partitioner.split(0, (1,))
        (_, long), = partitioner.split(1, tuple(range(30)))
        filters = FragmentFilters(0.9, SimilarityFunction.JACCARD, FilterConfig.none())
        assert filters.pre_intersection(short, long) is None
        assert filters.post_intersection(short, long, 0) is None


class TestFilterSafety:
    """Property: pruned pairs are always truly dissimilar."""

    @settings(max_examples=300, deadline=None)
    @given(funcs, thetas, cut_sets, rank_sets, rank_sets)
    def test_no_similar_pair_pruned(self, func, theta, cuts, ranks_s, ranks_t):
        similarity = get_similarity_function(func)
        score = similarity(set(ranks_s), set(ranks_t))
        partitioner = VerticalPartitioner(cuts)
        segs_s = dict(partitioner.split(0, ranks_s))
        segs_t = dict(partitioner.split(1, ranks_t))
        filters = FragmentFilters(theta, func, FilterConfig())
        for i in set(segs_s) & set(segs_t):
            seg_s, seg_t = segs_s[i], segs_t[i]
            pruned = filters.pre_intersection(seg_s, seg_t)
            if pruned is None:
                common = merge_intersection(seg_s.tokens, seg_t.tokens)
                pruned = filters.post_intersection(seg_s, seg_t, common)
            if pruned is not None:
                assert score < theta + 1e-9, (
                    f"filter {pruned} pruned a pair with sim={score} >= {theta}"
                )

    @settings(max_examples=150, deadline=None)
    @given(thetas, cut_sets, rank_sets)
    def test_self_pair_never_pruned(self, theta, cuts, ranks):
        """A record paired with an identical copy survives all filters."""
        partitioner = VerticalPartitioner(cuts)
        segs_a = dict(partitioner.split(0, ranks))
        segs_b = dict(partitioner.split(1, ranks))
        filters = FragmentFilters(theta, SimilarityFunction.JACCARD, FilterConfig())
        for i in segs_a:
            assert filters.pre_intersection(segs_a[i], segs_b[i]) is None
            common = len(segs_a[i])
            assert filters.post_intersection(segs_a[i], segs_b[i], common) is None


class TestFilterPowerOrdering:
    """SegI (actual intersection) subsumes SegL (its upper bound)."""

    @settings(max_examples=150, deadline=None)
    @given(funcs, thetas, cut_sets, rank_sets, rank_sets)
    def test_segi_at_least_as_strong_as_segl(self, func, theta, cuts, ranks_s, ranks_t):
        partitioner = VerticalPartitioner(cuts)
        segs_s = dict(partitioner.split(0, ranks_s))
        segs_t = dict(partitioner.split(1, ranks_t))
        segl_only = FragmentFilters(theta, func, FilterConfig.only("segl"))
        segi_only = FragmentFilters(theta, func, FilterConfig.only("segi"))
        for i in set(segs_s) & set(segs_t):
            seg_s, seg_t = segs_s[i], segs_t[i]
            common = merge_intersection(seg_s.tokens, seg_t.tokens)
            if segl_only.pre_intersection(seg_s, seg_t) == "segl":
                assert segi_only.post_intersection(seg_s, seg_t, common) == "segi"
