"""Concurrency stress tests for the service's LRU cache.

The service is probed from thread fan-outs (``search_batch`` over the
thread executor, callers sharing one :class:`SimilarityService` across
request threads).  Before the cache grew an internal lock, concurrent
``move_to_end``/``popitem`` on the backing ``OrderedDict`` could corrupt
it (KeyError from ``popitem`` on an entry another thread just moved,
sizes drifting past capacity, evictions lost).  These tests hammer
exactly that pattern with a tiny capacity so evictions race refreshes on
every operation.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.service import LRUCache, SegmentIndex, SimilarityService
from tests.conftest import random_collection

THREADS = 8
OPS_PER_THREAD = 400


class TestLRUCacheUnderThreads:
    def test_concurrent_put_get_stays_consistent(self):
        cache = LRUCache(4)  # tiny: every put races an eviction
        errors = []
        barrier = threading.Barrier(THREADS)

        def hammer(seed):
            barrier.wait()
            try:
                for i in range(OPS_PER_THREAD):
                    key = f"k{(seed * 31 + i) % 16}"
                    if cache.get(key) is None:
                        cache.put(key, (seed, i))
                    if i % 64 == 0:
                        cache.keys()
                        len(cache)
            except Exception as exc:  # corruption surfaces as KeyError etc.
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(seed,))
            for seed in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, f"cache corrupted under threads: {errors[:3]}"
        assert len(cache) <= 4
        # Every surviving key must still be retrievable.
        for key in cache.keys():
            assert cache.get(key) is not None

    def test_concurrent_clear_and_put(self):
        cache = LRUCache(4)
        errors = []

        def writer():
            try:
                for i in range(OPS_PER_THREAD):
                    cache.put(f"k{i % 8}", i)
            except Exception as exc:
                errors.append(exc)

        def clearer():
            try:
                for _ in range(OPS_PER_THREAD // 4):
                    cache.clear()
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads.append(threading.Thread(target=clearer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 4


class TestServiceUnderThreads:
    def test_search_batch_hammered_from_threads(self):
        """Many threads share one service with a tiny cache; results must
        match a single-threaded reference run and nothing may raise."""
        corpus = random_collection(60, seed=77)
        index = SegmentIndex.build(corpus, n_vertical=5)
        queries = [list(record.tokens) for record in corpus][:20]
        theta = 0.5

        reference = SimilarityService(
            SegmentIndex.build(corpus, n_vertical=5), cache_size=1024
        ).search_batch(queries, theta)

        service = SimilarityService(index, cache_size=3, executor="thread")

        def probe(offset):
            rotated = queries[offset % len(queries):] + queries[:offset % len(queries)]
            return service.search_batch(rotated, theta)

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            outcomes = list(pool.map(probe, range(24)))

        for offset, hits in zip(range(24), outcomes):
            shift = offset % len(queries)
            expected = reference[shift:] + reference[:shift]
            assert hits == expected
        # The tiny cache was thrashed but never corrupted.
        info = service.cache_info()
        assert info["size"] <= 3
        assert info["capacity"] == 3

    def test_single_search_hammered_from_threads(self):
        corpus = random_collection(40, seed=78)
        service = SimilarityService(
            SegmentIndex.build(corpus, n_vertical=4), cache_size=2
        )
        queries = [list(record.tokens) for record in corpus][:10]
        expected = [service.search(tokens, 0.5) for tokens in queries]

        def probe(i):
            return service.search(queries[i % len(queries)], 0.5)

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            outcomes = list(pool.map(probe, range(200)))
        for i, hits in enumerate(outcomes):
            assert hits == expected[i % len(queries)]
