"""Unit tests for repro.data.records."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.records import Record, RecordCollection
from repro.errors import DataError


class TestRecord:
    def test_make_deduplicates(self):
        record = Record.make(1, ["a", "b", "a", "c", "b"])
        assert record.tokens == ("a", "b", "c")

    def test_make_preserves_first_seen_order(self):
        record = Record.make(1, ["c", "a", "c", "b"])
        assert record.tokens == ("c", "a", "b")

    def test_size(self):
        assert Record.make(0, ["x", "y"]).size == 2

    def test_empty(self):
        record = Record.make(0, [])
        assert record.size == 0
        assert record.token_set() == frozenset()

    def test_token_set(self):
        assert Record.make(0, ["a", "b"]).token_set() == {"a", "b"}

    def test_frozen(self):
        record = Record.make(0, ["a"])
        with pytest.raises(AttributeError):
            record.rid = 5

    @given(st.lists(st.text(min_size=1, max_size=3)))
    def test_make_always_unique(self, tokens):
        record = Record.make(0, tokens)
        assert len(record.tokens) == len(set(record.tokens))
        assert set(record.tokens) == set(tokens)


class TestRecordCollection:
    def test_iteration_order(self):
        collection = RecordCollection.from_token_lists([["a"], ["b"], ["c"]])
        assert [record.rid for record in collection] == [0, 1, 2]

    def test_len(self):
        assert len(RecordCollection.from_token_lists([["a"], ["b"]])) == 2

    def test_getitem(self):
        collection = RecordCollection.from_token_lists([["a"], ["b"]])
        assert collection[1].tokens == ("b",)

    def test_get_by_rid(self):
        collection = RecordCollection([Record.make(7, ["x"])])
        assert collection.get(7).tokens == ("x",)

    def test_get_missing_raises(self):
        with pytest.raises(DataError):
            RecordCollection().get(0)

    def test_contains(self):
        collection = RecordCollection([Record.make(3, ["x"])])
        assert 3 in collection
        assert 4 not in collection

    def test_duplicate_rid_rejected(self):
        collection = RecordCollection([Record.make(1, ["a"])])
        with pytest.raises(DataError):
            collection.add(Record.make(1, ["b"]))

    def test_sizes(self):
        collection = RecordCollection.from_token_lists([["a"], ["b", "c"]])
        assert collection.sizes() == [1, 2]

    def test_copy_constructor(self):
        original = RecordCollection.from_token_lists([["a"], ["b"]])
        copy = RecordCollection(original)
        assert len(copy) == 2
        assert copy.get(0) is original.get(0)
