"""Tests for the verification MapReduce job."""

from __future__ import annotations

import pytest

from repro.core.verify_job import VerificationJob
from repro.mapreduce.runtime import ClusterSpec, SimulatedCluster
from repro.similarity.functions import SimilarityFunction


@pytest.fixture
def verify_cluster():
    return SimulatedCluster(ClusterSpec(workers=2))


def _run(verify_cluster, pairs, theta=0.6, func=SimilarityFunction.JACCARD):
    job = VerificationJob(theta, func)
    return verify_cluster.run_job(job, pairs)


class TestAggregation:
    def test_sums_partial_counts(self, verify_cluster):
        # Pair (0, 1): counts 2 + 3 = 5 common of sizes 6 and 6 → J = 5/7.
        pairs = [((0, 1), (2, 6, 6)), ((0, 1), (3, 6, 6))]
        result = _run(verify_cluster, pairs, theta=0.7)
        assert dict(result.output) == {(0, 1): pytest.approx(5 / 7)}

    def test_below_threshold_dropped(self, verify_cluster):
        pairs = [((0, 1), (2, 6, 6))]  # J = 2/10 = 0.2
        result = _run(verify_cluster, pairs, theta=0.7)
        assert result.output == []

    def test_multiple_pairs_independent(self, verify_cluster):
        pairs = [
            ((0, 1), (5, 5, 5)),  # identical → 1.0
            ((2, 3), (1, 5, 5)),  # 1/9 → dropped
        ]
        result = _run(verify_cluster, pairs, theta=0.9)
        assert dict(result.output) == {(0, 1): pytest.approx(1.0)}

    def test_counters(self, verify_cluster):
        pairs = [((0, 1), (5, 5, 5)), ((2, 3), (1, 5, 5))]
        result = _run(verify_cluster, pairs, theta=0.9)
        assert result.counters.get("fsjoin.verify", "candidates") == 2
        assert result.counters.get("fsjoin.verify", "results") == 1


class TestCombiner:
    def test_combiner_preserves_totals(self, verify_cluster):
        pairs = [((0, 1), (1, 8, 8)) for _ in range(6)]  # six fragments × 1
        result = _run(verify_cluster, pairs, theta=0.5)
        # total common = 6 of sizes 8, 8 → J = 6/10.
        assert dict(result.output) == {(0, 1): pytest.approx(0.6)}

    def test_combiner_shrinks_shuffle(self, verify_cluster):
        pairs = [((0, 1), (1, 8, 8)) for _ in range(50)]
        result = _run(verify_cluster, pairs, theta=0.5)
        assert result.metrics.shuffle_records < 50


class TestSimilarityFunctions:
    @pytest.mark.parametrize(
        "func,expected",
        [
            (SimilarityFunction.JACCARD, 4 / 6),
            (SimilarityFunction.DICE, 8 / 10),
            (SimilarityFunction.COSINE, 4 / 5),
        ],
    )
    def test_verification_rules(self, verify_cluster, func, expected):
        """Section V-B's three rules, with c=4, |s|=|t|=5."""
        pairs = [((0, 1), (4, 5, 5))]
        result = _run(verify_cluster, pairs, theta=0.5, func=func)
        assert dict(result.output) == {(0, 1): pytest.approx(expected)}
