"""WAL unit tests: durability envelope, batch atomicity, torn-tail replay."""

from __future__ import annotations

import pytest

from repro.chaos import ChaosConfig, FaultInjector, FaultSchedule
from repro.data.records import Record
from repro.errors import DFSError, WALError
from repro.ingest import WriteAheadLog
from repro.ingest.wal import KIND_COMMIT, KIND_RECORD, entry_digest
from repro.mapreduce.hdfs import InMemoryDFS


def _records(*rids):
    return [Record.make(rid, [f"t{rid}", f"u{rid}"]) for rid in rids]


class TestAppendReplay:
    def test_roundtrip_one_batch(self):
        wal = WriteAheadLog(InMemoryDFS(), "wal")
        batch_id, commit_seq = wal.append_batch(_records(1, 2, 3))
        assert (batch_id, commit_seq) == (0, 3)

        result = WriteAheadLog(wal.dfs, "wal").replay()
        assert len(result.batches) == 1
        assert result.batches[0].batch_id == 0
        assert [r.rid for r in result.batches[0].records] == [1, 2, 3]
        assert result.last_seq == 3
        assert result.torn_entries == 0
        assert result.truncated_at is None

    def test_replay_preserves_batch_and_record_order(self):
        wal = WriteAheadLog(InMemoryDFS(), "wal")
        wal.append_batch(_records(5, 4))
        wal.append_batch(_records(9))
        result = WriteAheadLog(wal.dfs, "wal").replay()
        assert [b.batch_id for b in result.batches] == [0, 1]
        assert [r.rid for r in result.batches[0].records] == [5, 4]
        assert result.committed_records() == 3

    def test_replay_after_seq_skips_applied_batches(self):
        wal = WriteAheadLog(InMemoryDFS(), "wal")
        _, first_commit = wal.append_batch(_records(1))
        wal.append_batch(_records(2))
        result = WriteAheadLog(wal.dfs, "wal").replay(after_seq=first_commit)
        assert [b.batch_id for b in result.batches] == [1]
        # The skipped batch's entries are still scanned (state positioning).
        assert result.entries_seen == 4
        assert result.next_batch_id == 2

    def test_recovered_writer_continues_sequence(self):
        wal = WriteAheadLog(InMemoryDFS(), "wal")
        wal.append_batch(_records(1))
        recovered = WriteAheadLog(wal.dfs, "wal")
        recovered.replay()
        recovered.append_batch(_records(2))
        result = WriteAheadLog(wal.dfs, "wal").replay()
        assert [b.batch_id for b in result.batches] == [0, 1]
        assert result.last_seq == 3

    def test_empty_batch_rejected(self):
        with pytest.raises(WALError):
            WriteAheadLog(InMemoryDFS(), "wal").append_batch([])

    def test_empty_log_replay(self):
        result = WriteAheadLog(InMemoryDFS(), "wal").replay()
        assert result.batches == []
        assert result.last_seq == -1
        assert result.next_batch_id == 0


class TestSegmentation:
    def test_segments_roll_and_list_in_order(self):
        wal = WriteAheadLog(InMemoryDFS(), "wal", segment_entries=4)
        for i in range(5):
            wal.append_batch(_records(i))
        paths = wal.segment_paths()
        assert len(paths) > 1
        assert paths == sorted(paths)
        result = WriteAheadLog(wal.dfs, "wal", segment_entries=4).replay()
        assert [b.batch_id for b in result.batches] == list(range(5))

    def test_truncate_through_drops_only_covered_segments(self):
        wal = WriteAheadLog(InMemoryDFS(), "wal", segment_entries=2)
        commits = [wal.append_batch(_records(i))[1] for i in range(4)]
        before = len(wal.segment_paths())
        dropped = wal.truncate_through(commits[1])
        assert dropped >= 1
        assert len(wal.segment_paths()) == before - dropped
        # Batches beyond the applied point are still replayable.
        result = WriteAheadLog(wal.dfs, "wal", segment_entries=2).replay(
            after_seq=commits[1]
        )
        assert [b.batch_id for b in result.batches] == [2, 3]

    def test_foreign_file_in_wal_dir_is_typed(self):
        dfs = InMemoryDFS()
        wal = WriteAheadLog(dfs, "wal")
        wal.append_batch(_records(1))
        dfs.write("wal/not-a-segment", [])
        with pytest.raises(WALError):
            WriteAheadLog(dfs, "wal").replay()

    def test_stats_shape(self):
        wal = WriteAheadLog(InMemoryDFS(), "wal")
        wal.append_batch(_records(1, 2))
        stats = wal.stats()
        assert stats["segments"] == 1
        assert stats["entries"] == 3
        assert stats["bytes"] > 0
        assert stats["next_batch"] == 1


class TestTornWrites:
    def _tear_commit_marker(self, dfs, wal_root="wal"):
        """Append a batch whose commit-marker append is killed."""
        injector = FaultInjector(FaultSchedule(0, ChaosConfig()))
        torn_dfs = injector.attach_dfs(dfs)
        wal = WriteAheadLog(torn_dfs, wal_root)
        wal.append_batch(_records(1))
        injector.schedule_kill("append", wal.current_path, after=1)
        with pytest.raises(DFSError):
            wal.append_batch(_records(2, 3))
        dfs.fault_hook = None
        return wal

    def test_torn_batch_is_discarded_whole(self):
        dfs = InMemoryDFS()
        self._tear_commit_marker(dfs)
        result = WriteAheadLog(dfs, "wal").replay()
        assert [b.batch_id for b in result.batches] == [0]
        assert result.torn_entries == 2
        # The torn records' seqs are burned: the writer resumes after them.
        assert result.last_seq == 3

    def test_torn_batch_id_is_never_reused(self):
        """A recovered writer must not reuse a torn batch's id — replay
        would merge the torn records into the new batch."""
        dfs = InMemoryDFS()
        self._tear_commit_marker(dfs)
        recovered = WriteAheadLog(dfs, "wal")
        recovered.replay()
        batch_id, _ = recovered.append_batch(_records(7))
        assert batch_id == 2
        result = WriteAheadLog(dfs, "wal").replay()
        assert [(b.batch_id, [r.rid for r in b.records])
                for b in result.batches] == [(0, [1]), (2, [7])]

    def test_corrupt_entry_truncates_the_tail(self):
        dfs = InMemoryDFS()
        wal = WriteAheadLog(dfs, "wal")
        wal.append_batch(_records(1))
        wal.append_batch(_records(2))
        path = wal.current_path
        entries = dfs.read(path)
        # Flip a byte of batch 1's record payload: digest check must fail
        # there and discard everything after it, commit marker included.
        seq, (kind, batch_id, digest, payload) = entries[2]
        entries[2] = (seq, (kind, batch_id, digest, (99, ("evil",))))
        dfs.write(path, entries, overwrite=True)

        result = WriteAheadLog(dfs, "wal").replay()
        assert [b.batch_id for b in result.batches] == [0]
        assert result.truncated_at == 2
        assert result.truncated_entries == 2

    def test_non_monotonic_sequence_truncates(self):
        dfs = InMemoryDFS()
        wal = WriteAheadLog(dfs, "wal")
        wal.append_batch(_records(1))
        path = wal.current_path
        entries = dfs.read(path)
        replayed = (0, (KIND_RECORD, 9,
                        entry_digest(0, KIND_RECORD, 9, (9, ("x",))),
                        (9, ("x",))))
        dfs.append(path, [replayed])
        result = WriteAheadLog(dfs, "wal").replay()
        assert result.truncated_at == len(entries)
        assert [b.batch_id for b in result.batches] == [0]

    def test_damage_in_earlier_segment_hides_later_segments(self):
        dfs = InMemoryDFS()
        wal = WriteAheadLog(dfs, "wal", segment_entries=2)
        for i in range(3):
            wal.append_batch(_records(i))
        first = wal.segment_path(0)
        entries = dfs.read(first)
        entries[0] = ("garbage", "entry")
        dfs.write(first, entries, overwrite=True)
        result = WriteAheadLog(dfs, "wal", segment_entries=2).replay()
        assert result.batches == []
        assert result.truncated_at == 0
        assert result.truncated_entries == 6

    def test_entry_digest_is_canonical(self):
        a = entry_digest(3, KIND_COMMIT, 1, 2)
        assert a == entry_digest(3, KIND_COMMIT, 1, 2)
        assert a != entry_digest(4, KIND_COMMIT, 1, 2)
        assert a != entry_digest(3, KIND_RECORD, 1, 2)
