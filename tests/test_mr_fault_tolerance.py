"""Fault-tolerance tests: task retries with output isolation.

Hadoop re-executes failed tasks; a retried task's earlier partial output
must never leak into the job output.  The runtime models this with a
failure injector and per-attempt output buffering.
"""

from __future__ import annotations

import pytest

from repro.baselines.naive import naive_self_join
from repro.core import FSJoin, FSJoinConfig
from repro.errors import ConfigError, ExecutionError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import ClusterSpec, SimulatedCluster
from tests.conftest import random_collection


class WordCount(MapReduceJob):
    name = "wordcount"

    def map(self, key, value, emit, context):
        for token in value.split():
            emit(token, 1)

    def reduce(self, key, values, emit, context):
        emit(key, sum(values))


LINES = [(i, f"w{i % 5} w{i % 3} common") for i in range(40)]


def fail_first_attempts(phases=("map", "reduce")):
    """Every task of the given phases fails its first attempt."""

    def injector(phase, task_id, attempt):
        return phase in phases and attempt == 1

    return injector


class TestRetries:
    def test_output_identical_after_retries(self):
        clean = SimulatedCluster(ClusterSpec(workers=3)).run_job(WordCount(), LINES)
        faulty = SimulatedCluster(
            ClusterSpec(workers=3), failure_injector=fail_first_attempts()
        ).run_job(WordCount(), LINES)
        assert sorted(faulty.output) == sorted(clean.output)

    def test_no_partial_output_leaks(self):
        """Retried tasks must not double their emissions."""
        faulty = SimulatedCluster(
            ClusterSpec(workers=3), failure_injector=fail_first_attempts()
        ).run_job(WordCount(), LINES)
        counts = dict(faulty.output)
        assert counts["common"] == 40  # not 80

    def test_retries_counted(self):
        spec = ClusterSpec(workers=2, map_slots=2, reduce_slots=2)
        result = SimulatedCluster(
            spec, failure_injector=fail_first_attempts(("map",))
        ).run_job(WordCount(), LINES, num_map_tasks=4)
        assert result.counters.get("mapreduce", "map_task_retries") == 4
        assert result.counters.get("mapreduce", "reduce_task_retries") == 0

    def test_single_flaky_task(self):
        def injector(phase, task_id, attempt):
            return phase == "reduce" and task_id == 0 and attempt < 3

        result = SimulatedCluster(
            ClusterSpec(workers=2), failure_injector=injector
        ).run_job(WordCount(), LINES)
        assert result.counters.get("mapreduce", "reduce_task_retries") == 2
        clean = SimulatedCluster(ClusterSpec(workers=2)).run_job(WordCount(), LINES)
        assert sorted(result.output) == sorted(clean.output)

    def test_exhausted_attempts_abort_job(self):
        cluster = SimulatedCluster(
            ClusterSpec(workers=2),
            failure_injector=lambda phase, task_id, attempt: phase == "map",
            max_task_attempts=3,
        )
        with pytest.raises(ExecutionError, match="failed 3 attempts"):
            cluster.run_job(WordCount(), LINES)

    def test_invalid_max_attempts(self):
        with pytest.raises(ConfigError):
            SimulatedCluster(max_task_attempts=0)

    def test_counters_not_duplicated_by_retries(self):
        """User counters from failed attempts are discarded with the output."""

        class Counting(WordCount):
            def map(self, key, value, emit, context):
                context.increment("user", "map_calls")
                super().map(key, value, emit, context)

        result = SimulatedCluster(
            ClusterSpec(workers=2), failure_injector=fail_first_attempts(("map",))
        ).run_job(Counting(), LINES)
        assert result.counters.get("user", "map_calls") == len(LINES)


class TestFullPipelineUnderFailures:
    def test_fsjoin_results_survive_failures(self):
        records = random_collection(40, seed=33)
        theta = 0.7
        oracle = frozenset(naive_self_join(records, theta))
        cluster = SimulatedCluster(
            ClusterSpec(workers=3), failure_injector=fail_first_attempts()
        )
        result = FSJoin(FSJoinConfig(theta=theta, n_vertical=4), cluster).run(records)
        assert result.result_set() == oracle
        assert result.counters().get("mapreduce", "map_task_retries") > 0
