"""Fault-tolerance tests: retries, speculative execution, failure history.

Hadoop re-executes failed tasks; a retried task's earlier partial output
must never leak into the job output.  The runtime models this with a
failure injector and per-attempt output buffering.  Slow tasks get the
same treatment via speculative execution: a straggling attempt races a
backup, only the winner's output and counters fold into the job, and the
race is decided deterministically — so results stay bit-identical on
every executor backend.  When a task does die for good, the
:class:`~repro.errors.ExecutionError` carries the full per-attempt
failure history.
"""

from __future__ import annotations

import pytest

from repro.baselines.naive import naive_self_join
from repro.core import FSJoin, FSJoinConfig
from repro.errors import ConfigError, ExecutionError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import (
    SPECULATIVE_ATTEMPT_OFFSET,
    ClusterSpec,
    SimulatedCluster,
)
from tests.conftest import random_collection


class WordCount(MapReduceJob):
    name = "wordcount"

    def map(self, key, value, emit, context):
        for token in value.split():
            emit(token, 1)

    def reduce(self, key, values, emit, context):
        emit(key, sum(values))


LINES = [(i, f"w{i % 5} w{i % 3} common") for i in range(40)]


class FailFirstAttempts:
    """Every task of the given phases fails its first attempt.

    A module-level class (not a closure) so the process executor can
    pickle it along with the task payloads.
    """

    def __init__(self, phases=("map", "reduce")):
        self.phases = tuple(phases)

    def __call__(self, phase, task_id, attempt):
        return phase in self.phases and attempt == 1


def fail_first_attempts(phases=("map", "reduce")):
    return FailFirstAttempts(phases)


EXECUTORS = ["serial", "thread", "process"]


class TestRetries:
    def test_output_identical_after_retries(self):
        clean = SimulatedCluster(ClusterSpec(workers=3)).run_job(WordCount(), LINES)
        faulty = SimulatedCluster(
            ClusterSpec(workers=3), failure_injector=fail_first_attempts()
        ).run_job(WordCount(), LINES)
        assert sorted(faulty.output) == sorted(clean.output)

    def test_no_partial_output_leaks(self):
        """Retried tasks must not double their emissions."""
        faulty = SimulatedCluster(
            ClusterSpec(workers=3), failure_injector=fail_first_attempts()
        ).run_job(WordCount(), LINES)
        counts = dict(faulty.output)
        assert counts["common"] == 40  # not 80

    def test_retries_counted(self):
        spec = ClusterSpec(workers=2, map_slots=2, reduce_slots=2)
        result = SimulatedCluster(
            spec, failure_injector=fail_first_attempts(("map",))
        ).run_job(WordCount(), LINES, num_map_tasks=4)
        assert result.counters.get("mapreduce", "map_task_retries") == 4
        assert result.counters.get("mapreduce", "reduce_task_retries") == 0

    def test_single_flaky_task(self):
        def injector(phase, task_id, attempt):
            return phase == "reduce" and task_id == 0 and attempt < 3

        result = SimulatedCluster(
            ClusterSpec(workers=2), failure_injector=injector
        ).run_job(WordCount(), LINES)
        assert result.counters.get("mapreduce", "reduce_task_retries") == 2
        clean = SimulatedCluster(ClusterSpec(workers=2)).run_job(WordCount(), LINES)
        assert sorted(result.output) == sorted(clean.output)

    def test_exhausted_attempts_abort_job(self):
        cluster = SimulatedCluster(
            ClusterSpec(workers=2),
            failure_injector=lambda phase, task_id, attempt: phase == "map",
            max_task_attempts=3,
        )
        with pytest.raises(ExecutionError, match="failed 3 attempts"):
            cluster.run_job(WordCount(), LINES)

    def test_invalid_max_attempts(self):
        with pytest.raises(ConfigError):
            SimulatedCluster(max_task_attempts=0)

    def test_counters_not_duplicated_by_retries(self):
        """User counters from failed attempts are discarded with the output."""

        class Counting(WordCount):
            def map(self, key, value, emit, context):
                context.increment("user", "map_calls")
                super().map(key, value, emit, context)

        result = SimulatedCluster(
            ClusterSpec(workers=2), failure_injector=fail_first_attempts(("map",))
        ).run_job(Counting(), LINES)
        assert result.counters.get("user", "map_calls") == len(LINES)


class TestRetriesAcrossExecutors:
    """Retry accounting must be identical on every executor backend."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_retry_counts_per_backend(self, executor):
        spec = ClusterSpec(workers=2, map_slots=2, reduce_slots=2)
        result = SimulatedCluster(
            spec,
            failure_injector=FailFirstAttempts(("map",)),
            executor=executor,
        ).run_job(WordCount(), LINES, num_map_tasks=4)
        assert result.counters.get("mapreduce", "map_task_retries") == 4
        assert result.counters.get("mapreduce", "reduce_task_retries") == 0

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_output_identical_per_backend(self, executor):
        clean = SimulatedCluster(ClusterSpec(workers=3)).run_job(WordCount(), LINES)
        faulty = SimulatedCluster(
            ClusterSpec(workers=3),
            failure_injector=FailFirstAttempts(),
            executor=executor,
        ).run_job(WordCount(), LINES)
        assert faulty.output == clean.output


class TestRetrySpans:
    """Traces must record one span per task *attempt*, retries included."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_one_retried_span_per_injected_failure(self, executor):
        from repro.observability import Tracer

        tracer = Tracer()
        spec = ClusterSpec(workers=2, map_slots=2, reduce_slots=2)
        result = SimulatedCluster(
            spec,
            failure_injector=FailFirstAttempts(("map",)),
            executor=executor,
            tracer=tracer,
        ).run_job(WordCount(), LINES, num_map_tasks=4, num_reduce_tasks=2)
        spans = tracer.spans()

        retried = [s for s in spans if s.attrs.get("status") == "retried"]
        injected = result.counters.get("mapreduce", "map_task_retries")
        assert injected == 4
        assert len(retried) == injected
        assert {s.phase for s in retried} == {"map"}
        # Each failed first attempt is followed by a successful second one.
        for task_id in range(4):
            attempts = sorted(
                (s.attrs["attempt"], s.attrs["status"])
                for s in spans
                if s.phase == "map" and s.attrs.get("task_id") == task_id
            )
            assert attempts == [(1, "retried"), (2, "ok")]

    def test_flaky_task_span_sequence(self):
        from repro.observability import Tracer

        def injector(phase, task_id, attempt):
            return phase == "reduce" and task_id == 0 and attempt < 3

        tracer = Tracer()
        SimulatedCluster(
            ClusterSpec(workers=2), failure_injector=injector, tracer=tracer
        ).run_job(WordCount(), LINES, num_reduce_tasks=2)
        attempts = sorted(
            (s.attrs["attempt"], s.attrs["status"])
            for s in tracer.spans()
            if s.phase == "reduce" and s.attrs.get("task_id") == 0
        )
        assert attempts == [(1, "retried"), (2, "retried"), (3, "ok")]


class Straggle:
    """Deterministic straggler injector (module-level: process-picklable).

    Slows the selected tasks' *primary* attempts by ``delay`` and their
    speculative backups by ``backup_delay`` (attempt ids at or above
    ``SPECULATIVE_ATTEMPT_OFFSET`` are backups).
    """

    def __init__(self, tasks=(0,), phase="map", delay=0.5, backup_delay=0.0):
        self.tasks = tuple(tasks)
        self.phase = phase
        self.delay = delay
        self.backup_delay = backup_delay

    def __call__(self, phase, task_id, attempt):
        if phase != self.phase or task_id not in self.tasks:
            return 0.0
        if attempt >= SPECULATIVE_ATTEMPT_OFFSET:
            return self.backup_delay
        return self.delay


class CrashAlways:
    """Every attempt of one task dies (module-level: process-picklable)."""

    def __init__(self, phase="map", task_id=0):
        self.phase = phase
        self.task_id = task_id

    def __call__(self, phase, task_id, attempt):
        return phase == self.phase and task_id == self.task_id


class RaisingMap(WordCount):
    """A map task that raises its own exception (not an injected death)."""

    def map(self, key, value, emit, context):
        if key % 4 == 0:
            raise ValueError(f"boom on key {key}")
        super().map(key, value, emit, context)


class TestSpeculativeExecution:
    def spec_cluster(self, straggler, threshold=0.1, executor="serial",
                     tracer=None):
        kwargs = {"tracer": tracer} if tracer is not None else {}
        return SimulatedCluster(
            ClusterSpec(workers=3, map_slots=2, reduce_slots=2),
            straggler_injector=straggler,
            speculative=True,
            straggler_threshold=threshold,
            executor=executor,
            **kwargs,
        )

    def test_backup_launched_and_wins(self):
        cluster = self.spec_cluster(Straggle(delay=0.5, backup_delay=0.0))
        result = cluster.run_job(WordCount(), LINES, num_map_tasks=4)
        assert result.counters.get("mapreduce", "map_speculative_backups") == 1
        assert result.counters.get("mapreduce", "map_speculative_wins") == 1

    def test_slow_backup_loses(self):
        """The race is decided by threshold + backup_delay < delay."""
        cluster = self.spec_cluster(Straggle(delay=0.5, backup_delay=0.45))
        result = cluster.run_job(WordCount(), LINES, num_map_tasks=4)
        assert result.counters.get("mapreduce", "map_speculative_backups") == 1
        assert result.counters.get("mapreduce", "map_speculative_wins") == 0

    def test_below_threshold_no_backup(self):
        cluster = self.spec_cluster(Straggle(delay=0.05), threshold=0.1)
        result = cluster.run_job(WordCount(), LINES, num_map_tasks=4)
        assert result.counters.get("mapreduce", "map_speculative_backups") == 0

    def test_speculation_off_by_default(self):
        cluster = SimulatedCluster(
            ClusterSpec(workers=3), straggler_injector=Straggle(delay=0.5)
        )
        result = cluster.run_job(WordCount(), LINES, num_map_tasks=4)
        assert result.counters.get("mapreduce", "map_speculative_backups") == 0

    def test_invalid_threshold(self):
        with pytest.raises(ConfigError):
            SimulatedCluster(speculative=True, straggler_threshold=0.0)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_output_bit_identical_per_backend(self, executor):
        clean = SimulatedCluster(
            ClusterSpec(workers=3, map_slots=2, reduce_slots=2)
        ).run_job(WordCount(), LINES, num_map_tasks=4, num_reduce_tasks=2)
        raced = self.spec_cluster(
            Straggle(tasks=(0, 1, 2, 3), delay=0.5), executor=executor
        ).run_job(WordCount(), LINES, num_map_tasks=4, num_reduce_tasks=2)
        assert raced.output == clean.output
        assert raced.counters.get("mapreduce", "map_speculative_wins") == 4

    def test_loser_counters_do_not_leak(self):
        """Both racers run to completion; only the winner's counters fold."""

        class Counting(WordCount):
            def map(self, key, value, emit, context):
                context.increment("user", "map_calls")
                super().map(key, value, emit, context)

        result = self.spec_cluster(
            Straggle(tasks=(0, 1, 2, 3), delay=0.5)
        ).run_job(Counting(), LINES, num_map_tasks=4)
        assert result.counters.get("user", "map_calls") == len(LINES)

    def test_win_emits_recovery_span_and_marks_loser(self):
        from repro.observability import Tracer

        tracer = Tracer()
        self.spec_cluster(Straggle(delay=0.5), tracer=tracer).run_job(
            WordCount(), LINES, num_map_tasks=4
        )
        spans = tracer.spans()
        wins = [s for s in spans if s.phase == "recovery"]
        assert len(wins) == 1
        assert wins[0].attrs["action"] == "speculative-win"
        losers = [
            s for s in spans if s.attrs.get("status") == "speculative-loser"
        ]
        assert len(losers) == 1
        assert losers[0].attrs["attempt"] < SPECULATIVE_ATTEMPT_OFFSET

    def test_deterministic_across_runs(self):
        def run():
            result = self.spec_cluster(
                Straggle(tasks=(0, 2), delay=0.3)
            ).run_job(WordCount(), LINES, num_map_tasks=4)
            return result.output, result.counters.as_dict()

        assert run() == run()


class TestFailureHistory:
    """ExecutionError must carry the per-attempt post-mortem."""

    def test_injected_failures_recorded_in_order(self):
        cluster = SimulatedCluster(
            ClusterSpec(workers=2),
            failure_injector=CrashAlways("map", 0),
            max_task_attempts=3,
        )
        with pytest.raises(ExecutionError) as excinfo:
            cluster.run_job(WordCount(), LINES, num_map_tasks=2)
        assert excinfo.value.attempts == (
            (1, "map", "injected task failure"),
            (2, "map", "injected task failure"),
            (3, "map", "injected task failure"),
        )

    def test_raised_exceptions_recorded_with_repr(self):
        cluster = SimulatedCluster(ClusterSpec(workers=2), max_task_attempts=2)
        with pytest.raises(ExecutionError) as excinfo:
            cluster.run_job(RaisingMap(), LINES, num_map_tasks=1)
        attempts = excinfo.value.attempts
        assert [a for a, _, _ in attempts] == [1, 2]
        assert all(phase == "map" for _, phase, _ in attempts)
        assert all("ValueError" in error for _, _, error in attempts)
        assert "boom on key" in attempts[0][2]

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_history_survives_every_backend(self, executor):
        """The history must survive pickling back from worker processes."""
        cluster = SimulatedCluster(
            ClusterSpec(workers=2),
            failure_injector=CrashAlways("map", 0),
            max_task_attempts=2,
            executor=executor,
        )
        with pytest.raises(ExecutionError) as excinfo:
            cluster.run_job(WordCount(), LINES, num_map_tasks=2)
        assert excinfo.value.attempts == (
            (1, "map", "injected task failure"),
            (2, "map", "injected task failure"),
        )

    def test_history_pickle_roundtrip(self):
        import pickle

        error = ExecutionError(
            "map task 0 failed 2 attempts",
            attempts=((1, "map", "x"), (2, "map", "y")),
        )
        clone = pickle.loads(pickle.dumps(error))
        assert clone.attempts == error.attempts
        assert str(clone) == str(error)


class TestRetryAccountingAudit:
    """No counter deltas may leak from failed or speculative-loser attempts.

    The audit: the same job under heavy retries *and* forced speculation
    must report exactly the counters of a clean run (user counters and
    task totals alike), on every executor backend.
    """

    class Audited(WordCount):
        def map(self, key, value, emit, context):
            context.increment("user", "map_calls")
            context.increment("user", "tokens", len(value.split()))
            super().map(key, value, emit, context)

        def reduce(self, key, values, emit, context):
            context.increment("user", "reduce_calls")
            super().reduce(key, values, emit, context)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_counters_identical_under_chaos(self, executor):
        clean = SimulatedCluster(ClusterSpec(workers=3)).run_job(
            self.Audited(), LINES, num_map_tasks=4, num_reduce_tasks=2
        )
        chaotic = SimulatedCluster(
            ClusterSpec(workers=3, map_slots=2, reduce_slots=2),
            failure_injector=FailFirstAttempts(),
            straggler_injector=Straggle(tasks=(0, 1, 2, 3), delay=0.4),
            speculative=True,
            straggler_threshold=0.1,
            executor=executor,
        ).run_job(self.Audited(), LINES, num_map_tasks=4, num_reduce_tasks=2)
        for group, name in (
            ("user", "map_calls"),
            ("user", "tokens"),
            ("user", "reduce_calls"),
        ):
            assert chaotic.counters.get(group, name) == clean.counters.get(
                group, name
            ), f"{group}.{name} leaked under retries/speculation"
        assert chaotic.output == clean.output


class TestFullPipelineUnderFailures:
    def test_fsjoin_results_survive_failures(self):
        records = random_collection(40, seed=33)
        theta = 0.7
        oracle = frozenset(naive_self_join(records, theta))
        cluster = SimulatedCluster(
            ClusterSpec(workers=3), failure_injector=fail_first_attempts()
        )
        result = FSJoin(FSJoinConfig(theta=theta, n_vertical=4), cluster).run(records)
        assert result.result_set() == oracle
        assert result.counters().get("mapreduce", "map_task_retries") > 0
