"""Fault-tolerance tests: task retries with output isolation.

Hadoop re-executes failed tasks; a retried task's earlier partial output
must never leak into the job output.  The runtime models this with a
failure injector and per-attempt output buffering.
"""

from __future__ import annotations

import pytest

from repro.baselines.naive import naive_self_join
from repro.core import FSJoin, FSJoinConfig
from repro.errors import ConfigError, ExecutionError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import ClusterSpec, SimulatedCluster
from tests.conftest import random_collection


class WordCount(MapReduceJob):
    name = "wordcount"

    def map(self, key, value, emit, context):
        for token in value.split():
            emit(token, 1)

    def reduce(self, key, values, emit, context):
        emit(key, sum(values))


LINES = [(i, f"w{i % 5} w{i % 3} common") for i in range(40)]


class FailFirstAttempts:
    """Every task of the given phases fails its first attempt.

    A module-level class (not a closure) so the process executor can
    pickle it along with the task payloads.
    """

    def __init__(self, phases=("map", "reduce")):
        self.phases = tuple(phases)

    def __call__(self, phase, task_id, attempt):
        return phase in self.phases and attempt == 1


def fail_first_attempts(phases=("map", "reduce")):
    return FailFirstAttempts(phases)


EXECUTORS = ["serial", "thread", "process"]


class TestRetries:
    def test_output_identical_after_retries(self):
        clean = SimulatedCluster(ClusterSpec(workers=3)).run_job(WordCount(), LINES)
        faulty = SimulatedCluster(
            ClusterSpec(workers=3), failure_injector=fail_first_attempts()
        ).run_job(WordCount(), LINES)
        assert sorted(faulty.output) == sorted(clean.output)

    def test_no_partial_output_leaks(self):
        """Retried tasks must not double their emissions."""
        faulty = SimulatedCluster(
            ClusterSpec(workers=3), failure_injector=fail_first_attempts()
        ).run_job(WordCount(), LINES)
        counts = dict(faulty.output)
        assert counts["common"] == 40  # not 80

    def test_retries_counted(self):
        spec = ClusterSpec(workers=2, map_slots=2, reduce_slots=2)
        result = SimulatedCluster(
            spec, failure_injector=fail_first_attempts(("map",))
        ).run_job(WordCount(), LINES, num_map_tasks=4)
        assert result.counters.get("mapreduce", "map_task_retries") == 4
        assert result.counters.get("mapreduce", "reduce_task_retries") == 0

    def test_single_flaky_task(self):
        def injector(phase, task_id, attempt):
            return phase == "reduce" and task_id == 0 and attempt < 3

        result = SimulatedCluster(
            ClusterSpec(workers=2), failure_injector=injector
        ).run_job(WordCount(), LINES)
        assert result.counters.get("mapreduce", "reduce_task_retries") == 2
        clean = SimulatedCluster(ClusterSpec(workers=2)).run_job(WordCount(), LINES)
        assert sorted(result.output) == sorted(clean.output)

    def test_exhausted_attempts_abort_job(self):
        cluster = SimulatedCluster(
            ClusterSpec(workers=2),
            failure_injector=lambda phase, task_id, attempt: phase == "map",
            max_task_attempts=3,
        )
        with pytest.raises(ExecutionError, match="failed 3 attempts"):
            cluster.run_job(WordCount(), LINES)

    def test_invalid_max_attempts(self):
        with pytest.raises(ConfigError):
            SimulatedCluster(max_task_attempts=0)

    def test_counters_not_duplicated_by_retries(self):
        """User counters from failed attempts are discarded with the output."""

        class Counting(WordCount):
            def map(self, key, value, emit, context):
                context.increment("user", "map_calls")
                super().map(key, value, emit, context)

        result = SimulatedCluster(
            ClusterSpec(workers=2), failure_injector=fail_first_attempts(("map",))
        ).run_job(Counting(), LINES)
        assert result.counters.get("user", "map_calls") == len(LINES)


class TestRetriesAcrossExecutors:
    """Retry accounting must be identical on every executor backend."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_retry_counts_per_backend(self, executor):
        spec = ClusterSpec(workers=2, map_slots=2, reduce_slots=2)
        result = SimulatedCluster(
            spec,
            failure_injector=FailFirstAttempts(("map",)),
            executor=executor,
        ).run_job(WordCount(), LINES, num_map_tasks=4)
        assert result.counters.get("mapreduce", "map_task_retries") == 4
        assert result.counters.get("mapreduce", "reduce_task_retries") == 0

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_output_identical_per_backend(self, executor):
        clean = SimulatedCluster(ClusterSpec(workers=3)).run_job(WordCount(), LINES)
        faulty = SimulatedCluster(
            ClusterSpec(workers=3),
            failure_injector=FailFirstAttempts(),
            executor=executor,
        ).run_job(WordCount(), LINES)
        assert faulty.output == clean.output


class TestRetrySpans:
    """Traces must record one span per task *attempt*, retries included."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_one_retried_span_per_injected_failure(self, executor):
        from repro.observability import Tracer

        tracer = Tracer()
        spec = ClusterSpec(workers=2, map_slots=2, reduce_slots=2)
        result = SimulatedCluster(
            spec,
            failure_injector=FailFirstAttempts(("map",)),
            executor=executor,
            tracer=tracer,
        ).run_job(WordCount(), LINES, num_map_tasks=4, num_reduce_tasks=2)
        spans = tracer.spans()

        retried = [s for s in spans if s.attrs.get("status") == "retried"]
        injected = result.counters.get("mapreduce", "map_task_retries")
        assert injected == 4
        assert len(retried) == injected
        assert {s.phase for s in retried} == {"map"}
        # Each failed first attempt is followed by a successful second one.
        for task_id in range(4):
            attempts = sorted(
                (s.attrs["attempt"], s.attrs["status"])
                for s in spans
                if s.phase == "map" and s.attrs.get("task_id") == task_id
            )
            assert attempts == [(1, "retried"), (2, "ok")]

    def test_flaky_task_span_sequence(self):
        from repro.observability import Tracer

        def injector(phase, task_id, attempt):
            return phase == "reduce" and task_id == 0 and attempt < 3

        tracer = Tracer()
        SimulatedCluster(
            ClusterSpec(workers=2), failure_injector=injector, tracer=tracer
        ).run_job(WordCount(), LINES, num_reduce_tasks=2)
        attempts = sorted(
            (s.attrs["attempt"], s.attrs["status"])
            for s in tracer.spans()
            if s.phase == "reduce" and s.attrs.get("task_id") == 0
        )
        assert attempts == [(1, "retried"), (2, "retried"), (3, "ok")]


class TestFullPipelineUnderFailures:
    def test_fsjoin_results_survive_failures(self):
        records = random_collection(40, seed=33)
        theta = 0.7
        oracle = frozenset(naive_self_join(records, theta))
        cluster = SimulatedCluster(
            ClusterSpec(workers=3), failure_injector=fail_first_attempts()
        )
        result = FSJoin(FSJoinConfig(theta=theta, n_vertical=4), cluster).run(records)
        assert result.result_set() == oracle
        assert result.counters().get("mapreduce", "map_task_retries") > 0
