"""Tests for the MapReduce execution engine."""

from __future__ import annotations

from collections import Counter
from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, ExecutionError
from repro.mapreduce.job import JobContext, MapReduceJob
from repro.mapreduce.runtime import ClusterSpec, SimulatedCluster


class WordCount(MapReduceJob):
    name = "wordcount"

    def map(self, key, value: str, emit, context):
        for token in value.split():
            emit(token, 1)

    def reduce(self, key, values: List[int], emit, context):
        emit(key, sum(values))


class CombiningWordCount(WordCount):
    def combine(self, key, values, context):
        return [(key, sum(values))]


class IdentityJob(MapReduceJob):
    name = "identity"


def _wordcount_reference(lines):
    counter = Counter()
    for line in lines:
        counter.update(line.split())
    return dict(counter)


class TestClusterSpec:
    def test_defaults_match_paper(self):
        spec = ClusterSpec()
        assert spec.workers == 10
        assert spec.reduce_slots == 3
        assert spec.default_reduce_tasks == 30

    @pytest.mark.parametrize("kwargs", [{"workers": 0}, {"map_slots": 0}, {"reduce_slots": -1}])
    def test_invalid_dimensions(self, kwargs):
        with pytest.raises(ConfigError):
            ClusterSpec(**kwargs)


class TestExecutionSemantics:
    def test_wordcount(self, cluster):
        lines = ["a b a", "b c", "a"]
        result = cluster.run_job(WordCount(), list(enumerate(lines)))
        assert dict(result.output) == _wordcount_reference(lines)

    def test_empty_input(self, cluster):
        result = cluster.run_job(WordCount(), [])
        assert result.output == []
        assert result.metrics.input_records == 0

    def test_identity_default_map_reduce(self, cluster):
        pairs = [("k1", "v1"), ("k2", "v2"), ("k1", "v3")]
        result = cluster.run_job(IdentityJob(), pairs)
        assert sorted(result.output) == sorted(pairs)

    def test_combiner_preserves_semantics(self, cluster):
        lines = ["x y x y", "y z", "x"]
        pairs = list(enumerate(lines))
        plain = cluster.run_job(WordCount(), pairs)
        combined = cluster.run_job(CombiningWordCount(), pairs)
        assert dict(plain.output) == dict(combined.output)

    def test_combiner_reduces_shuffle(self, cluster):
        lines = ["a a a a a a"] * 20
        pairs = list(enumerate(lines))
        plain = cluster.run_job(WordCount(), pairs)
        combined = cluster.run_job(CombiningWordCount(), pairs)
        assert combined.metrics.shuffle_records < plain.metrics.shuffle_records

    def test_combiner_key_change_rejected(self, cluster):
        class BadCombiner(WordCount):
            def combine(self, key, values, context):
                return [(key + "_changed", sum(values))]

        with pytest.raises(ExecutionError):
            cluster.run_job(BadCombiner(), [(0, "a b")])

    def test_partition_out_of_range_rejected(self, cluster):
        class BadPartition(IdentityJob):
            def partition(self, key, n):
                return n  # one past the end

        with pytest.raises(ExecutionError):
            cluster.run_job(BadPartition(), [("k", "v")])

    def test_custom_partitioner_respected(self, cluster):
        class AllToZero(IdentityJob):
            def partition(self, key, n):
                return 0

        result = cluster.run_job(AllToZero(), [(i, i) for i in range(10)])
        loads = [t.input_records for t in result.metrics.reduce_tasks]
        assert loads[0] == 10
        assert sum(loads[1:]) == 0

    def test_reduce_groups_sorted_by_key(self, cluster):
        class KeyOrder(MapReduceJob):
            def map(self, key, value, emit, context):
                emit(value, None)

            def reduce(self, key, values, emit, context):
                emit(key, None)

        result = cluster.run_job(
            KeyOrder(), [(i, v) for i, v in enumerate([5, 3, 9, 1])],
            num_reduce_tasks=1,
        )
        assert [k for k, _ in result.output] == [1, 3, 5, 9]

    def test_setup_called_per_task(self, cluster):
        calls = []

        class SetupJob(IdentityJob):
            def setup(self, context: JobContext):
                calls.append(context.phase)

        cluster.run_job(SetupJob(), [(i, i) for i in range(20)], num_map_tasks=4,
                        num_reduce_tasks=3)
        assert calls.count("map") == 4
        assert calls.count("reduce") == 3

    def test_deterministic_across_runs(self, cluster):
        pairs = [(i, f"w{i % 7} w{i % 3}") for i in range(50)]
        first = cluster.run_job(WordCount(), pairs)
        second = cluster.run_job(WordCount(), pairs)
        assert first.output == second.output
        assert [t.input_records for t in first.metrics.reduce_tasks] == [
            t.input_records for t in second.metrics.reduce_tasks
        ]

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.text(alphabet="abcde ", max_size=20), max_size=30),
        st.integers(1, 8),
        st.integers(1, 8),
    )
    def test_wordcount_any_task_layout(self, lines, n_map, n_reduce):
        cluster = SimulatedCluster(ClusterSpec(workers=2))
        result = cluster.run_job(
            WordCount(), list(enumerate(lines)),
            num_map_tasks=n_map, num_reduce_tasks=n_reduce,
        )
        assert dict(result.output) == _wordcount_reference(lines)


class TestMetrics:
    def test_record_counts(self, cluster):
        lines = ["a b", "c"]
        result = cluster.run_job(WordCount(), list(enumerate(lines)))
        metrics = result.metrics
        assert metrics.input_records == 2
        assert metrics.map_output_records == 3
        assert metrics.shuffle_records == 3
        assert metrics.output_records == 3  # a, b, c

    def test_bytes_positive(self, cluster):
        result = cluster.run_job(WordCount(), [(0, "alpha beta")])
        assert result.metrics.input_bytes > 0
        assert result.metrics.shuffle_bytes > 0
        assert result.metrics.output_bytes > 0

    def test_compute_seconds_measured(self, cluster):
        result = cluster.run_job(WordCount(), [(i, "a b c") for i in range(50)])
        assert all(t.compute_seconds >= 0 for t in result.metrics.map_tasks)
        assert any(t.compute_seconds > 0 for t in result.metrics.map_tasks)

    def test_task_counts_match_request(self, cluster):
        result = cluster.run_job(
            WordCount(), [(i, "x") for i in range(40)],
            num_map_tasks=5, num_reduce_tasks=7,
        )
        assert len(result.metrics.map_tasks) == 5
        assert len(result.metrics.reduce_tasks) == 7

    def test_map_tasks_capped_by_input(self, cluster):
        result = cluster.run_job(WordCount(), [(0, "x")], num_map_tasks=8)
        assert len(result.metrics.map_tasks) == 1

    def test_counters_aggregated(self, cluster):
        class CountingJob(IdentityJob):
            def map(self, key, value, emit, context):
                context.increment("test", "mapped")
                emit(key, value)

        result = cluster.run_job(CountingJob(), [(i, i) for i in range(9)])
        assert result.counters.get("test", "mapped") == 9

    def test_invalid_task_counts(self, cluster):
        with pytest.raises(ConfigError):
            cluster.run_job(WordCount(), [(0, "x")], num_reduce_tasks=0)

    def test_duplication_factor_identity(self, cluster):
        pairs = [(i, f"value-{i}") for i in range(20)]
        result = cluster.run_job(IdentityJob(), pairs)
        assert result.metrics.duplication_record_factor() == pytest.approx(1.0)
        assert result.metrics.duplication_byte_factor() == pytest.approx(1.0)

    def test_skew_metrics(self, cluster):
        class Skewed(IdentityJob):
            def partition(self, key, n):
                return 0

        skewed = cluster.run_job(Skewed(), [(i, "x" * 50) for i in range(30)])
        balanced = cluster.run_job(IdentityJob(), [(i, "x" * 50) for i in range(30)])
        assert skewed.metrics.reduce_load_cv() > balanced.metrics.reduce_load_cv()
        assert skewed.metrics.reduce_load_max_over_mean() > 1.5
