"""Property tests for the token-interning layer (:class:`TokenVocab`).

Three invariants the columnar hot path rests on:

* encode/decode round-trips (ids are a lossless view of the token set);
* interned ids are *stable under growth* — ``apply_batch`` appends new
  tokens after every existing id and never remaps one;
* the index and the cluster router encode queries identically, so every
  prefix computed from an :class:`EncodedQuery` agrees across paths (for
  both jaccard and cosine prefix lengths).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import build_cluster
from repro.data.records import Record
from repro.errors import DataError
from repro.service import SegmentIndex, TokenVocab
from repro.similarity.thresholds import prefix_length
from tests.conftest import random_collection

#: The corpus vocabulary (t000..t049 — what random_collection emits).
KNOWN = [f"t{i:03d}" for i in range(50)]
#: Tokens the seeded corpus can never contain.
ALIEN = [f"z{i:03d}" for i in range(20)]

known_lists = st.lists(st.sampled_from(KNOWN), min_size=1, max_size=15)
mixed_lists = st.lists(st.sampled_from(KNOWN + ALIEN), min_size=1, max_size=15)


@pytest.fixture(scope="module")
def index():
    return SegmentIndex.build(random_collection(40, seed=13), n_vertical=4)


@pytest.fixture(scope="module")
def vocab(index):
    return index.vocab


class TestRoundTrip:
    @given(tokens=known_lists)
    @settings(max_examples=50, deadline=None)
    def test_encode_decode_round_trip(self, vocab, tokens):
        """decode(encode(tokens)) is the deduplicated token set."""
        present = [t for t in tokens if vocab.knows(t)]
        if not present:
            return
        ids = vocab.encode_record(present)
        assert list(ids) == sorted(set(ids)), "ids strictly increasing"
        assert set(vocab.decode(ids)) == set(present)

    @given(tokens=mixed_lists)
    @settings(max_examples=50, deadline=None)
    def test_encode_known_counts_unknowns(self, vocab, tokens):
        ids, unknown = vocab.encode_known(tokens)
        unique = set(tokens)
        assert unknown == sum(1 for t in unique if not vocab.knows(t))
        assert len(ids) == len(unique) - unknown
        assert ids == sorted(ids)
        assert set(vocab.decode(ids)) == {t for t in unique if vocab.knows(t)}

    def test_unknown_token_raises_on_record_encode(self, vocab):
        with pytest.raises(DataError, match="not in the vocabulary"):
            vocab.encode_record(["zz-not-interned"])

    def test_id_token_inverse(self, vocab):
        for token in KNOWN[:10]:
            if vocab.knows(token):
                assert vocab.token_of(vocab.id_of(token)) == token


class TestGrowthStability:
    @given(batch_tokens=st.lists(st.sampled_from(ALIEN), min_size=1,
                                 max_size=8, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_apply_batch_never_remaps_existing_ids(self, batch_tokens):
        """New tokens append; every pre-existing id survives unchanged."""
        index = SegmentIndex.build(random_collection(30, seed=7), n_vertical=4)
        before = {t: index.vocab.id_of(t)
                  for t in KNOWN if index.vocab.knows(t)}
        size_before = index.vocab.size
        next_rid = max(index.rids()) + 1
        index.apply_batch([Record.make(next_rid, batch_tokens)])
        for token, token_id in before.items():
            assert index.vocab.id_of(token) == token_id
        for token in batch_tokens:
            assert index.vocab.id_of(token) >= size_before
        assert index.vocab.size == size_before + len(batch_tokens)

    def test_encoded_records_stay_valid_after_growth(self):
        index = SegmentIndex.build(random_collection(30, seed=7), n_vertical=4)
        rid = index.rids()[0]
        encoded_before = tuple(index._ranks[rid])
        index.apply_batch([Record.make(999, ["z900", "z901", "t000"])])
        assert tuple(index._ranks[rid]) == encoded_before


class TestCrossPathEncoding:
    """Index and router must agree on the interning by construction."""

    @pytest.fixture(scope="class")
    def router(self, index):
        return build_cluster(index, n_shards=3, replication=1)

    @given(tokens=mixed_lists,
           theta=st.sampled_from([0.5, 0.7, 0.9]),
           func=st.sampled_from(["jaccard", "cosine"]))
    @settings(max_examples=50, deadline=None)
    def test_encoded_query_prefixes_agree(self, index, router, tokens,
                                          theta, func):
        via_index = index.encode_query(tokens)
        via_router = router.encode_query(tokens)
        assert via_index == via_router
        limit = min(prefix_length(func, theta, via_index.size),
                    len(via_index.ranks))
        assert via_index.ranks[:limit] == via_router.ranks[:limit]
        # The array view carries the same ids as the hashable tuple.
        assert tuple(via_index.ids) == via_index.ranks
