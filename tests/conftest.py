"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import Optional

import pytest

from repro.data.records import Record, RecordCollection
from repro.mapreduce.runtime import ClusterSpec, SimulatedCluster


def random_collection(
    n: int,
    vocab: int = 50,
    max_len: int = 20,
    dup_prob: float = 0.4,
    mutation: float = 0.15,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> RecordCollection:
    """A random collection with planted near-duplicates.

    ``dup_prob`` of the records clone an earlier record with ``mutation``
    of its tokens replaced, so joins at realistic thresholds have results.
    """
    rng = rng or random.Random(seed)
    tokens = [f"t{i:03d}" for i in range(vocab)]
    records = []
    for rid in range(n):
        if records and rng.random() < dup_prob:
            base = list(rng.choice(records).tokens)
            for _ in range(max(0, int(len(base) * mutation))):
                if base:
                    base[rng.randrange(len(base))] = rng.choice(tokens)
            records.append(Record.make(rid, base))
        else:
            length = rng.randint(1, max_len)
            records.append(Record.make(rid, rng.sample(tokens, min(length, vocab))))
    return RecordCollection(records)


@pytest.fixture
def small_records() -> RecordCollection:
    """A tiny deterministic collection with known near-duplicates."""
    return RecordCollection.from_token_lists(
        [
            ["a", "b", "c", "d", "e"],
            ["a", "b", "c", "d", "f"],  # jaccard 4/6 with rid 0
            ["a", "b", "c", "d", "e"],  # identical to rid 0
            ["x", "y", "z"],
            ["x", "y", "z", "w"],  # jaccard 3/4 with rid 3
            ["q"],
        ]
    )


@pytest.fixture
def medium_records() -> RecordCollection:
    return random_collection(80, vocab=60, max_len=25, seed=11)


@pytest.fixture
def cluster() -> SimulatedCluster:
    return SimulatedCluster(ClusterSpec(workers=4, map_slots=2, reduce_slots=2))


# The paper-figure example from Fig. 2: strings over tokens A..K.
PAPER_FIG2 = [
    ["B", "C", "I", "J", "K"],
    ["B", "C", "E", "F", "G"],
    ["A", "D", "H", "I", "J"],
    ["B", "D", "E", "H", "K"],
]


@pytest.fixture
def paper_records() -> RecordCollection:
    return RecordCollection.from_token_lists(PAPER_FIG2)
