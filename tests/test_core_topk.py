"""Tests for the top-k extension."""

from __future__ import annotations

import pytest

from repro.baselines.naive import naive_self_join
from repro.core import FSJoinConfig, topk_similar_pairs
from repro.errors import ConfigError
from tests.conftest import random_collection


def _oracle_topk(records, k, min_theta=0.1):
    scored = naive_self_join(records, min_theta)
    ranked = sorted(scored.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:k]


class TestValidation:
    def test_bad_k(self, medium_records):
        with pytest.raises(ConfigError):
            topk_similar_pairs(medium_records, 0)

    def test_bad_theta_band(self, medium_records):
        with pytest.raises(ConfigError):
            topk_similar_pairs(medium_records, 1, start_theta=0.5, min_theta=0.8)

    def test_bad_shrink(self, medium_records):
        with pytest.raises(ConfigError):
            topk_similar_pairs(medium_records, 1, shrink=1.0)


class TestTopK:
    def test_matches_oracle(self, cluster):
        records = random_collection(50, seed=5)
        for k in (1, 5, 12):
            got = topk_similar_pairs(records, k, cluster=cluster)
            expected = _oracle_topk(records, k)
            assert [pair for pair, _ in got] == [pair for pair, _ in expected]
            for (_, got_score), (_, want_score) in zip(got, expected):
                assert got_score == pytest.approx(want_score)

    def test_sorted_descending(self, cluster):
        records = random_collection(50, seed=6)
        scores = [score for _, score in topk_similar_pairs(records, 8, cluster=cluster)]
        assert scores == sorted(scores, reverse=True)

    def test_fewer_results_than_k(self, cluster):
        """A collection with few close pairs returns what exists."""
        records = random_collection(15, vocab=300, dup_prob=0.0, seed=7)
        got = topk_similar_pairs(records, 50, cluster=cluster, min_theta=0.5)
        assert len(got) <= 50
        assert all(score >= 0.5 for _, score in got)

    def test_respects_template_config(self, cluster):
        records = random_collection(40, seed=8)
        template = FSJoinConfig(theta=0.5, n_vertical=3, n_horizontal=2)
        got = topk_similar_pairs(records, 5, cluster=cluster, config=template)
        expected = _oracle_topk(records, 5)
        assert [pair for pair, _ in got] == [pair for pair, _ in expected]

    def test_k_one_is_best_pair(self, cluster):
        records = random_collection(40, seed=9)
        ((pair, score),) = topk_similar_pairs(records, 1, cluster=cluster)
        (want_pair, want_score) = _oracle_topk(records, 1)[0]
        assert pair == want_pair
        assert score == pytest.approx(want_score)


class TestIndexReuse:
    """Threshold-relaxation rounds probing a standing service index."""

    def test_bit_identical_to_pipeline_path(self, cluster):
        from repro.service import SegmentIndex

        records = random_collection(50, seed=5)
        index = SegmentIndex.build(records, n_vertical=4)
        for k in (1, 5, 12):
            via_pipeline = topk_similar_pairs(records, k, cluster=cluster)
            via_index = topk_similar_pairs(records, k, index=index)
            # Bit-identical: same pairs, same float scores, same order.
            assert via_index == via_pipeline

    def test_bit_identical_for_cosine(self, cluster):
        from repro.service import SegmentIndex

        records = random_collection(40, seed=10)
        index = SegmentIndex.build(records, n_vertical=4)
        via_pipeline = topk_similar_pairs(records, 6, func="cosine", cluster=cluster)
        via_index = topk_similar_pairs(records, 6, func="cosine", index=index)
        assert via_index == via_pipeline

    def test_index_path_needs_no_cluster(self):
        from repro.service import SegmentIndex

        records = random_collection(30, seed=11)
        index = SegmentIndex.build(records, n_vertical=4)
        got = topk_similar_pairs(records, 4, index=index)
        expected = _oracle_topk(records, 4)
        assert [pair for pair, _ in got] == [pair for pair, _ in expected]

    def test_index_path_respects_template_filters(self, cluster):
        from repro.core import FilterConfig
        from repro.service import SegmentIndex

        records = random_collection(40, seed=12)
        index = SegmentIndex.build(records, n_vertical=4)
        template = FSJoinConfig(theta=0.5, filters=FilterConfig.none())
        via_pipeline = topk_similar_pairs(
            records, 5, cluster=cluster, config=template
        )
        via_index = topk_similar_pairs(records, 5, config=template, index=index)
        assert via_index == via_pipeline
