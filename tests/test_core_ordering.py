"""Tests for the global ordering phase."""

from __future__ import annotations

import pytest

from repro.core.ordering import GlobalOrder, compute_global_ordering
from repro.data.records import Record, RecordCollection
from repro.errors import DataError


class TestGlobalOrder:
    def test_ascending_frequency(self):
        order = GlobalOrder([("common", 10), ("rare", 1), ("mid", 5)])
        assert order.rank("rare") == 0
        assert order.rank("mid") == 1
        assert order.rank("common") == 2

    def test_ties_broken_lexicographically(self):
        order = GlobalOrder([("b", 3), ("a", 3)])
        assert order.rank("a") == 0
        assert order.rank("b") == 1

    def test_vocab_size(self):
        assert GlobalOrder([("a", 1), ("b", 2)]).vocab_size == 2

    def test_token_inverse(self):
        order = GlobalOrder([("x", 2), ("y", 1)])
        assert order.token(order.rank("x")) == "x"

    def test_rank_frequencies_sorted(self):
        order = GlobalOrder([("a", 9), ("b", 1), ("c", 4)])
        assert list(order.rank_frequencies) == [1, 4, 9]
        assert order.frequency_of_rank(0) == 1

    def test_unknown_token_raises(self):
        with pytest.raises(DataError):
            GlobalOrder([("a", 1)]).rank("z")

    def test_encode_sorted(self):
        order = GlobalOrder([("a", 3), ("b", 1), ("c", 2)])
        record = Record.make(0, ["a", "b", "c"])
        ranks = order.encode(record)
        assert list(ranks) == sorted(ranks)
        assert order.decode(ranks) == ("b", "c", "a")

    def test_encode_unknown_token_raises(self):
        order = GlobalOrder([("a", 1)])
        with pytest.raises(DataError):
            order.encode(Record.make(0, ["a", "zzz"]))

    def test_encode_strictly_increasing(self):
        order = GlobalOrder([(f"t{i}", i + 1) for i in range(10)])
        ranks = order.encode(Record.make(0, [f"t{i}" for i in range(0, 10, 2)]))
        assert all(x < y for x, y in zip(ranks, ranks[1:]))


class TestComputeGlobalOrdering:
    def test_frequencies_correct(self, cluster, small_records):
        order, result = compute_global_ordering(cluster, small_records)
        # "a" appears in records 0, 1, 2.
        assert order.frequency_of_rank(order.rank("a")) == 3
        assert order.frequency_of_rank(order.rank("q")) == 1

    def test_rare_tokens_first(self, cluster, small_records):
        order, _ = compute_global_ordering(cluster, small_records)
        assert order.rank("q") < order.rank("a")

    def test_covers_whole_vocabulary(self, cluster, medium_records):
        order, _ = compute_global_ordering(cluster, medium_records)
        vocab = {token for record in medium_records for token in record.tokens}
        assert order.vocab_size == len(vocab)
        for token in vocab:
            assert 0 <= order.rank(token) < order.vocab_size

    def test_job_result_metrics(self, cluster, medium_records):
        _, result = compute_global_ordering(cluster, medium_records)
        assert result.metrics.job_name == "fsjoin-ordering"
        assert result.metrics.input_records == len(medium_records)

    def test_combiner_active(self, cluster, medium_records):
        _, result = compute_global_ordering(cluster, medium_records)
        total_tokens = sum(record.size for record in medium_records)
        assert result.metrics.shuffle_records < total_tokens
