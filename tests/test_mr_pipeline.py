"""Tests for PipelineResult aggregation."""

from __future__ import annotations

import pytest

from repro.core import FSJoin, FSJoinConfig
from repro.mapreduce.pipeline import PipelineResult
from repro.mapreduce.runtime import ClusterSpec, SimulatedCluster


@pytest.fixture
def pipeline_result(medium_records):
    cluster = SimulatedCluster(ClusterSpec(workers=3))
    return FSJoin(FSJoinConfig(theta=0.7, n_vertical=6), cluster).run(medium_records)


class TestPipelineResult:
    def test_algorithm_name(self, pipeline_result):
        assert pipeline_result.algorithm == "FS-Join-V"

    def test_result_pairs_keyed_small_large(self, pipeline_result):
        for rid_a, rid_b in pipeline_result.result_pairs:
            assert rid_a < rid_b

    def test_result_set_matches_pairs(self, pipeline_result):
        assert pipeline_result.result_set() == frozenset(pipeline_result.result_pairs)

    def test_job_count(self, pipeline_result):
        assert len(pipeline_result.job_results) == 3  # order, filter, verify

    def test_counters_merged(self, pipeline_result):
        counters = pipeline_result.counters()
        assert counters.get("fsjoin.map", "records") > 0
        assert counters.get("fsjoin.verify", "candidates") > 0

    def test_shuffle_totals(self, pipeline_result):
        per_job = [r.metrics.shuffle_bytes for r in pipeline_result.job_results]
        assert pipeline_result.total_shuffle_bytes() == sum(per_job)
        assert pipeline_result.total_shuffle_records() == sum(
            r.metrics.shuffle_records for r in pipeline_result.job_results
        )

    def test_simulated_time_sums_jobs(self, pipeline_result):
        spec = ClusterSpec(workers=10)
        total = pipeline_result.simulated_time(spec)
        per_job = pipeline_result.job_times(spec)
        assert len(per_job) == 3
        assert total.total_s == pytest.approx(sum(t.total_s for t in per_job))

    def test_job_metrics_order(self, pipeline_result):
        names = [m.job_name for m in pipeline_result.job_metrics()]
        assert names == ["fsjoin-ordering", "fsjoin-filter", "fsjoin-verify"]


class TestEmptyPipeline:
    def test_zero_everything(self):
        empty = PipelineResult(algorithm="none", pairs=[])
        assert empty.result_pairs == {}
        assert empty.total_shuffle_bytes() == 0
        assert empty.simulated_time(ClusterSpec()).total_s == 0.0
