"""Unit tests for repro.mapreduce.counters."""

from __future__ import annotations

from repro.mapreduce.counters import Counters


class TestCounters:
    def test_default_zero(self):
        assert Counters().get("g", "n") == 0

    def test_increment(self):
        counters = Counters()
        counters.increment("g", "n")
        counters.increment("g", "n", 4)
        assert counters.get("g", "n") == 5

    def test_groups_independent(self):
        counters = Counters()
        counters.increment("a", "x")
        counters.increment("b", "x", 2)
        assert counters.get("a", "x") == 1
        assert counters.get("b", "x") == 2

    def test_group_snapshot(self):
        counters = Counters()
        counters.increment("g", "one")
        counters.increment("g", "two", 2)
        assert counters.group("g") == {"one": 1, "two": 2}

    def test_group_snapshot_is_copy(self):
        counters = Counters()
        counters.increment("g", "n")
        snapshot = counters.group("g")
        snapshot["n"] = 99
        assert counters.get("g", "n") == 1

    def test_merge(self):
        left, right = Counters(), Counters()
        left.increment("g", "n", 1)
        right.increment("g", "n", 2)
        right.increment("h", "m", 3)
        left.merge(right)
        assert left.get("g", "n") == 3
        assert left.get("h", "m") == 3

    def test_merge_does_not_mutate_source(self):
        left, right = Counters(), Counters()
        right.increment("g", "n", 2)
        left.merge(right)
        left.increment("g", "n")
        assert right.get("g", "n") == 2

    def test_iteration_sorted(self):
        counters = Counters()
        counters.increment("b", "y")
        counters.increment("a", "x")
        assert list(counters) == [("a", "x", 1), ("b", "y", 1)]

    def test_as_dict(self):
        counters = Counters()
        counters.increment("g", "n", 7)
        assert counters.as_dict() == {"g": {"n": 7}}
