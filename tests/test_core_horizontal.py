"""Tests for horizontal (length-based) partitioning."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.horizontal import HorizontalPlan, build_horizontal_plan
from repro.errors import ConfigError
from repro.similarity.functions import SimilarityFunction
from repro.similarity.thresholds import length_lower_bound, length_upper_bound

length_lists = st.lists(st.integers(1, 300), min_size=2, max_size=120)
thetas = st.sampled_from([0.6, 0.7, 0.8, 0.9])
funcs = st.sampled_from(list(SimilarityFunction))


class TestPlanStructure:
    def test_trivial_plan(self):
        plan = build_horizontal_plan([5, 5, 5], 1, 0.8, SimilarityFunction.JACCARD)
        assert plan.n_partitions == 1
        assert plan.partitions_of(5) == [0]

    def test_partition_counts(self):
        plan = HorizontalPlan((10, 50), 0.8, SimilarityFunction.JACCARD)
        assert plan.n_pivots == 2
        assert plan.n_base == 3
        assert plan.n_partitions == 5

    def test_base_partition_boundaries(self):
        """Paper: < L_1 → h_0; ≥ L_t → h_t."""
        plan = HorizontalPlan((10, 50), 0.8, SimilarityFunction.JACCARD)
        assert plan.base_partition(9) == 0
        assert plan.base_partition(10) == 1
        assert plan.base_partition(49) == 1
        assert plan.base_partition(50) == 2

    def test_boundary_pivot_lookup(self):
        plan = HorizontalPlan((10, 50), 0.8, SimilarityFunction.JACCARD)
        assert plan.boundary_pivot(3) == 10
        assert plan.boundary_pivot(4) == 50
        with pytest.raises(ConfigError):
            plan.boundary_pivot(2)  # a base partition

    def test_is_boundary(self):
        plan = HorizontalPlan((10,), 0.8, SimilarityFunction.JACCARD)
        assert not plan.is_boundary(0)
        assert not plan.is_boundary(1)
        assert plan.is_boundary(2)

    def test_invalid_n_base(self):
        with pytest.raises(ConfigError):
            build_horizontal_plan([1, 2], 0, 0.8, SimilarityFunction.JACCARD)


class TestMembership:
    def test_near_pivot_joins_boundary(self):
        plan = HorizontalPlan((10,), 0.8, SimilarityFunction.JACCARD)
        # length 9 (just below): 9/0.8 = 11.25 ≥ 10 → boundary member.
        assert plan.partitions_of(9) == [0, 2]
        # length 10 (at pivot): lb(10) = 8 < 10 → boundary member.
        assert plan.partitions_of(10) == [1, 2]

    def test_far_from_pivot_stays_in_base(self):
        plan = HorizontalPlan((100,), 0.8, SimilarityFunction.JACCARD)
        assert plan.partitions_of(10) == [0]
        assert plan.partitions_of(300) == [1]

    def test_zero_length(self):
        plan = HorizontalPlan((10,), 0.8, SimilarityFunction.JACCARD)
        assert plan.partitions_of(0) == [0]


class TestPairAllowed:
    def test_base_allows_everything(self):
        plan = HorizontalPlan((10,), 0.8, SimilarityFunction.JACCARD)
        assert plan.pair_allowed(0, 3, 5)

    def test_boundary_requires_straddle(self):
        plan = HorizontalPlan((10,), 0.8, SimilarityFunction.JACCARD)
        assert plan.pair_allowed(2, 9, 11)
        assert plan.pair_allowed(2, 11, 9)  # order-insensitive
        assert not plan.pair_allowed(2, 8, 9)  # both below
        assert not plan.pair_allowed(2, 10, 12)  # both at/above


class TestBuildPlan:
    def test_requested_base_count_upper_bound(self):
        plan = build_horizontal_plan(
            list(range(1, 200)), 5, 0.8, SimilarityFunction.JACCARD
        )
        assert 1 <= plan.n_base <= 5

    def test_ratio_constraint_enforced(self):
        """Consecutive pivots must not allow a pair to straddle both."""
        plan = build_horizontal_plan(
            list(range(1, 300)), 40, 0.8, SimilarityFunction.JACCARD
        )
        for left, right in zip(plan.pivots, plan.pivots[1:]):
            assert right > length_upper_bound(
                SimilarityFunction.JACCARD, 0.8, left - 1
            )

    def test_pivots_strictly_increasing(self):
        plan = build_horizontal_plan(
            [1, 5, 9, 20, 80, 200] * 10, 6, 0.7, SimilarityFunction.JACCARD
        )
        assert all(a < b for a, b in zip(plan.pivots, plan.pivots[1:]))

    def test_ignores_zero_lengths(self):
        plan = build_horizontal_plan([0, 0, 5, 9], 2, 0.8, SimilarityFunction.JACCARD)
        assert all(pivot > 0 for pivot in plan.pivots)


class TestCoverageProperty:
    """The core correctness property: every potentially-similar pair is
    joined in exactly one horizontal partition."""

    @settings(max_examples=200, deadline=None)
    @given(length_lists, st.integers(2, 12), thetas, funcs)
    def test_exactly_once_coverage(self, lengths, n_base, theta, func):
        plan = build_horizontal_plan(lengths, n_base, theta, func)
        for len_s in set(lengths):
            parts_s = set(plan.partitions_of(len_s))
            low = length_lower_bound(func, theta, len_s)
            high = length_upper_bound(func, theta, len_s)
            for len_t in set(lengths):
                if not low <= len_t <= high:
                    continue  # pair cannot be similar; coverage not required
                parts_t = set(plan.partitions_of(len_t))
                joined_in = [
                    p
                    for p in parts_s & parts_t
                    if plan.pair_allowed(p, len_s, len_t)
                ]
                assert len(joined_in) == 1, (
                    f"lengths ({len_s}, {len_t}) joined in {joined_in} "
                    f"with pivots {plan.pivots}"
                )

    @settings(max_examples=100, deadline=None)
    @given(length_lists, st.integers(2, 8), thetas)
    def test_replication_bounded(self, lengths, n_base, theta):
        """A record joins its base partition plus at most n_pivots boundaries."""
        plan = build_horizontal_plan(
            lengths, n_base, theta, SimilarityFunction.JACCARD
        )
        for length in lengths:
            partitions = plan.partitions_of(length)
            assert 1 <= len(partitions) <= 1 + plan.n_pivots
            assert len(set(partitions)) == len(partitions)
