"""The StreamingIndex façade: write path, read path, recovery, integration.

The contract under test is the ISSUE's acceptance property: a streaming
index — memtable plus any mix of generations, before or after crashes —
must answer probes bit-identically to a single ``SegmentIndex`` over the
same records, and a major compaction must leave one generation whose
pickle bytes equal a fresh build's.
"""

from __future__ import annotations

import pickle

import pytest

from repro.data.records import Record, RecordCollection
from repro.errors import ClusterError, ConfigError, DataError
from repro.ingest import IngestConfig, StreamingIndex
from repro.mapreduce.hdfs import InMemoryDFS
from repro.service import SegmentIndex, SimilarityService, load_index
from repro.service.index import PROBE_PATHS
from tests.conftest import random_collection


@pytest.fixture(scope="module")
def corpus():
    return random_collection(80, seed=31)


def _stream(corpus, dfs=None, **config):
    settings = {"memtable_limit": 12, "fanout": 2}
    settings.update(config)
    return StreamingIndex.create(
        dfs if dfs is not None else InMemoryDFS(),
        records=RecordCollection(list(corpus)[:30]),
        n_vertical=5,
        config=IngestConfig(**settings),
    )


def _feed(streaming, corpus, batch=10):
    tail = list(corpus)[30:]
    for i in range(0, len(tail), batch):
        streaming.apply_batch(tail[i:i + batch])
    return streaming


class TestWritePath:
    def test_probe_equals_single_index_oracle(self, corpus):
        streaming = _feed(_stream(corpus), corpus)
        oracle = SegmentIndex.build(corpus, n_vertical=5)
        for path in PROBE_PATHS:
            streaming.probe_path = path
            for record in corpus:
                assert streaming.probe(record.tokens, 0.5) == oracle.probe(
                    record.tokens, 0.5
                ), f"record {record.rid} diverged on {path}"

    def test_probe_batch_equals_sequential(self, corpus):
        streaming = _feed(_stream(corpus), corpus)
        encoded = [
            streaming.encode_query(record.tokens)
            for record in list(corpus)[::7]
        ]
        assert streaming.probe_batch(encoded, 0.5) == [
            streaming.probe_encoded(query, 0.5) for query in encoded
        ]

    def test_auto_flush_and_compaction_bound_the_generations(self, corpus):
        streaming = _feed(_stream(corpus, memtable_limit=8), corpus)
        status = streaming.status()
        assert status["flushes"] >= 2
        assert status["compactions"] >= 1
        # Leveled compaction keeps the live set below the fanout per level.
        assert len(streaming.generations) < status["flushes"] + 1

    def test_flush_truncates_the_wal(self, corpus):
        streaming = _stream(corpus, auto_flush=False)
        streaming.apply_batch(list(corpus)[30:45])
        assert streaming.wal.stats()["segments"] == 1
        streaming.flush()
        assert streaming.wal.stats()["segments"] == 0
        assert len(streaming) == 45

    def test_duplicate_rid_rejected_against_every_tier(self, corpus):
        streaming = _feed(_stream(corpus), corpus)
        wal_before = streaming.wal.stats()["entries"]
        with pytest.raises(DataError):
            streaming.apply_batch([Record.make(corpus[0].rid, ["x"])])
        with pytest.raises(DataError):
            streaming.apply_batch([Record.make(corpus[-1].rid, ["x"])])
        with pytest.raises(DataError):
            streaming.apply_batch(
                [Record.make(7001, ["x"]), Record.make(7001, ["y"])]
            )
        with pytest.raises(DataError):
            streaming.apply_batch(
                [Record.make(7002, ["x"]), Record.make(2**63, ["y"])]
            )
        # A rejected batch leaves no trace: nothing logged, nothing applied.
        assert streaming.wal.stats()["entries"] == wal_before
        assert 7001 not in streaming and 7002 not in streaming

    def test_empty_batch_is_a_noop(self, corpus):
        streaming = _stream(corpus)
        assert streaming.apply_batch([]) == 0

    def test_major_compaction_is_structurally_identical(self, corpus):
        streaming = _feed(_stream(corpus), corpus)
        streaming.compact(major=True)
        assert len(streaming.generations) == 1
        assert pickle.dumps(streaming.generations[0].index) == pickle.dumps(
            streaming.to_segment_index()
        )

    def test_empty_bootstrap_grows_from_nothing(self):
        streaming = StreamingIndex.create(
            InMemoryDFS(), config=IngestConfig(memtable_limit=4, fanout=2)
        )
        assert len(streaming) == 0
        records = [Record.make(i, [f"t{j}" for j in range(i, i + 4)])
                   for i in range(10)]
        for i in range(0, 10, 2):
            streaming.apply_batch(records[i:i + 2])
        oracle = SegmentIndex.build(
            RecordCollection(records), n_vertical=5
        )
        for record in records:
            assert streaming.probe(record.tokens, 0.6) == oracle.probe(
                record.tokens, 0.6
            )

    def test_invalid_probe_path_is_typed(self, corpus):
        streaming = _stream(corpus)
        with pytest.raises(ConfigError):
            streaming.probe_path = "quantum"

    def test_invalid_config_is_typed(self):
        with pytest.raises(ConfigError):
            IngestConfig(memtable_limit=0)
        with pytest.raises(ConfigError):
            IngestConfig(fanout=1)


class TestRecovery:
    def test_recover_roundtrip_is_probe_identical(self, corpus):
        dfs = InMemoryDFS()
        streaming = _feed(_stream(corpus, dfs=dfs), corpus)
        recovered = StreamingIndex.recover(dfs)
        assert sorted(recovered.rids()) == sorted(streaming.rids())
        for record in list(corpus)[::6]:
            assert recovered.probe(record.tokens, 0.5) == streaming.probe(
                record.tokens, 0.5
            )

    def test_recover_replays_unflushed_batches(self, corpus):
        dfs = InMemoryDFS()
        streaming = _stream(corpus, dfs=dfs, auto_flush=False)
        streaming.apply_batch(list(corpus)[30:40])
        recovered = StreamingIndex.recover(dfs)
        assert len(recovered) == 40
        assert len(recovered.memtable) == 10

    def test_recover_without_state_is_typed(self):
        from repro.errors import IngestError

        with pytest.raises(IngestError):
            StreamingIndex.recover(InMemoryDFS())

    def test_recovered_writer_continues_ingesting(self, corpus):
        dfs = InMemoryDFS()
        streaming = _stream(corpus, dfs=dfs, auto_flush=False)
        streaming.apply_batch(list(corpus)[30:40])
        recovered = StreamingIndex.recover(dfs)
        recovered.apply_batch(list(corpus)[40:55])
        recovered.compact(major=True)
        oracle = SegmentIndex.build(
            RecordCollection(list(corpus)[:55]), n_vertical=5
        )
        for record in list(corpus)[:55:5]:
            assert recovered.probe(record.tokens, 0.5) == oracle.probe(
                record.tokens, 0.5
            )


class TestServiceIntegration:
    def test_similarity_service_over_streaming_index(self, corpus):
        streaming = _feed(_stream(corpus), corpus)
        service = SimilarityService(streaming)
        oracle = SegmentIndex.build(corpus, n_vertical=5)
        for record in list(corpus)[::9]:
            assert service.search(record.tokens, 0.5) == oracle.probe(
                record.tokens, 0.5
            )
        queries = [record.tokens for record in list(corpus)[:6]]
        assert service.search_batch(queries, 0.5) == [
            oracle.probe(query, 0.5) for query in queries
        ]
        assert service.search_rid(corpus[0].rid, 0.5) == [
            hit for hit in oracle.probe(corpus[0].tokens, 0.5)
            if hit.rid != corpus[0].rid
        ]

    def test_service_save_writes_a_plain_snapshot(self, corpus, tmp_path):
        streaming = _feed(_stream(corpus), corpus)
        service = SimilarityService(streaming)
        path = tmp_path / "streamed.idx"
        service.save(path)
        loaded = load_index(path)
        assert isinstance(loaded, SegmentIndex)
        for record in list(corpus)[::9]:
            assert loaded.probe(record.tokens, 0.5) == streaming.probe(
                record.tokens, 0.5
            )


class TestClusterIntegration:
    def _cluster(self, corpus):
        from repro.cluster import build_cluster

        router = build_cluster(
            RecordCollection(list(corpus)[:50]), n_shards=3, replication=2,
            n_vertical=5,
        )
        streaming = StreamingIndex.attach(
            InMemoryDFS(), "ingest", router.order, router.partitioner,
            config=IngestConfig(memtable_limit=8, fanout=2),
        )
        router.attach_ingest(streaming)
        return router

    def test_scatter_gather_includes_the_ingest_tier(self, corpus):
        router = self._cluster(corpus)
        tail = list(corpus)[50:]
        for i in range(0, len(tail), 10):
            router.apply_batch(tail[i:i + 10])
        oracle = SegmentIndex.build(corpus, n_vertical=5)
        for record in list(corpus)[::7]:
            assert router.search(record.tokens, 0.5) == oracle.probe(
                record.tokens, 0.5
            )
        status = router.status()["ingest"]
        assert status["records"] == len(tail)
        assert status["alive"]

    def test_ingest_rejects_rids_owned_by_the_shards(self, corpus):
        router = self._cluster(corpus)
        with pytest.raises(DataError):
            router.apply_batch([Record.make(corpus[0].rid, ["x"])])

    def test_double_attach_is_typed(self, corpus):
        router = self._cluster(corpus)
        with pytest.raises(ClusterError):
            router.attach_ingest(
                StreamingIndex.attach(
                    InMemoryDFS(), "ingest", router.order, router.partitioner
                )
            )

    def test_foreign_order_is_typed(self, corpus):
        from repro.cluster import build_cluster

        router = build_cluster(
            RecordCollection(list(corpus)[:50]), n_shards=3, n_vertical=5
        )
        foreign = StreamingIndex.create(
            InMemoryDFS(), records=RecordCollection(list(corpus)[:10]),
            n_vertical=5,
        )
        with pytest.raises(ClusterError):
            router.attach_ingest(foreign)

    def test_down_ingest_tier_fails_typed_or_flags_partial(self, corpus):
        router = self._cluster(corpus)
        router.apply_batch(list(corpus)[50:60])
        router.ingest.fail()
        with pytest.raises(ClusterError):
            router.search(corpus[0].tokens, 0.5)
        partial = router.search_partial(corpus[0].tokens, 0.5)
        assert not partial.complete
        assert -1 in partial.missing_shards
        router.ingest.restore()
        oracle = SegmentIndex.build(
            RecordCollection(list(corpus)[:60]), n_vertical=5
        )
        assert router.search(corpus[0].tokens, 0.5) == oracle.probe(
            corpus[0].tokens, 0.5
        )
