"""Tests for vertical pivot selection."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pivots import PivotMethod, partition_of_rank, select_pivots
from repro.errors import ConfigError

frequency_vectors = st.lists(st.integers(1, 1000), min_size=1, max_size=200)
methods = st.sampled_from(list(PivotMethod))


class TestSelectPivots:
    def test_zero_cuts_for_one_partition(self):
        assert select_pivots([1, 2, 3], 1) == ()

    def test_cut_count(self):
        cuts = select_pivots([1] * 100, 10, PivotMethod.EVEN_INTERVAL)
        assert len(cuts) == 9

    def test_small_vocab_fewer_cuts(self):
        cuts = select_pivots([1, 1, 1], 10, PivotMethod.EVEN_INTERVAL)
        assert len(cuts) == 2  # at most vocab - 1 cuts

    def test_invalid_partitions(self):
        with pytest.raises(ConfigError):
            select_pivots([1], 0)

    def test_even_interval_uniform(self):
        cuts = select_pivots([1] * 100, 4, PivotMethod.EVEN_INTERVAL)
        assert cuts == (25, 50, 75)

    def test_even_tf_balances_frequency(self):
        # One very hot token at the end: Even-TF pushes cuts right.
        freqs = [1] * 99 + [1000]
        tf_cuts = select_pivots(freqs, 4, PivotMethod.EVEN_TF)
        interval_cuts = select_pivots(freqs, 4, PivotMethod.EVEN_INTERVAL)
        assert tf_cuts != interval_cuts
        assert all(cut > 70 for cut in tf_cuts)

    def test_even_tf_uniform_matches_interval(self):
        freqs = [5] * 100
        assert select_pivots(freqs, 5, PivotMethod.EVEN_TF) == select_pivots(
            freqs, 5, PivotMethod.EVEN_INTERVAL
        )

    def test_random_deterministic_per_seed(self):
        freqs = [1] * 50
        assert select_pivots(freqs, 6, PivotMethod.RANDOM, seed=1) == select_pivots(
            freqs, 6, PivotMethod.RANDOM, seed=1
        )
        assert select_pivots(freqs, 6, PivotMethod.RANDOM, seed=1) != select_pivots(
            freqs, 6, PivotMethod.RANDOM, seed=2
        )

    def test_string_method_accepted(self):
        assert select_pivots([1] * 10, 2, "even-tf")

    @given(frequency_vectors, st.integers(1, 20), methods, st.integers(0, 5))
    def test_cuts_strictly_increasing_in_range(self, freqs, n, method, seed):
        cuts = select_pivots(freqs, n, method, seed=seed)
        assert len(cuts) <= n - 1
        assert all(0 < cut < len(freqs) for cut in cuts)
        assert all(a < b for a, b in zip(cuts, cuts[1:]))

    @given(frequency_vectors, st.integers(2, 10))
    def test_even_tf_balance_quality(self, freqs, n):
        """Even-TF fragment frequency sums stay within one max-token bound."""
        cuts = select_pivots(freqs, n, PivotMethod.EVEN_TF)
        boundaries = [0, *cuts, len(freqs)]
        sums = [
            sum(freqs[a:b]) for a, b in zip(boundaries, boundaries[1:])
        ]
        total = sum(freqs)
        ideal = total / (len(cuts) + 1)
        # Each fragment except possibly the tail overshoots ideal by at most
        # the largest single token frequency.
        assert max(sums) <= ideal + max(freqs) + 1e-9


class TestPartitionOfRank:
    def test_no_cuts(self):
        assert partition_of_rank((), 5) == 0

    def test_boundaries(self):
        cuts = (10, 20)
        assert partition_of_rank(cuts, 9) == 0
        assert partition_of_rank(cuts, 10) == 1
        assert partition_of_rank(cuts, 19) == 1
        assert partition_of_rank(cuts, 20) == 2

    @given(
        st.lists(st.integers(1, 99), min_size=1, max_size=10, unique=True),
        st.integers(0, 100),
    )
    def test_consistent_with_linear_scan(self, cuts, rank):
        cuts = tuple(sorted(cuts))
        expected = sum(1 for cut in cuts if cut <= rank)
        assert partition_of_rank(cuts, rank) == expected
