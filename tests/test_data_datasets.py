"""Unit tests for dataset I/O and sampling."""

from __future__ import annotations

import pytest

from repro.data.datasets import load_records, sample, save_records
from repro.data.records import RecordCollection
from repro.errors import ConfigError
from tests.conftest import random_collection


class TestRoundTrip:
    def test_save_load(self, tmp_path, small_records):
        path = tmp_path / "data.txt"
        save_records(small_records, path)
        loaded = load_records(path)
        assert len(loaded) == len(small_records)
        for original in small_records:
            assert set(loaded.get(original.rid).tokens) == set(original.tokens)

    def test_load_without_rids(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("alpha beta\ngamma\n", encoding="utf-8")
        loaded = load_records(path)
        assert loaded.get(0).tokens == ("alpha", "beta")
        assert loaded.get(1).tokens == ("gamma",)

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "gaps.txt"
        path.write_text("a b\n\nc d\n", encoding="utf-8")
        assert len(load_records(path)) == 2

    def test_load_dedupes_tokens(self, tmp_path):
        path = tmp_path / "dups.txt"
        path.write_text("a a b\n", encoding="utf-8")
        assert load_records(path).get(0).tokens == ("a", "b")


class TestSample:
    def test_full_fraction_is_copy(self, medium_records):
        sampled = sample(medium_records, 1.0)
        assert len(sampled) == len(medium_records)
        assert [r.rid for r in sampled] == [r.rid for r in medium_records]

    def test_fraction_size(self):
        records = random_collection(100, seed=1)
        assert len(sample(records, 0.6, seed=2)) == 60

    def test_preserves_rids(self):
        records = random_collection(50, seed=1)
        sampled = sample(records, 0.5, seed=3)
        for record in sampled:
            assert records.get(record.rid).tokens == record.tokens

    def test_deterministic(self):
        records = random_collection(50, seed=1)
        first = [r.rid for r in sample(records, 0.4, seed=9)]
        second = [r.rid for r in sample(records, 0.4, seed=9)]
        assert first == second

    def test_different_seeds_differ(self):
        records = random_collection(100, seed=1)
        first = [r.rid for r in sample(records, 0.3, seed=1)]
        second = [r.rid for r in sample(records, 0.3, seed=2)]
        assert first != second

    def test_subset_relation(self):
        records = random_collection(40, seed=5)
        sampled = sample(records, 0.25, seed=0)
        assert {r.rid for r in sampled} <= {r.rid for r in records}

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_invalid_fraction(self, fraction):
        with pytest.raises(ConfigError):
            sample(RecordCollection(), fraction)

    def test_paper_scales(self):
        """The paper's 4X/6X/8X/10X scales are 40/60/80/100% samples."""
        records = random_collection(200, seed=6)
        sizes = [len(sample(records, f, seed=0)) for f in (0.4, 0.6, 0.8, 1.0)]
        assert sizes == [80, 120, 160, 200]
