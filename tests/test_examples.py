"""Sanity checks on the example scripts.

The examples run for seconds-to-minutes, so the unit suite only verifies
that each compiles and imports nothing outside the installed package —
the full runs happen in documentation/QA passes.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

ALLOWED_TOP_LEVEL = {
    "repro", "numpy", "random", "dataclasses", "time", "sys", "__future__",
}


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    compile(path.read_text(encoding="utf-8"), str(path), "exec")


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_only_public_packages(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            roots = {alias.name.split(".")[0] for alias in node.names}
        elif isinstance(node, ast.ImportFrom):
            roots = {(node.module or "").split(".")[0]}
        else:
            continue
        assert roots <= ALLOWED_TOP_LEVEL, f"{path.name} imports {roots}"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_main_guard(path):
    text = path.read_text(encoding="utf-8")
    assert '__name__ == "__main__"' in text
    assert '"""' in text.split("\n", 2)[1] or text.startswith("#!")


def test_expected_examples_present():
    names = {path.name for path in EXAMPLES}
    assert {"quickstart.py", "email_deduplication.py", "algorithm_shootout.py"} <= names
    assert len(EXAMPLES) >= 3
