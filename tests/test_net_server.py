"""Server/client integration tests over real localhost sockets.

The load-bearing contract: a hit list that crossed the wire is
**bit-identical** to the one ``SimilarityGateway.serve()`` produces
in-process over the same cluster — same rids, same float scores, same
order.  Around it, the transport's own promises: a batch is one frame
each way, typed errors (deadline, quota, bad frames) arrive as their
local exception twins, appends land in the ingest tier and invalidate
the result cache through the index epoch, torn frames reassemble,
stalled and killed peers are contained, and a drain finishes every
accepted request before the sockets close.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time

import pytest

from repro.cluster import build_cluster
from repro.data.records import Record
from repro.errors import (
    DeadlineExceededError,
    ProtocolError,
    QuotaExceededError,
    TransportError,
)
from repro.gateway import GatewayConfig, GatewayRequest, SimilarityGateway, TenantConfig
from repro.ingest import StreamingIndex
from repro.mapreduce.hdfs import InMemoryDFS
from repro.net import AsyncGatewayClient, GatewayClient, GatewayServer, ServerConfig
from repro.net.protocol import (
    ERROR,
    FrameDecoder,
    encode_frame,
    hello_frame,
    hits_from_wire,
    search_frame,
)
from repro.observability.tracer import Tracer
from repro.service.index import SegmentIndex
from repro.similarity.functions import SimilarityFunction
from tests.conftest import random_collection

THETA = 0.5


@pytest.fixture(scope="module")
def corpus():
    return random_collection(100, vocab=50, max_len=16, seed=4177)


@pytest.fixture(scope="module")
def index(corpus):
    return SegmentIndex.build(corpus, n_vertical=8)


class ServerHarness:
    """A live :class:`GatewayServer` on a background thread's loop."""

    def __init__(self, index, with_ingest=False, gateway_config=None,
                 server_config=None):
        self.tracer = Tracer()
        self.router = build_cluster(index, n_shards=3, replication=2,
                                    tracer=self.tracer)
        if with_ingest:
            self.router.attach_ingest(StreamingIndex.attach(
                InMemoryDFS(), "net-test",
                self.router.order, self.router.partitioner,
            ))
        self.gateway = SimilarityGateway(
            self.router,
            gateway_config if gateway_config is not None
            else GatewayConfig(max_batch=8),
        )
        self.server = GatewayServer(
            self.gateway,
            server_config if server_config is not None else ServerConfig(),
            tracer=self.tracer,
        )
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._ready.wait(5.0)

    def _run(self):
        asyncio.set_event_loop(self.loop)

        async def main():
            self.address = await self.server.start()
            self._stop = asyncio.Event()
            self._ready.set()
            await self._stop.wait()

        self.loop.run_until_complete(main())
        self.loop.close()

    def submit(self, coroutine):
        """Run a coroutine on the server's loop from the test thread."""
        return asyncio.run_coroutine_threadsafe(
            coroutine, self.loop
        ).result(10.0)

    def stop(self):
        if self._stop is not None:
            self.loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(5.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.stop()


@pytest.fixture(scope="module")
def harness(index):
    with ServerHarness(index) as live:
        yield live


def expected_inprocess(index, requests):
    """The in-process twin: a fresh gateway over a fresh cluster."""
    gateway = SimilarityGateway(
        build_cluster(index, n_shards=3, replication=2),
        GatewayConfig(max_batch=8),
    )
    return [list(r.hits) for r in gateway.serve(requests)]


class TestWireBitIdentity:
    def test_search_matches_inprocess_gateway(self, corpus, index, harness):
        probes = [list(record.tokens) for record in corpus[::5]]
        requests = [GatewayRequest(tuple(tokens), THETA) for tokens in probes]
        expected = expected_inprocess(index, requests)
        host, port = harness.address
        with GatewayClient(host, port) as client:
            got = [client.search(tokens, THETA) for tokens in probes]
        assert got == expected

    def test_search_batch_is_one_frame_and_identical(self, corpus, index,
                                                     harness):
        probes = [list(record.tokens) for record in corpus[:10]]
        requests = [GatewayRequest(tuple(tokens), THETA) for tokens in probes]
        expected = expected_inprocess(index, requests)
        host, port = harness.address
        before = harness.server.metrics.get("net", "requests")
        with GatewayClient(host, port) as client:
            got = client.search_batch(probes, THETA)
        after = harness.server.metrics.get("net", "requests")
        assert got == expected
        assert after - before == 1, "a batch must ride in one frame"

    def test_cosine_and_k_cross_the_wire(self, corpus, index, harness):
        tokens = list(corpus[3].tokens)
        func = SimilarityFunction.COSINE
        direct = build_cluster(index, n_shards=3, replication=2)
        host, port = harness.address
        with GatewayClient(host, port) as client:
            assert (client.search(tokens, 0.4, k=2, func=func)
                    == direct.search(tokens, 0.4, k=2, func=func))

    def test_async_client_matches_sync(self, corpus, harness):
        tokens = list(corpus[7].tokens)
        host, port = harness.address
        with GatewayClient(host, port) as client:
            expected = client.search(tokens, THETA)

        async def probe():
            async with AsyncGatewayClient(host, port) as client:
                return await client.search(tokens, THETA)

        assert asyncio.run(probe()) == expected


class TestTypedErrorsOverTheWire:
    def test_deadline_overrun_is_typed(self, corpus, harness):
        host, port = harness.address
        with GatewayClient(host, port) as client:
            with pytest.raises(DeadlineExceededError):
                client.search(list(corpus[0].tokens), THETA, deadline=0.0)
        # The connection survives a request-level error.
        with GatewayClient(host, port) as client:
            assert client.search(list(corpus[0].tokens), THETA) is not None

    def test_quota_shed_is_typed(self, index):
        config = GatewayConfig(max_batch=8, tenants={
            "free": TenantConfig(weight=1, max_outstanding=1),
        })
        with ServerHarness(index, gateway_config=config) as live:
            host, port = live.address
            # Pipeline three search frames in one write: the server
            # dispatches them concurrently, so a 1-outstanding quota
            # deterministically sheds the two that arrive while the
            # first is still in flight.
            with socket.create_connection((host, port), timeout=5.0) as raw:
                raw.sendall(encode_frame(hello_frame(0, "free")))
                decoder = FrameDecoder()
                while not decoder.feed(raw.recv(65536)):
                    pass
                raw.sendall(b"".join(
                    encode_frame(search_frame(i, [f"w{i}", "x"], THETA))
                    for i in (1, 2, 3)
                ))
                frames = []
                while len(frames) < 3:
                    frames.extend(decoder.feed(raw.recv(65536)))
            by_kind = {}
            for frame in frames:
                by_kind.setdefault(frame.kind, []).append(frame)
            assert len(by_kind.get("result", [])) == 1
            sheds = by_kind.get(ERROR, [])
            assert len(sheds) == 2
            assert all(f.payload["error"] == "QuotaExceededError"
                       for f in sheds)
            # The quota releases: a lone request is admitted afterwards.
            with GatewayClient(host, port, tenant="free") as client:
                assert client.search(["w1", "x"], THETA) is not None

    def test_large_batch_queues_instead_of_shedding_itself(self, corpus,
                                                           index):
        """One batch frame bigger than the tenant's outstanding quota
        must queue behind itself, not shed itself."""
        config = GatewayConfig(max_batch=8, tenants={
            "free": TenantConfig(weight=1, max_outstanding=2),
        })
        with ServerHarness(index, gateway_config=config) as live:
            host, port = live.address
            probes = [list(record.tokens) for record in corpus[:10]]
            direct = build_cluster(index, n_shards=3, replication=2)
            with GatewayClient(host, port, tenant="free") as client:
                got = client.search_batch(probes, THETA)
            assert got == direct.search_batch(probes, THETA)

    def test_handshake_is_mandatory(self, harness):
        host, port = harness.address
        with socket.create_connection((host, port), timeout=5.0) as raw:
            raw.sendall(encode_frame(search_frame(1, ["a"], THETA)))
            decoder = FrameDecoder()
            frames = []
            while not frames:
                data = raw.recv(65536)
                if not data:
                    break
                frames = decoder.feed(data)
            assert frames and frames[0].kind == ERROR
            assert frames[0].payload["error"] == "ProtocolError"
            assert raw.recv(65536) == b"", "connection must drop"

    def test_garbage_header_is_rejected_typed(self, harness):
        host, port = harness.address
        before = harness.server.metrics.get("net", "protocol_errors")
        with socket.create_connection((host, port), timeout=5.0) as raw:
            raw.sendall(encode_frame(hello_frame(0, "t")))
            decoder = FrameDecoder()
            while not decoder.feed(raw.recv(65536)):
                pass
            raw.sendall(b"\x00\x00garbage-after-handshake")
            frames = []
            while not frames:
                data = raw.recv(65536)
                if not data:
                    break
                frames = decoder.feed(data)
            assert frames and frames[0].payload["error"] == "ProtocolError"
        assert harness.server.metrics.get(
            "net", "protocol_errors") == before + 1


class TestTornFramesAndRetry:
    def test_torn_frame_reassembles(self, corpus, index, harness):
        host, port = harness.address
        direct = build_cluster(index, n_shards=3, replication=2)
        tokens = list(corpus[11].tokens)
        expected = direct.search(tokens, THETA)
        with socket.create_connection((host, port), timeout=5.0) as raw:
            raw.sendall(encode_frame(hello_frame(0, "t")))
            decoder = FrameDecoder()
            while not decoder.feed(raw.recv(65536)):
                pass
            data = encode_frame(search_frame(1, tokens, THETA))
            for i in range(0, len(data), 4):  # 4-byte shreds
                raw.sendall(data[i:i + 4])
            frames = []
            while not frames:
                frames = decoder.feed(raw.recv(65536))
            assert hits_from_wire(frames[0].payload["hits"]) == expected

    def test_search_retries_across_reconnect(self, corpus, index):
        """A search whose pooled connection died is retried on a fresh
        one — idempotent frames only, so the answer is just late."""
        with ServerHarness(index) as live:
            host, port = live.address
            direct = build_cluster(index, n_shards=3, replication=2)
            tokens = list(corpus[1].tokens)
            with GatewayClient(host, port, pool_size=1) as client:
                assert client.search(tokens, THETA) == direct.search(
                    tokens, THETA
                )

                # Kill the pooled connection server-side: the next call's
                # first attempt fails mid-flight and must transparently
                # reconnect and retry.
                async def hang_up():
                    for connection in list(live.server._connections):
                        connection.writer.close()

                live.submit(hang_up())
                assert client.search(tokens, THETA) == direct.search(
                    tokens, THETA
                )
            assert live.server.metrics.get("net", "connections") >= 2


class TestAppendAndEpoch:
    def test_append_lands_and_invalidates_cache(self, corpus, index):
        with ServerHarness(index, with_ingest=True) as live:
            host, port = live.address
            fresh_rid = max(record.rid for record in corpus) + 1000
            probe = list(corpus[2].tokens)
            with GatewayClient(host, port) as client:
                before = client.search(probe, THETA)
                again = client.search(probe, THETA)
                assert again == before
                assert live.gateway.metrics.get(
                    "gateway", "cache_hits") == 1
                added = client.append([Record.make(fresh_rid, probe)])
                assert added == 1
                after = client.search(probe, THETA)
            assert live.gateway.metrics.get(
                "gateway", "cache_invalidated") >= 1
            assert fresh_rid in {hit.rid for hit in after}
            assert fresh_rid not in {hit.rid for hit in before}


class TestDrain:
    def test_drain_finishes_accepted_work_and_refuses_new(self, corpus,
                                                          index):
        with ServerHarness(index) as live:
            host, port = live.address
            probes = [list(record.tokens) for record in corpus[:6]]
            with GatewayClient(host, port) as client:
                answers = [client.search(tokens, THETA)
                           for tokens in probes]
                assert len(answers) == len(probes)
                client.drain()
            live.submit(live.server.wait_drained())
            metrics = live.server.metrics.group("net")
            # Every accepted request got exactly one response.
            assert metrics["responses"] == metrics["requests"]
            assert metrics.get("dropped_responses", 0) == 0
            # Late connections are refused, not hung.
            with pytest.raises(TransportError):
                with GatewayClient(host, port) as late:
                    late.search(["a"], THETA)

    def test_established_connections_are_served_mid_drain(self, corpus,
                                                          index):
        # The drain contract: peers that were connected before the drain
        # started get everything they ask for until they hang up.
        with ServerHarness(index) as live:
            host, port = live.address
            probes = [list(record.tokens) for record in corpus[:4]]
            with GatewayClient(host, port, pool_size=1) as client:
                expected = expected_inprocess(
                    index,
                    [GatewayRequest(tuple(tokens), THETA)
                     for tokens in probes],
                )
                client.status()  # the pooled connection is established

                async def kick():
                    live.server.request_drain()

                live.submit(kick())
                deadline = time.perf_counter() + 5.0
                while not live.server.draining:
                    assert time.perf_counter() < deadline
                    time.sleep(0.01)
                answers = [client.search(tokens, THETA)
                           for tokens in probes]
            assert answers == expected
            live.submit(live.server.wait_drained())
            metrics = live.server.metrics.group("net")
            assert metrics["responses"] == metrics["requests"]
            assert metrics.get("dropped_responses", 0) == 0

    def test_status_over_the_wire(self, harness):
        host, port = harness.address
        with GatewayClient(host, port) as client:
            status = client.status()
        assert "net" in status and "gateway" in status
        assert status["draining"] is False


class TestStall:
    def test_half_sent_frame_times_out(self, index):
        config = ServerConfig(frame_timeout=0.15)
        with ServerHarness(index, server_config=config) as live:
            host, port = live.address
            with socket.create_connection((host, port), timeout=5.0) as raw:
                raw.sendall(encode_frame(hello_frame(0, "t")))
                decoder = FrameDecoder()
                while not decoder.feed(raw.recv(65536)):
                    pass
                raw.sendall(b"RN")  # half a header, then silence
                assert raw.recv(65536) == b"", "server must hang up"
            assert live.server.metrics.get(
                "net", "stalled_connections") == 1
