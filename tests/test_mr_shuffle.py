"""Unit tests for stable hashing and partitioning."""

from __future__ import annotations

import subprocess
import sys

from hypothesis import given
from hypothesis import strategies as st

from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import ClusterSpec, SimulatedCluster
from repro.mapreduce.shuffle import default_partition, group_sort_key, stable_hash

keys = st.one_of(
    st.integers(-(2**40), 2**40),
    st.text(max_size=12),
    st.tuples(st.integers(0, 100), st.integers(0, 100)),
    st.booleans(),
    st.none(),
)

# Keys that can compare equal across Python types: True == 1 == 1.0,
# 2**53 == float(2**53), etc.  The partitioner contract demands equal
# hashes for all of them (see shuffle.py's module docstring).
numeric_keys = st.one_of(
    st.booleans(),
    st.integers(-(2**60), 2**60),
    st.floats(allow_nan=False, width=64),
    st.integers(-(2**60), 2**60).map(float).filter(lambda f: abs(f) < 2**63),
)


class TestStableHash:
    def test_deterministic_within_process(self):
        assert stable_hash("token") == stable_hash("token")

    def test_deterministic_across_processes(self):
        """Python's str hash is salted per process; ours must not be."""
        code = "from repro.mapreduce.shuffle import stable_hash; print(stable_hash('abc'))"
        outputs = {
            subprocess.run(
                [sys.executable, "-c", code], capture_output=True, text=True
            ).stdout.strip()
            for _ in range(2)
        }
        assert len(outputs) == 1
        assert outputs == {str(stable_hash("abc"))}

    def test_distinct_values_usually_differ(self):
        hashes = {stable_hash(f"tok{i}") for i in range(500)}
        assert len(hashes) > 490

    def test_tuple_order_matters(self):
        assert stable_hash((1, 2)) != stable_hash((2, 1))

    def test_frozenset_order_insensitive(self):
        assert stable_hash(frozenset([1, 2, 3])) == stable_hash(frozenset([3, 1, 2]))

    @given(keys)
    def test_nonnegative(self, key):
        assert stable_hash(key) >= 0

    @given(keys, keys)
    def test_equal_keys_equal_hashes(self, a, b):
        if a == b:
            assert stable_hash(a) == stable_hash(b)

    @given(numeric_keys, numeric_keys)
    def test_cross_type_numeric_equality(self, a, b):
        """Regression: ``a == b ⇒ stable_hash(a) == stable_hash(b)`` must
        hold even when ``type(a) is not type(b)`` — a key emitted as ``1``
        by one mapper and ``1.0`` by another lands on one reducer."""
        if a == b:
            assert stable_hash(a) == stable_hash(b)

    def test_bool_int_float_are_one_key(self):
        assert stable_hash(True) == stable_hash(1) == stable_hash(1.0)
        assert stable_hash(False) == stable_hash(0) == stable_hash(0.0)
        assert stable_hash(2**53) == stable_hash(float(2**53))

    def test_nested_numeric_keys_normalize(self):
        assert stable_hash((1, "x")) == stable_hash((1.0, "x")) == stable_hash((True, "x"))

    def test_nonintegral_floats_still_hash(self):
        assert stable_hash(0.5) == stable_hash(0.5)
        assert stable_hash(0.5) != stable_hash(1.5)

    def test_nonfinite_floats_hash_consistently(self):
        assert stable_hash(float("inf")) == stable_hash(float("inf"))
        assert stable_hash(float("-inf")) == stable_hash(float("-inf"))
        assert stable_hash(float("nan")) == stable_hash(float("nan"))
        assert stable_hash(float("inf")) != stable_hash(float("-inf"))


class TestDefaultPartition:
    @given(keys, st.integers(1, 64))
    def test_in_range(self, key, n):
        assert 0 <= default_partition(key, n) < n

    def test_spreads_keys(self):
        buckets = {default_partition(f"k{i}", 16) for i in range(200)}
        assert len(buckets) == 16


class TestGroupSortKey:
    def test_sorts_ints(self):
        assert sorted([3, 1, 2], key=group_sort_key) == [1, 2, 3]

    def test_sorts_tuples(self):
        items = [(2, 1), (1, 9), (1, 2)]
        assert sorted(items, key=group_sort_key) == [(1, 2), (1, 9), (2, 1)]

    def test_exotic_keys_fall_back_to_repr(self):
        class Odd:
            def __repr__(self):
                return "odd"

        sorted([Odd(), Odd()], key=group_sort_key)  # must not raise

    def test_mixed_int_and_str_keys(self):
        """Regression: ``sorted([1, "a"])`` raises TypeError in Python 3;
        group_sort_key must impose a total order across comparison classes."""
        mixed = ["b", 2, "a", 1, None, (1, "x"), True]
        once = sorted(mixed, key=group_sort_key)
        assert sorted(reversed(mixed), key=group_sort_key) == once
        # Within a class, natural order is preserved.
        assert [k for k in once if isinstance(k, str)] == ["a", "b"]
        assert [k for k in once if isinstance(k, int) and not isinstance(k, bool)] == [1, 2]

    def test_mixed_nested_tuple_keys(self):
        mixed = [(1, "a"), ("a", 1), (1, 2)]
        once = sorted(mixed, key=group_sort_key)
        assert sorted(reversed(mixed), key=group_sort_key) == once

    def test_bool_sorts_as_int(self):
        assert sorted([2, True, 0], key=group_sort_key) == [0, True, 2]


class MixedKeyJob(MapReduceJob):
    """Emits int and str keys from the same map phase."""

    name = "mixed-keys"

    def map(self, key, value, emit, context):
        emit(value, 1)          # str key
        emit(len(value), 1)     # int key

    def reduce(self, key, values, emit, context):
        emit(key, sum(values))


class TestMixedKeyJob:
    def test_reduce_handles_mixed_key_types(self):
        """Regression: the sorted group phase used to raise TypeError when a
        reducer partition received both int and str keys."""
        lines = [(i, w) for i, w in enumerate(["aa", "bb", "ccc", "aa"])]
        result = SimulatedCluster(ClusterSpec(workers=2)).run_job(
            MixedKeyJob(), lines, num_reduce_tasks=1
        )
        counts = dict(result.output)
        assert counts["aa"] == 2
        assert counts[2] == 3  # len("aa") twice + len("bb")
        assert counts[3] == 1

    def test_mixed_key_output_deterministic(self):
        lines = [(i, w) for i, w in enumerate(["aa", "bb", "ccc", "aa"])]
        runs = [
            SimulatedCluster(ClusterSpec(workers=2)).run_job(
                MixedKeyJob(), lines, num_reduce_tasks=1
            ).output
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
