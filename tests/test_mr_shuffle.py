"""Unit tests for stable hashing and partitioning."""

from __future__ import annotations

import subprocess
import sys

from hypothesis import given
from hypothesis import strategies as st

from repro.mapreduce.shuffle import default_partition, group_sort_key, stable_hash

keys = st.one_of(
    st.integers(-(2**40), 2**40),
    st.text(max_size=12),
    st.tuples(st.integers(0, 100), st.integers(0, 100)),
    st.booleans(),
    st.none(),
)


class TestStableHash:
    def test_deterministic_within_process(self):
        assert stable_hash("token") == stable_hash("token")

    def test_deterministic_across_processes(self):
        """Python's str hash is salted per process; ours must not be."""
        code = "from repro.mapreduce.shuffle import stable_hash; print(stable_hash('abc'))"
        outputs = {
            subprocess.run(
                [sys.executable, "-c", code], capture_output=True, text=True
            ).stdout.strip()
            for _ in range(2)
        }
        assert len(outputs) == 1
        assert outputs == {str(stable_hash("abc"))}

    def test_distinct_values_usually_differ(self):
        hashes = {stable_hash(f"tok{i}") for i in range(500)}
        assert len(hashes) > 490

    def test_tuple_order_matters(self):
        assert stable_hash((1, 2)) != stable_hash((2, 1))

    def test_frozenset_order_insensitive(self):
        assert stable_hash(frozenset([1, 2, 3])) == stable_hash(frozenset([3, 1, 2]))

    @given(keys)
    def test_nonnegative(self, key):
        assert stable_hash(key) >= 0

    @given(keys, keys)
    def test_equal_keys_equal_hashes(self, a, b):
        if a == b and type(a) is type(b):
            assert stable_hash(a) == stable_hash(b)


class TestDefaultPartition:
    @given(keys, st.integers(1, 64))
    def test_in_range(self, key, n):
        assert 0 <= default_partition(key, n) < n

    def test_spreads_keys(self):
        buckets = {default_partition(f"k{i}", 16) for i in range(200)}
        assert len(buckets) == 16


class TestGroupSortKey:
    def test_sorts_ints(self):
        assert sorted([3, 1, 2], key=group_sort_key) == [1, 2, 3]

    def test_sorts_tuples(self):
        items = [(2, 1), (1, 9), (1, 2)]
        assert sorted(items, key=group_sort_key) == [(1, 2), (1, 9), (2, 1)]

    def test_exotic_keys_fall_back_to_repr(self):
        class Odd:
            def __repr__(self):
                return "odd"

        sorted([Odd(), Odd()], key=group_sort_key)  # must not raise
